# Convenience targets for the B-Cache reproduction.

PYTHON ?= python
LINT_FORMAT ?= text
LINT_JOBS ?= 0

.PHONY: install dev test lint typecheck bench bench-engine chaos serve gateway gateway-smoke trace loadgen top cluster experiments experiments-full examples clean

install:
	pip install -e .

dev:
	pip install -e .[dev]

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis.lint src/ \
		--format $(LINT_FORMAT) --jobs $(LINT_JOBS)

typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& mypy --strict src/repro \
		|| echo "mypy not installed; skipping (pip install mypy)"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-engine:
	PYTHONPATH=src $(PYTHON) -m repro.engine.bench --check BENCH_engine.json

chaos:
	PYTHONPATH=src $(PYTHON) -m repro.engine.faultinject --workers 2 \
		--timeout 20 \
		--faults "crash@0,hang@1:0,flaky@2,corrupt_blob@3,torn_journal@4"

serve:
	PYTHONPATH=src $(PYTHON) -m repro.serve --port 4006 --shards 2

# HTTP tier in front of a running `make serve` (result cache + rate
# limiting live in the backend; start it with --result-cache to see
# repeated-mix speedups).
gateway:
	PYTHONPATH=src $(PYTHON) -m repro.serve.gateway \
		--port 8006 --backend 127.0.0.1:4006

# Full serving-stack smoke: serve + gateway + loadgen over HTTP with a
# repeated mix; asserts cache hits, dedup, and bit-identity.
gateway-smoke:
	PYTHONPATH=src $(PYTHON) scripts/gateway_smoke.py

# Distributed-tracing smoke: off-tier baseline (bit-identical, no event
# log) then a REPRO_OBS=full gateway+serve leg whose merged logs must
# pass `bcache-trace --check` (>=99% complete single-rooted waterfalls).
trace:
	PYTHONPATH=src $(PYTHON) scripts/trace_smoke.py

loadgen:
	PYTHONPATH=src $(PYTHON) -m repro.serve.loadgen \
		--connect 127.0.0.1:4006 --requests 200 --clients 8 --verify

top:
	PYTHONPATH=src $(PYTHON) -m repro.obs.top

# Chaos-test the fleet coordinator against a local 2-node fleet:
# start two bcache-serve processes, sweep with node faults injected,
# and require bit-identity with a serial run plus >=1 redispatch.
cluster:
	PYTHONPATH=src $(PYTHON) scripts/cluster_smoke.py

experiments:
	$(PYTHON) -m repro.cli all --scale default

experiments-full:
	$(PYTHON) -m repro.cli all --scale full

examples:
	$(PYTHON) examples/quickstart.py 50000
	$(PYTHON) examples/custom_workload.py 30000
	$(PYTHON) examples/design_space_exploration.py crafty 30000
	$(PYTHON) examples/performance_energy_tradeoff.py equake 20000
	$(PYTHON) examples/pipeline_models.py equake 15000

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
