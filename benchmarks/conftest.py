"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure at a reduced trace
length (the ``BENCH`` scale), times the full pipeline via
pytest-benchmark, prints the reproduced rows and archives them under
``results/``.

Scale up with ``bcache-repro <experiment> --scale full`` for the
EXPERIMENTS.md numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentScale

#: Trace lengths for benchmark runs: long enough for stable shapes,
#: short enough that the whole harness finishes in minutes.
BENCH = ExperimentScale(data_n=20_000, instr_n=30_000, instructions=12_000, seed=2006)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_store(tmp_path_factory: pytest.TempPathFactory):
    """Keep benchmark-run trace blobs out of the user's cache dir."""
    from repro.engine.trace_store import TraceStore, set_default_store

    previous = set_default_store(
        TraceStore(tmp_path_factory.mktemp("trace-store"))
    )
    yield
    set_default_store(previous)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Return a callable that prints and stores one experiment's output."""

    def _archive(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _archive
