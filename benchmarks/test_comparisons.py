"""Benchmarks: Section 6.7 (HAC), Section 7.1 (prior art) and the
replacement-policy ablation of Section 3.3."""

from repro.experiments import comparisons


def test_hac_comparison(benchmark, bench_scale, archive):
    scale = bench_scale.scaled(0.5)  # the 32-way HAC probe is costly
    result = benchmark.pedantic(
        comparisons.run_hac, args=(scale,), rounds=1, iterations=1
    )
    archive("hac_comparison", result.render())
    # Section 6.7: similar miss-rate territory, but the HAC needs a
    # 26-bit CAM where the B-Cache uses 6 bits.
    assert result.hac_cam_bits == 26
    assert result.bcache_pd_bits == 6
    bc = result.comparison.data_reduction["mf8_bas8"]
    hac = result.comparison.data_reduction["hac"]
    assert abs(bc - hac) < 0.25


def test_prior_art_comparison(benchmark, bench_scale, archive):
    scale = bench_scale.scaled(0.5)
    result = benchmark.pedantic(
        comparisons.run_prior_art, args=(scale,), rounds=1, iterations=1
    )
    archive("prior_art", result.render("Section 7.1 prior-art comparison"))
    reductions = result.data_reduction
    # Section 7.1's claims: column-associative ~ 2-way; skewed ~ between
    # 2- and 4-way; the B-Cache at or above 4-way.
    assert reductions["column"] > 0.0
    assert reductions["mf8_bas8"] > reductions["column"]
    assert reductions["mf8_bas8"] > reductions["victim16"]
    assert reductions["mf8_bas8"] >= reductions["2way"]


def test_replacement_ablation(benchmark, bench_scale, archive):
    scale = bench_scale.scaled(0.5)
    result = benchmark.pedantic(
        comparisons.run_replacement_ablation, args=(scale,), rounds=1, iterations=1
    )
    archive("replacement_ablation", result.render())
    # Section 3.3: LRU at least matches random; both clearly positive.
    assert result.data_reduction["lru"] >= result.data_reduction["random"] - 0.02
    assert result.data_reduction["random"] > 0.0
