"""Benchmark: regenerate Figure 12 (8 kB and 32 kB miss-rate study)."""

from repro.experiments import missrate_figures


def test_fig12_cache_sizes(benchmark, bench_scale, archive):
    # Halve the trace length: Figure 12 sweeps 12 configs x 2 sizes x
    # both cache sides, by far the largest panel count.
    scale = bench_scale.scaled(0.5)
    result = benchmark.pedantic(
        missrate_figures.run_fig12, args=(scale,), rounds=1, iterations=1
    )
    archive("fig12_sizes", result.render())

    for panel in result.panels:
        # The B-Cache keeps beating the victim buffer at 8 kB and 32 kB
        # (Section 6.6's size study).
        assert panel.average("mf8_bas8") > panel.average("victim16")
        # And MF=8/BAS=8 stays the best B-Cache design (Section 6.5):
        # better than the same-PD-length MF=16/BAS=4 alternative.
        assert panel.average("mf8_bas8") > panel.average("mf16_bas4") - 0.02
        # BAS=8 dominates BAS=4 at equal MF.
        assert panel.average("mf8_bas8") > panel.average("mf8_bas4") - 0.02
