"""Benchmark: regenerate Figure 3 (wupwise MF sweep)."""

from repro.experiments import fig3_mf_sweep


def test_fig3_mf_sweep(benchmark, bench_scale, archive):
    result = benchmark.pedantic(
        fig3_mf_sweep.run, args=(bench_scale,), rounds=1, iterations=1
    )
    archive("fig3_mf_sweep", result.render())
    # Shape: the miss rate at the largest MF is below the smallest MF's,
    # and the PD hit rate during misses has fallen with it (Figure 3).
    rates = result.miss_rates()
    pd_rates = result.pd_hit_rates()
    assert rates[-1] < rates[0]
    assert pd_rates[-1] < pd_rates[0]
