"""Benchmark: regenerate Figure 4 (D$ miss-rate reductions, 16 kB)."""

from repro.experiments import missrate_figures


def test_fig4_dcache_reductions(benchmark, bench_scale, archive):
    result = benchmark.pedantic(
        missrate_figures.run_fig4, args=(bench_scale,), rounds=1, iterations=1
    )
    archive("fig4_dcache", result.render())

    for panel in (result.cint, result.cfp):
        # Associativity ordering: 2-way < 4-way < 8-way on average.
        assert panel.average("2way") < panel.average("4way") < panel.average("8way")
        # MF sweep monotone, saturating by MF=16 (Section 4.3.2).
        assert (
            panel.average("mf2_bas8")
            < panel.average("mf4_bas8")
            < panel.average("mf8_bas8")
            <= panel.average("mf16_bas8") + 0.01
        )
        # Headline: B-Cache at least as good as a 4-way cache (Sec 4.3.3).
        assert panel.average("mf8_bas8") > panel.average("4way") - 0.08
        # And above the 16-entry victim buffer (Section 6.6).
        assert panel.average("mf8_bas8") > panel.average("victim16")
