"""Benchmark: regenerate Figure 5 (I$ miss-rate reductions, 16 kB)."""

from repro.experiments import missrate_figures


def test_fig5_icache_reductions(benchmark, bench_scale, archive):
    panel = benchmark.pedantic(
        missrate_figures.run_fig5, args=(bench_scale,), rounds=1, iterations=1
    )
    archive("fig5_icache", panel.render())

    # I$ reductions are larger than D$ in the paper (64.5% vs 37.8% at
    # MF=8); here we assert the orderings.
    assert panel.average("2way") < panel.average("4way") < panel.average("8way")
    assert panel.average("mf4_bas8") < panel.average("mf8_bas8") + 0.01
    # Section 6.6: the victim buffer lags the B-Cache dramatically on
    # instruction streams (37.9% in the paper).
    assert panel.average("mf8_bas8") > panel.average("victim16") + 0.2
    # B-Cache approaches the 8-way bound.
    assert panel.average("mf8_bas8") > 0.75 * panel.average("8way")
