"""Benchmark: regenerate Figures 8 (IPC) and 9 (energy) in one run.

The paper derives both figures from the same per-configuration
simulations, so the harness does too.
"""

from repro.experiments import perf_energy


def test_fig8_ipc_and_fig9_energy(benchmark, bench_scale, archive):
    result = benchmark.pedantic(
        perf_energy.run, args=(bench_scale,), rounds=1, iterations=1
    )
    archive("fig8_ipc", result.render_fig8())
    archive("fig9_energy", result.render_fig9())

    bcache_gain = result.average_ipc_improvement("mf8_bas8")
    # Figure 8: B-Cache improves IPC on average (paper: +5.9%) ...
    assert bcache_gain > 0.0
    # ... within a whisker of the 8-way cache (paper: 0.3% behind) ...
    assert result.average_ipc_improvement("8way") - bcache_gain < 0.05
    # ... and ahead of the victim buffer (paper: 3.7% ahead).
    assert bcache_gain >= result.average_ipc_improvement("victim16")
    # equake shows the largest gain (paper: +27.1%).
    gains = {b: result.ipc_improvement("mf8_bas8", b) for b in result.benchmarks}
    assert max(gains, key=gains.get) == "equake"

    # Figure 9: B-Cache's energy lands below the baseline (paper: -2%)
    # and far below the 8-way cache.
    assert result.average_normalized_energy("mf8_bas8") < 1.0
    assert (
        result.average_normalized_energy("8way")
        > result.average_normalized_energy("mf8_bas8")
    )
