"""Benchmarks: the hit-latency study and the extension analyses.

These are the ablation benches DESIGN.md calls out: they quantify the
design choices rather than reproduce a specific paper figure.
"""

from repro.experiments import extensions, latency_study


def test_latency_study(benchmark, bench_scale, archive):
    scale = bench_scale.scaled(0.5)
    study = benchmark.pedantic(
        latency_study.run, args=(scale,), rounds=1, iterations=1
    )
    archive("latency_study", study.render())
    # The paper's core claim, end to end: the B-Cache gets associative
    # miss rates without multi-cycle hits, so it wins AMAT.
    bcache = study.row("mf8_bas8")
    assert bcache.slow_hit_fraction == 0.0
    assert bcache.effective_hit_latency == 1.0
    for spec in ("dm", "victim16", "column", "pam2", "psa2", "pagecolor"):
        assert bcache.amat <= study.row(spec).amat + 1e-9
    # AGAC reaches similar reductions but pays 3-cycle relocated hits.
    agac = study.row("agac")
    assert agac.effective_hit_latency > 1.0


def test_addressing_analysis(benchmark, archive):
    study = benchmark(extensions.run_addressing)
    archive("addressing", study.render())
    # Section 6.8: with 4 kB pages, the headline design needs its three
    # borrowed tag bits treated as virtual index.
    four_kb = [r for r in study.reports if r.page_size == 4096]
    assert all(len(r.untranslated_tag_bits) == 3 for r in four_kb)


def test_drowsy_extension(benchmark, bench_scale, archive):
    scale = bench_scale.scaled(0.5)
    study = benchmark.pedantic(
        extensions.run_drowsy, args=(scale,), rounds=1, iterations=1
    )
    archive("drowsy", study.render())
    # Section 6.4: balancing must not erase the idleness drowsy
    # techniques exploit — the B-Cache still saves meaningful leakage.
    bc_savings = [bc.leakage_saving for _, _, bc in study.rows]
    assert sum(bc_savings) / len(bc_savings) > 0.1
