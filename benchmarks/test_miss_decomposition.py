"""Benchmark: 3C miss decomposition ablation.

Verifies the mechanism behind the paper's title: the misses the B-Cache
removes are the *conflict* bucket of the 3C model.
"""

from repro.experiments import miss_decomposition


def test_3c_decomposition(benchmark, bench_scale, archive):
    scale = bench_scale.scaled(0.5)
    result = benchmark.pedantic(
        miss_decomposition.run,
        args=(scale,),
        kwargs={"benchmarks": ("equake", "crafty", "gzip", "mcf", "art", "twolf")},
        rounds=1,
        iterations=1,
    )
    archive("miss_decomposition", result.render())

    for benchmark_name in ("equake", "crafty", "twolf"):
        dm = result.breakdowns["dm"][benchmark_name]
        bc = result.breakdowns["mf8_bas8"][benchmark_name]
        # The removed misses are conflict misses...
        assert bc.conflict < dm.conflict
        # ...while compulsory misses are untouched (same trace).
        assert bc.compulsory == dm.compulsory
        # The B-Cache takes out more conflict misses than the 2-way.
        two = result.breakdowns["2way"][benchmark_name]
        assert bc.conflict < two.conflict

    # Uniform-miss benchmarks have little conflict to remove: every
    # organisation's totals stay close to the baseline's (Sec 6.4).
    for benchmark_name in ("mcf", "art"):
        dm = result.breakdowns["dm"][benchmark_name]
        bc = result.breakdowns["mf8_bas8"][benchmark_name]
        assert dm.fraction("conflict") < 0.3
        assert bc.total_misses > 0.8 * dm.total_misses
