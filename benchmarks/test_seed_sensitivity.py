"""Benchmark: seed sensitivity of the headline orderings.

The paper's results come from deterministic simulations; ours come from
seeded generators.  This bench replays the headline comparison under
several seeds and asserts the orderings hold with confidence — i.e.
the reproduction is not a seed artefact.
"""

from repro.caches import make_cache
from repro.stats.confidence import replicate
from repro.workloads import SPEC2K

SEEDS = (1, 2, 3, 4, 5)
N = 12_000
BENCHMARKS = ("equake", "crafty", "gzip")


def _average_reduction(spec: str, seed: int) -> float:
    total = 0.0
    for name in BENCHMARKS:
        addresses = SPEC2K[name].data_addresses(N, seed=seed)
        dm = make_cache("dm")
        other = make_cache(spec)
        for address in addresses:
            dm.access(address)
            other.access(address)
        total += (dm.miss_rate - other.miss_rate) / dm.miss_rate
    return total / len(BENCHMARKS)


def test_orderings_stable_across_seeds(benchmark, archive):
    def study():
        return {
            spec: replicate(lambda seed: _average_reduction(spec, seed), SEEDS)
            for spec in ("2way", "4way", "8way", "victim16", "mf8_bas8")
        }

    estimates = benchmark.pedantic(study, rounds=1, iterations=1)

    lines = ["Seed sensitivity (5 seeds, 95% CI) — average D$ reduction"]
    for spec, e in estimates.items():
        low, high = e.confidence_interval()
        lines.append(f"  {spec:<10} {e.mean:6.1%} +/- {(high - low) / 2:5.1%}")
    archive("seed_sensitivity", "\n".join(lines))

    # The orderings the whole paper rests on, with statistical margin:
    assert estimates["mf8_bas8"].clearly_above(estimates["victim16"])
    assert estimates["mf8_bas8"].clearly_above(estimates["2way"])
    assert estimates["8way"].mean >= estimates["4way"].mean
    # And the B-Cache sits in 4-to-8-way territory on conflict loads.
    assert estimates["mf8_bas8"].mean > 0.8 * estimates["4way"].mean
