"""Benchmark: geometry-sensitivity ablation (line size, capacity)."""

from repro.experiments import sensitivity


def test_line_size_sensitivity(benchmark, bench_scale, archive):
    scale = bench_scale.scaled(0.5)
    result = benchmark.pedantic(
        sensitivity.run_line_size, args=(scale,), rounds=1, iterations=1
    )
    archive("sensitivity_line_size", result.render())
    # The B-Cache's reduction is not an artefact of 32-byte lines.
    for point in result.points:
        assert point.reductions["mf8_bas8"] > 0.1
        assert point.reductions["mf8_bas8"] <= point.reductions["8way"] + 0.05


def test_cache_size_sensitivity(benchmark, bench_scale, archive):
    scale = bench_scale.scaled(0.5)
    result = benchmark.pedantic(
        sensitivity.run_cache_size, args=(scale,), rounds=1, iterations=1
    )
    archive("sensitivity_cache_size", result.render())
    rates = [p.baseline_miss_rate for p in result.points]
    assert rates == sorted(rates, reverse=True)  # capacity helps baseline
    for point in result.points:
        assert point.reductions["mf8_bas8"] > 0.05
