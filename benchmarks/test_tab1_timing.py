"""Benchmark: regenerate Table 1 (decoder timing analysis)."""

from repro.experiments.circuit_tables import run_tab1


def test_tab1_decoder_timing(benchmark, archive):
    result = benchmark(run_tab1)
    archive("tab1_decoder_timing", result.render())
    # Section 5.1's conclusion: every B-Cache decoder has slack, so the
    # B-Cache adds no access-time overhead.
    assert result.all_have_slack
    # And the B-Cache's NPD-vs-PD balance: the CAM path never dominates
    # by more than the original decoder's slack.
    for timing in result.timings:
        assert timing.bcache_ns <= timing.original_ns
