"""Benchmark: regenerate Table 2 (storage cost analysis)."""

import pytest

from repro.experiments.circuit_tables import run_tab2


def test_tab2_storage_cost(benchmark, archive):
    result = benchmark(run_tab2)
    archive("tab2_storage", result.render())
    # Paper accounting, reproduced exactly: 141312 -> 147456 SRAM-bit
    # equivalents, a 4.3% increase (Section 5.3), below the 4-way
    # cache's 7.98%.
    assert result.baseline.total_bits == 141312
    assert result.bcache.total_bits == 147456
    assert result.overhead == pytest.approx(0.0435, abs=0.001)
    assert result.overhead < result.fourway_overhead
