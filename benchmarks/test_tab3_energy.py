"""Benchmark: regenerate Table 3 (energy per cache access)."""

import pytest

from repro.experiments.circuit_tables import run_tab3


def test_tab3_energy_per_access(benchmark, archive):
    result = benchmark(run_tab3)
    archive("tab3_energy", result.render())
    # Section 5.4: +10.5% over the baseline, yet 17.4% / 44.4% / 65.5%
    # below same-sized 2-/4-/8-way caches.
    assert result.overhead == pytest.approx(0.105, abs=0.005)
    assert result.bcache_below(2) == pytest.approx(0.174, abs=0.02)
    assert result.bcache_below(4) == pytest.approx(0.444, abs=0.02)
    assert result.bcache_below(8) == pytest.approx(0.655, abs=0.02)
