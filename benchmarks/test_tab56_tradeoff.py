"""Benchmark: regenerate Tables 5 and 6 (MF x BAS x PD tradeoff)."""

from repro.experiments import tab56_tradeoff


def test_tab56_design_tradeoff(benchmark, bench_scale, archive):
    result = benchmark.pedantic(
        tab56_tradeoff.run, args=(bench_scale,), rounds=1, iterations=1
    )
    archive("tab56_tradeoff", result.render())

    # Section 6.3's crossover: at PD = 4 bits design B (MF=4, BAS=4)
    # beats design A (MF=2, BAS=8); at PD = 6 bits design A (MF=8,
    # BAS=8) beats design B (MF=16, BAS=4) — hence the headline design.
    assert result.cell(4, 4).reduction > result.cell(2, 8).reduction
    assert result.cell(8, 8).reduction > result.cell(16, 4).reduction

    # Table 6: the PD hit rate during misses falls as MF grows, for
    # both associativities.
    for bas in (4, 8):
        rates = [result.cell(mf, bas).pd_hit_rate for mf in (2, 4, 8, 16)]
        assert rates == sorted(rates, reverse=True)

    # Reductions grow monotonically with MF at fixed BAS (Fig 12 inset).
    for bas in (4, 8):
        reductions = [result.cell(mf, bas).reduction for mf in (2, 4, 8, 16)]
        assert reductions == sorted(reductions)
