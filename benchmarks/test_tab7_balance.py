"""Benchmark: regenerate Table 7 (set-usage balance, baseline vs B-Cache)."""

from repro.experiments import tab7_balance


def test_tab7_balance(benchmark, bench_scale, archive):
    result = benchmark.pedantic(
        tab7_balance.run, args=(bench_scale,), rounds=1, iterations=1
    )
    archive("tab7_balance", result.render())

    base_ave, bc_ave = result.averages()

    # Section 6.4's directions, on suite average:
    # fewer sets sit idle under the B-Cache...
    assert bc_ave.less_accessed_sets <= base_ave.less_accessed_sets + 0.02
    # ...and the misses that remain are far less concentrated: the
    # frequent-miss sets' intensity (share of misses per share of sets)
    # collapses towards uniform.
    def intensity(report):
        if report.frequent_miss_sets == 0:
            return 0.0
        return report.frequent_miss_share / report.frequent_miss_sets

    assert intensity(bc_ave) < intensity(base_ave)

    # art/lucas/swim/mcf: no meaningful frequent-miss concentration in
    # the baseline (misses are uniform over sets).
    for row in result.rows:
        if row.benchmark in ("art", "lucas", "swim", "mcf"):
            assert intensity(row.baseline) < 5.0
