"""Microbenchmarks: simulator throughput per cache organisation.

These are conventional pytest-benchmark timings (many rounds) of the
simulator's hot loop, useful for tracking performance regressions in
the models themselves.
"""

import random

import pytest

from repro.caches import make_cache

TRACE_LENGTH = 20_000


@pytest.fixture(scope="module")
def trace():
    rng = random.Random(99)
    conflict = [i * 16 * 1024 + 0x40 for i in range(10)]
    return [
        rng.choice(conflict) + rng.randrange(8) * 32
        if rng.random() < 0.3
        else rng.randrange(1 << 22)
        for _ in range(TRACE_LENGTH)
    ]


@pytest.mark.parametrize("spec", ["dm", "2way", "8way", "victim16", "mf8_bas8"])
def test_access_throughput(benchmark, trace, spec):
    def run():
        cache = make_cache(spec)
        access = cache.access
        for address in trace:
            access(address)
        return cache.stats.misses

    misses = benchmark(run)
    assert 0 < misses <= TRACE_LENGTH


@pytest.mark.parametrize("spec", ["dm", "2way", "8way", "victim16", "mf8_bas8"])
def test_batch_throughput(benchmark, trace, spec):
    """The access_trace fast path on the same stream."""

    def run():
        cache = make_cache(spec)
        return cache.access_trace(trace).misses

    misses = benchmark(run)
    assert 0 < misses <= TRACE_LENGTH


@pytest.mark.parametrize("spec", ["dm", "mf8_bas8"])
def test_batch_speedup_floor(trace, spec):
    """Acceptance: the batch kernel is at least 2x the per-access loop.

    Timed directly (min of repeats) rather than via pytest-benchmark so
    the ratio comes from one interleaved measurement session.
    """
    import time

    def scalar() -> float:
        cache = make_cache(spec)
        access = cache.access
        start = time.perf_counter()
        for address in trace:
            access(address)
        return time.perf_counter() - start

    def batch() -> float:
        cache = make_cache(spec)
        start = time.perf_counter()
        cache.access_trace(trace)
        return time.perf_counter() - start

    scalar_time = min(scalar() for _ in range(3))
    batch_time = min(batch() for _ in range(3))
    speedup = scalar_time / batch_time
    assert speedup >= 2.0, (
        f"{spec}: batch speedup {speedup:.2f}x below the 2x floor "
        f"(scalar {scalar_time * 1e3:.1f} ms, batch {batch_time * 1e3:.1f} ms)"
    )
