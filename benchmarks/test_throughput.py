"""Microbenchmarks: simulator throughput per cache organisation.

These are conventional pytest-benchmark timings (many rounds) of the
simulator's hot loop, useful for tracking performance regressions in
the models themselves.
"""

import random

import pytest

from repro.caches import make_cache

TRACE_LENGTH = 20_000


@pytest.fixture(scope="module")
def trace():
    rng = random.Random(99)
    conflict = [i * 16 * 1024 + 0x40 for i in range(10)]
    return [
        rng.choice(conflict) + rng.randrange(8) * 32
        if rng.random() < 0.3
        else rng.randrange(1 << 22)
        for _ in range(TRACE_LENGTH)
    ]


@pytest.mark.parametrize("spec", ["dm", "2way", "8way", "victim16", "mf8_bas8"])
def test_access_throughput(benchmark, trace, spec):
    def run():
        cache = make_cache(spec)
        access = cache.access
        for address in trace:
            access(address)
        return cache.stats.misses

    misses = benchmark(run)
    assert 0 < misses <= TRACE_LENGTH
