#!/usr/bin/env python
"""Build a custom workload from primitives and evaluate cache designs.

Models a software network-packet processor — the kind of embedded
workload the B-Cache targets ("can be applied to both high performance
and low-power" designs, Section 7):

* a hot flow table (skewed reuse, resident),
* four packet buffers that collide in the cache (ring buffers whose
  strides align with the cache way size),
* a streaming payload scan (misses nothing can remove).

Shows how to declare components, synthesise a deterministic trace,
persist it in the din text format and compare organisations on it.

Usage::

    python examples/custom_workload.py [n_accesses]
"""

import itertools
import sys
import tempfile
from pathlib import Path

from repro import make_cache
from repro.trace import load_trace, save_trace
from repro.workloads import build_address_stream, capacity, conflict, hot
from repro.workloads.synthesis import addresses_to_accesses


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000

    # 1. Declare the workload as weighted components.
    components = (
        hot(0.70, region_kb=6, alpha=1.3),          # flow table
        conflict(0.22, degree=4, span=8, set_region=13),  # packet rings
        capacity(0.08, region_kb=4096, kind="scan"),      # payload scan
    )
    addresses = build_address_stream(components, seed=1234)
    trace = list(
        addresses_to_accesses(addresses, n, write_fraction=0.4, seed=1234)
    )

    # 2. Persist and reload the trace (din text format), showing the
    #    interchange path for external simulators.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "packet_processor.din"
        save_trace(trace, path)
        reloaded = load_trace(path)
        assert reloaded == trace
        print(f"trace: {n} accesses, saved to din format "
              f"({path.stat().st_size // 1024} kB) and reloaded")
    print()

    # 3. Compare every organisation in the study on the same trace.
    specs = ("dm", "2way", "4way", "8way", "victim16",
             "column", "skew2", "mf8_bas8")
    print(f"{'config':<10} {'miss rate':>10} {'writebacks':>11}")
    base_rate = None
    for spec in specs:
        cache = make_cache(spec)
        for access in trace:
            cache.access(access.address, access.is_write)
        rate = cache.stats.miss_rate
        if spec == "dm":
            base_rate = rate
        print(f"{spec:<10} {rate:>9.3%} {cache.stats.writebacks:>11}")
    print()
    assert base_rate is not None
    bcache = make_cache("mf8_bas8")
    for access in trace:
        bcache.access(access.address, access.is_write)
    saved = (base_rate - bcache.stats.miss_rate) / base_rate
    print(f"B-Cache removes {saved:.1%} of the direct-mapped misses "
          "while keeping one-cycle hits.")


if __name__ == "__main__":
    main()
