#!/usr/bin/env python
"""Design-space exploration: pick (MF, BAS) for your own workload.

Sweeps the mapping factor and B-Cache associativity over a workload
mix, reporting for each design point the miss-rate reduction, the PD
CAM width it requires (which bounds decoder delay), the storage
overhead and the per-access energy — the full Section 6.3 tradeoff in
one table, on *your* traffic instead of SPEC2K.

Usage::

    python examples/design_space_exploration.py [benchmark] [n_accesses]
"""

import sys

from repro import BCache, BCacheGeometry, SPEC2K, make_cache
from repro.energy import (
    bcache_access_energy,
    bcache_storage,
    conventional_access_energy,
    conventional_storage,
)
from repro.stats import miss_rate_reduction


def explore(benchmark: str, n: int) -> None:
    profile = SPEC2K[benchmark]
    addresses = profile.data_addresses(n, seed=7)

    baseline = make_cache("dm")
    for address in addresses:
        baseline.access(address)
    base_rate = baseline.stats.miss_rate
    base_energy = conventional_access_energy(16 * 1024).total_pj
    base_bits = conventional_storage(16 * 1024).total_bits

    print(f"workload: {benchmark}, {n} accesses; baseline miss rate {base_rate:.3%}")
    print()
    header = (
        f"{'MF':>4} {'BAS':>4} {'PD bits':>8} {'reduction':>10} "
        f"{'PD-hit@miss':>12} {'area ovh':>9} {'energy ovh':>11}"
    )
    print(header)
    print("-" * len(header))

    best = None
    for bas in (2, 4, 8):
        for mf in (2, 4, 8, 16):
            geometry = BCacheGeometry(
                16 * 1024, 32, mapping_factor=mf, associativity=bas
            )
            cache = BCache(geometry)
            for address in addresses:
                cache.access(address)
            reduction = miss_rate_reduction(base_rate, cache.stats.miss_rate)
            area = bcache_storage(geometry).total_bits / base_bits - 1
            energy = bcache_access_energy(geometry).total_pj / base_energy - 1
            print(
                f"{mf:>4} {bas:>4} {geometry.pi_bits:>8} {reduction:>9.1%} "
                f"{cache.stats.pd_hit_rate_during_miss:>11.1%} "
                f"{area:>8.1%} {energy:>10.1%}"
            )
            # Score: reduction per % energy overhead, the Section 6.3
            # flavour of "good enough PD kept as short as possible".
            score = reduction - 2.0 * energy
            if best is None or score > best[0]:
                best = (score, mf, bas)

    assert best is not None
    print()
    print(
        f"suggested design for this workload: MF={best[1]}, BAS={best[2]} "
        f"(PD = {(best[1].bit_length() - 1) + (best[2].bit_length() - 1)} bits)"
    )
    print("(the paper chooses MF=8, BAS=8: the longest PD that still has")
    print(" decoder slack at every subarray size — see Table 1)")


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "crafty"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 80_000
    if benchmark not in SPEC2K:
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; choose from {', '.join(sorted(SPEC2K))}"
        )
    explore(benchmark, n)


if __name__ == "__main__":
    main()
