#!/usr/bin/env python
"""Whole-system view: IPC, energy and energy-delay product per design.

Runs the full pipeline the paper uses for Figures 8 and 9 — synthetic
workload -> L1I/L1D + L2 + memory hierarchy -> analytic out-of-order
core -> Figure 10 energy equations — for one benchmark across cache
organisations, and reports IPC, normalised energy and the energy-delay
product (EDP, the metric embedded designers actually optimise).

Usage::

    python examples/performance_energy_tradeoff.py [benchmark] [n_instructions]
"""

import sys

from repro import SPEC2K, make_cache
from repro.cpu import OoOProcessorModel
from repro.energy import RunActivity, SystemEnergyModel, access_energy_for
from repro.hierarchy import MemoryHierarchy


def run_config(spec: str, trace) -> tuple:
    hierarchy = MemoryHierarchy(l1i=make_cache(spec), l1d=make_cache(spec))
    result = OoOProcessorModel(hierarchy).run(trace)
    stats = hierarchy.stats
    l1i, l1d = hierarchy.l1i.cache.stats, hierarchy.l1d.cache.stats
    activity = RunActivity(
        l1i_accesses=l1i.accesses,
        l1i_misses=l1i.misses,
        l1i_pd_predicted_misses=l1i.pd_miss_misses,
        l1d_accesses=l1d.accesses,
        l1d_misses=l1d.misses,
        l1d_pd_predicted_misses=l1d.pd_miss_misses,
        l2_accesses=stats.l2_accesses,
        l2_misses=stats.l2_misses,
        cycles=result.cycles,
    )
    return result, activity


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "equake"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    profile = SPEC2K[benchmark]
    trace = list(profile.combined_trace(n, seed=3))
    print(f"workload: {benchmark}, {n} instructions "
          f"({sum(1 for a in trace if not a.is_instruction)} data refs)")
    print()

    specs = ("dm", "2way", "4way", "8way", "mf8_bas8", "victim16")
    runs = {spec: run_config(spec, trace) for spec in specs}

    # Calibrate static power on the baseline run (Section 6.2).
    baseline_energy_model = SystemEnergyModel(
        l1i=access_energy_for("dm"), l1d=access_energy_for("dm")
    )
    static_per_cycle = baseline_energy_model.static_pj_per_cycle_for_baseline(
        runs["dm"][1]
    )

    base_result, base_activity = runs["dm"]
    base_report = baseline_energy_model.report(base_activity, static_per_cycle)
    base_edp = base_report.total_pj * base_result.cycles

    header = (f"{'config':<10} {'IPC':>6} {'ΔIPC':>7} {'L1D miss':>9} "
              f"{'energy':>8} {'EDP':>7}")
    print(header)
    print("-" * len(header))
    for spec in specs:
        result, activity = runs[spec]
        config_energy = access_energy_for(spec)
        model = SystemEnergyModel(l1i=config_energy, l1d=config_energy)
        report = model.report(activity, static_per_cycle)
        energy_norm = report.total_pj / base_report.total_pj
        edp_norm = (report.total_pj * result.cycles) / base_edp
        delta = result.ipc / base_result.ipc - 1
        print(
            f"{spec:<10} {result.ipc:>6.2f} {delta:>6.1%} "
            f"{result.l1d_miss_rate:>8.2%} {energy_norm:>8.3f} {edp_norm:>7.3f}"
        )

    print()
    print("energy and EDP normalised to the direct-mapped baseline;")
    print("the B-Cache pairs near-8-way IPC with direct-mapped-class energy.")


if __name__ == "__main__":
    main()
