#!/usr/bin/env python
"""Compare the two processor models on the same workload.

The library ships two IPC estimators:

* the **analytic** model (`repro.cpu.timing`) — the closed-form
  coupling between L1 misses and cycles the Figure 8 study uses;
* the **event-driven** core (`repro.cpu.pipeline`) — fetch starvation,
  window-limited overlap and MSHR-bounded memory-level parallelism at
  event granularity.

Absolute IPC differs (they model overlap differently); the *relative*
gains per cache organisation — the paper's actual result — agree.
Also sweeps the window size to show where the analytic exposure factor
comes from.

Usage::

    python examples/pipeline_models.py [benchmark] [n_instructions]
"""

import sys

from repro import SPEC2K, make_cache
from repro.cpu import EventDrivenCore, OoOProcessorModel, PipelineConfig
from repro.hierarchy import MemoryHierarchy


def run_both(spec: str, trace) -> tuple[float, float]:
    analytic = OoOProcessorModel(
        MemoryHierarchy(l1i=make_cache(spec), l1d=make_cache(spec))
    ).run(iter(trace))
    event = EventDrivenCore(
        MemoryHierarchy(l1i=make_cache(spec), l1d=make_cache(spec))
    ).run(iter(trace))
    return analytic.ipc, event.ipc


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "equake"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    trace = list(SPEC2K[benchmark].combined_trace(n, seed=9))
    print(f"workload: {benchmark}, {n} instructions\n")

    specs = ("dm", "2way", "8way", "mf8_bas8")
    print(f"{'config':<10} {'analytic IPC':>13} {'event IPC':>10} "
          f"{'analytic gain':>14} {'event gain':>11}")
    base = run_both("dm", trace)
    for spec in specs:
        analytic_ipc, event_ipc = run_both(spec, trace)
        print(
            f"{spec:<10} {analytic_ipc:>13.3f} {event_ipc:>10.3f} "
            f"{analytic_ipc / base[0] - 1:>13.1%} {event_ipc / base[1] - 1:>10.1%}"
        )

    print("\nwindow-size sweep (event-driven, baseline cache):")
    print(f"{'window':>8} {'IPC':>7}")
    for window in (1, 4, 16, 64):
        core = EventDrivenCore(
            MemoryHierarchy(l1i=make_cache("dm"), l1d=make_cache("dm")),
            PipelineConfig(window_size=window),
        )
        result = core.run(iter(trace))
        print(f"{window:>8} {result.ipc:>7.3f}")
    print("\nlarger windows hide more load latency — the data_exposure")
    print("factor in the analytic model summarises exactly this effect.")


if __name__ == "__main__":
    main()
