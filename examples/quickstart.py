#!/usr/bin/env python
"""Quickstart: build a B-Cache and compare it to conventional designs.

Runs the paper's headline configuration (16 kB, 32 B lines, MF = 8,
BAS = 8) against the direct-mapped baseline, a 4-way and an 8-way cache
on the synthetic `equake` workload — the paper's best case, where
conflict misses dominate.

Usage::

    python examples/quickstart.py [n_accesses]
"""

import sys

from repro import BCache, BCacheGeometry, SPEC2K, make_cache
from repro.stats import miss_rate_reduction


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000

    # 1. Describe the design point.  The geometry object derives the
    #    programmable/non-programmable index split from (size, MF, BAS).
    geometry = BCacheGeometry(
        size=16 * 1024, line_size=32, mapping_factor=8, associativity=8
    )
    print(geometry.describe())
    print()

    # 2. Generate a deterministic workload and run every organisation
    #    over the same addresses.
    profile = SPEC2K["equake"]
    trace = list(profile.data_trace(n, seed=42))
    print(f"workload: {profile.name} ({profile.suite}), {n} data references")
    print(f"  {profile.notes}")
    print()

    caches = {
        "direct-mapped": make_cache("dm"),
        "4-way LRU": make_cache("4way"),
        "8-way LRU": make_cache("8way"),
        "B-Cache MF=8 BAS=8": BCache(geometry, policy="lru"),
    }
    for cache in caches.values():
        for access in trace:
            cache.access(access.address, access.is_write)

    # 3. Report miss rates and reductions over the baseline.
    baseline = caches["direct-mapped"].stats.miss_rate
    print(f"{'organisation':<22} {'miss rate':>10} {'reduction':>10}")
    for name, cache in caches.items():
        rate = cache.stats.miss_rate
        reduction = miss_rate_reduction(baseline, rate)
        print(f"{name:<22} {rate:>9.3%} {reduction:>9.1%}")

    bcache = caches["B-Cache MF=8 BAS=8"]
    print()
    print(
        "PD hit rate during misses: "
        f"{bcache.stats.pd_hit_rate_during_miss:.1%} "
        "(lower = replacement policy freer to balance sets)"
    )


if __name__ == "__main__":
    main()
