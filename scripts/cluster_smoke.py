"""Chaos gate for the fleet coordinator (``make cluster`` / CI).

Starts a real two-node ``bcache-serve`` fleet on Unix sockets and runs
``bcache-cluster`` against it twice:

1. with ``node_down``/``node_flaky`` faults injected at dispatch —
   the sweep must stay bit-identical to a serial local run
   (``--verify``) and must have re-dispatched at least one job
   (``--expect-redispatch``);
2. against two endpoints that do not exist — every node is down, so
   the coordinator must degrade to local in-process execution
   (``--expect-fallback``) and still verify bit-identical.

Exit status is non-zero if either leg fails; the servers are always
SIGTERMed and reaped so CI never leaks processes.
"""

from __future__ import annotations

import contextlib
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def start_server(sock_path: Path) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--unix", str(sock_path),
         "--shards", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    ready = proc.stdout.readline()
    if "ready" not in ready:
        proc.kill()
        raise SystemExit(f"bcache-serve did not come up: {ready!r}")
    return proc


def run_leg(title: str, argv: list[str]) -> int:
    print(f"=== cluster-smoke: {title} ===", flush=True)
    return subprocess.call([sys.executable, "-m", "repro.engine.cluster", *argv])


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as tmp:
        root = Path(tmp)
        sock_a, sock_b = root / "a.sock", root / "b.sock"
        servers = [start_server(sock_a), start_server(sock_b)]
        try:
            code = run_leg(
                "2-node fleet under node faults",
                ["--connect", f"unix:{sock_a},unix:{sock_b}",
                 "--inject-faults", "node_down@1,node_flaky@2",
                 "--verify", "--expect-redispatch", "1"],
            )
            if code == 0:
                code = run_leg(
                    "all nodes down -> local fallback",
                    ["--connect", f"unix:{root}/ghost-a.sock,unix:{root}/ghost-b.sock",
                     "--verify", "--expect-fallback", "1"],
                )
        finally:
            for server in servers:
                with contextlib.suppress(ProcessLookupError):
                    server.send_signal(signal.SIGTERM)
            deadline = time.monotonic() + 30.0
            for server in servers:
                with contextlib.suppress(subprocess.TimeoutExpired):
                    server.wait(timeout=max(0.1, deadline - time.monotonic()))
                if server.poll() is None:
                    server.kill()
    return code


if __name__ == "__main__":
    raise SystemExit(main())
