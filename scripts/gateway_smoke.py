"""Serving-stack smoke for the HTTP tier (``make gateway-smoke`` / CI).

Boots the full production topology — ``bcache-serve`` (2 shards, result
cache on) fronted by ``bcache-gateway`` — and drives it twice with
``bcache-loadgen`` over HTTP using a cache-friendly repeated mix:

1. **cold → warm**: the first leg populates the result cache; it must
   finish with zero errors, stats bit-identical to a local replay
   (``--verify``), and at least one identical-job dedup (micro-batch
   coalescing or singleflight) — the regression that motivated the
   canonical job key.
2. **warm**: the second leg re-runs the same mix; the cumulative result
   cache hit ratio must reach at least 0.5 — repeats are answered from
   memory, not shards.

Finally both processes get SIGTERM and must drain to exit 0 — the
gateway printing its drained line — so CI never leaks processes.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"

REQUESTS = 120
CLIENTS = 8
MIX = "repeated:6"


def _env(root: Path) -> dict[str, str]:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC)
    env.setdefault("REPRO_TRACE_STORE", str(root / "traces"))
    return env


def start_serve(root: Path) -> tuple[subprocess.Popen, Path]:
    sock = root / "serve.sock"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--unix", str(sock),
         "--shards", "2", "--result-cache", str(root / "resultcache")],
        env=_env(root), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    assert proc.stdout is not None
    ready = proc.stdout.readline()
    if "ready" not in ready:
        proc.kill()
        raise SystemExit(f"bcache-serve did not come up: {ready!r}")
    print(f"serve: {ready.strip()}", flush=True)
    return proc, sock


def start_gateway(root: Path, sock: Path) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.gateway", "--port", "0",
         "--backend", f"unix:{sock}"],
        env=_env(root), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    assert proc.stdout is not None
    ready = proc.stdout.readline()
    if "ready" not in ready:
        proc.kill()
        raise SystemExit(f"bcache-gateway did not come up: {ready!r}")
    print(f"gateway: {ready.strip()}", flush=True)
    address = next(
        word.split("=", 1)[1]
        for word in ready.split()
        if word.startswith("http=")
    )
    return proc, f"http://{address}"


def run_loadgen(root: Path, url: str, out: Path) -> dict:
    code = subprocess.call(
        [sys.executable, "-m", "repro.serve.loadgen", "--gateway", url,
         "--requests", str(REQUESTS), "--clients", str(CLIENTS),
         "--mix", MIX, "--verify", "--out", str(out)],
        env=_env(root),
    )
    if code != 0:
        raise SystemExit(f"bcache-loadgen exited {code}")
    return json.loads(out.read_text())


def gate(condition: bool, message: str) -> None:
    print(("PASS" if condition else "FAIL") + f": {message}", flush=True)
    if not condition:
        raise SystemExit(1)


def drain(proc: subprocess.Popen, name: str) -> str:
    with contextlib.suppress(ProcessLookupError):
        proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit(f"{name} did not drain within 60s")
    gate(proc.returncode == 0, f"{name} drained to exit 0 on SIGTERM")
    return output or ""


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="gateway-smoke-") as tmp:
        root = Path(tmp)
        serve_proc, sock = start_serve(root)
        gateway_proc, url = start_gateway(root, sock)
        try:
            print("=== gateway-smoke: leg 1 (cold -> warm) ===", flush=True)
            started = time.monotonic()
            cold = run_loadgen(root, url, root / "leg1.json")
            print(f"leg 1 took {time.monotonic() - started:.1f}s", flush=True)
            gate(cold["errors"] == 0, "leg 1 finished with zero errors")
            gate(cold.get("verified_identical") is True,
                 "leg 1 served stats bit-identical to local replay")
            deduped = (int(cold.get("coalesced", 0))
                       + int(cold.get("coalesced_inflight", 0))
                       + int(cold.get("singleflight_waits", 0)))
            gate(deduped > 0,
                 f"repeated mix deduplicated identical jobs ({deduped} hits)")

            print("=== gateway-smoke: leg 2 (warm) ===", flush=True)
            warm = run_loadgen(root, url, root / "leg2.json")
            gate(warm["errors"] == 0, "leg 2 finished with zero errors")
            gate(warm.get("verified_identical") is True,
                 "leg 2 served stats bit-identical to local replay")
            cache = warm.get("resultcache") or {}
            hits = int(cache.get("hits_memory", 0)) + int(
                cache.get("hits_disk", 0))
            probes = hits + int(cache.get("misses", 0))
            ratio = hits / probes if probes else 0.0
            gate(ratio >= 0.5,
                 f"result cache hit ratio {ratio:.2f} >= 0.5 "
                 f"({hits}/{probes} probes)")
        finally:
            gateway_output = drain(gateway_proc, "bcache-gateway")
            drain(serve_proc, "bcache-serve")
        gate("drained" in gateway_output,
             "gateway announced its drain before exiting")
    print("gateway-smoke: all gates passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
