"""Tracing smoke for the serving stack (``make trace`` / CI).

Boots ``bcache-serve`` fronted by ``bcache-gateway`` twice and drives
each with ``bcache-loadgen`` over HTTP:

1. **off tier** (``REPRO_OBS=off``) — the baseline: zero errors, stats
   bit-identical to a local replay (``--verify``), and **no** event log
   written — the tracing layer must be invisible when disabled.
2. **full tier** (``REPRO_OBS=full``) — serve and gateway write
   separate event logs; the leg must stay bit-identical, and
   ``bcache-trace --check`` over both logs (merged by trace id) must
   find ≥99% complete single-rooted span trees.

The two legs use separate cold result caches, so their request rates
are comparable; the full-tier rps must stay within
``$TRACE_SMOKE_RPS_TOLERANCE`` (default 0.25) of the off-tier baseline.
The design budget for the events tier is ≤5% — the looser CI gate only
absorbs shared-runner noise; both rates are printed for eyeballing.

Both processes get SIGTERM at the end of each leg and must drain to
exit 0, so CI never leaks processes.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"

REQUESTS = 120
CLIENTS = 8
MIX = "repeated:6"
CHECK_THRESHOLD = "0.99"


def _env(root: Path, obs: str, log: Path | None = None) -> dict[str, str]:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC)
    env.setdefault("REPRO_TRACE_STORE", str(root / "traces"))
    env["REPRO_OBS"] = obs
    env.pop("REPRO_OBS_LOG", None)
    if log is not None:
        env["REPRO_OBS_LOG"] = str(log)
    return env


def start_serve(
    root: Path, obs: str, log: Path | None
) -> tuple[subprocess.Popen, Path]:
    sock = root / "serve.sock"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--unix", str(sock),
         "--shards", "2", "--result-cache", str(root / "resultcache")],
        env=_env(root, obs, log), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    assert proc.stdout is not None
    ready = proc.stdout.readline()
    if "ready" not in ready:
        proc.kill()
        raise SystemExit(f"bcache-serve did not come up: {ready!r}")
    print(f"serve: {ready.strip()}", flush=True)
    return proc, sock


def start_gateway(
    root: Path, sock: Path, obs: str, log: Path | None
) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.gateway", "--port", "0",
         "--backend", f"unix:{sock}"],
        env=_env(root, obs, log), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    assert proc.stdout is not None
    ready = proc.stdout.readline()
    if "ready" not in ready:
        proc.kill()
        raise SystemExit(f"bcache-gateway did not come up: {ready!r}")
    print(f"gateway: {ready.strip()}", flush=True)
    address = next(
        word.split("=", 1)[1]
        for word in ready.split()
        if word.startswith("http=")
    )
    return proc, f"http://{address}"


def run_loadgen(root: Path, url: str, out: Path) -> dict:
    code = subprocess.call(
        [sys.executable, "-m", "repro.serve.loadgen", "--gateway", url,
         "--requests", str(REQUESTS), "--clients", str(CLIENTS),
         "--mix", MIX, "--verify", "--out", str(out)],
        env=_env(root, "off"),
    )
    if code != 0:
        raise SystemExit(f"bcache-loadgen exited {code}")
    return json.loads(out.read_text())


def gate(condition: bool, message: str) -> None:
    print(("PASS" if condition else "FAIL") + f": {message}", flush=True)
    if not condition:
        raise SystemExit(1)


def drain(proc: subprocess.Popen, name: str) -> str:
    with contextlib.suppress(ProcessLookupError):
        proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit(f"{name} did not drain within 60s")
    gate(proc.returncode == 0, f"{name} drained to exit 0 on SIGTERM")
    return output or ""


def run_leg(
    root: Path, obs: str, serve_log: Path | None, gateway_log: Path | None
) -> dict:
    serve_proc, sock = start_serve(root, obs, serve_log)
    gateway_proc, url = start_gateway(root, sock, obs, gateway_log)
    try:
        started = time.monotonic()
        report = run_loadgen(root, url, root / "loadgen.json")
        print(f"leg took {time.monotonic() - started:.1f}s", flush=True)
    finally:
        drain(gateway_proc, "bcache-gateway")
        drain(serve_proc, "bcache-serve")
    gate(report["errors"] == 0, f"{obs}-tier leg finished with zero errors")
    gate(report.get("verified_identical") is True,
         f"{obs}-tier stats bit-identical to local replay")
    return report


def main() -> int:
    tolerance = float(os.environ.get("TRACE_SMOKE_RPS_TOLERANCE", "0.25"))
    with tempfile.TemporaryDirectory(prefix="trace-smoke-") as tmp:
        root = Path(tmp)

        print("=== trace-smoke: leg 1 (REPRO_OBS=off baseline) ===",
              flush=True)
        off_root = root / "off"
        off_root.mkdir()
        off_log = off_root / "serve-events.jsonl"
        off = run_leg(off_root, "off", off_log, off_root / "gw.jsonl")
        gate(not off_log.exists() and not (off_root / "gw.jsonl").exists(),
             "off tier wrote no event logs")

        print("=== trace-smoke: leg 2 (REPRO_OBS=full, traced) ===",
              flush=True)
        full_root = root / "full"
        full_root.mkdir()
        serve_log = full_root / "serve-events.jsonl"
        gateway_log = full_root / "gateway-events.jsonl"
        full = run_leg(full_root, "full", serve_log, gateway_log)
        gate(serve_log.exists() and gateway_log.exists(),
             "full tier wrote both event logs")

        off_rps = float(off.get("rps", 0.0))
        full_rps = float(full.get("rps", 0.0))
        overhead = 1.0 - full_rps / off_rps if off_rps else 0.0
        print(f"rps off={off_rps:.1f} full={full_rps:.1f} "
              f"overhead={overhead:+.1%} (budget 5%, gate {tolerance:.0%})",
              flush=True)
        gate(full_rps >= off_rps * (1.0 - tolerance),
             f"full-tier rps within {tolerance:.0%} of the off baseline")

        code = subprocess.call(
            [sys.executable, "-m", "repro.obs.traceview",
             str(gateway_log), str(serve_log),
             "--check", "--threshold", CHECK_THRESHOLD],
            env=_env(root, "off"),
        )
        gate(code == 0,
             f"bcache-trace --check: >={CHECK_THRESHOLD} of traces are "
             "complete single-rooted trees")
        subprocess.call(
            [sys.executable, "-m", "repro.obs.traceview",
             str(gateway_log), str(serve_log), "--stage-summary"],
            env=_env(root, "off"),
        )
    print("trace-smoke: all gates passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
