"""Reproduction of "Balanced Cache: Reducing Conflict Misses of
Direct-Mapped Caches through Programmable Decoders" (ISCA 2006).

Public API
----------
Core contribution:
    :class:`BCache`, :class:`BCacheGeometry`,
    :class:`ProgrammableDecoderBank`

Cache substrates:
    :class:`DirectMappedCache`, :class:`SetAssociativeCache`,
    :class:`FullyAssociativeCache`, :class:`VictimBufferCache`,
    :class:`ColumnAssociativeCache`, :class:`SkewedAssociativeCache`,
    :class:`HighlyAssociativeCache`, :func:`make_cache`

System models:
    :class:`MemoryHierarchy`, :class:`OoOProcessorModel`,
    :class:`SystemEnergyModel`

Workloads:
    :data:`SPEC2K` (26 synthetic benchmark profiles),
    :class:`BenchmarkProfile`

Quickstart::

    from repro import BCache, BCacheGeometry, SPEC2K

    geometry = BCacheGeometry(size=16 * 1024, line_size=32,
                              mapping_factor=8, associativity=8)
    cache = BCache(geometry, policy="lru")
    for access in SPEC2K["equake"].data_trace(200_000):
        cache.access(access.address, access.is_write)
    print(cache.stats.miss_rate)
"""

from repro.caches import (
    Cache,
    ColumnAssociativeCache,
    DirectMappedCache,
    FullyAssociativeCache,
    HighlyAssociativeCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
    VictimBufferCache,
    make_cache,
)
from repro.core import BCache, BCacheGeometry, ProgrammableDecoderBank
from repro.cpu import OoOProcessorModel, ProcessorConfig
from repro.energy import SystemEnergyModel, access_energy_for
from repro.hierarchy import MemoryHierarchy
from repro.stats import analyze_balance, miss_rate_reduction
from repro.trace import Access, AccessType
from repro.workloads import ALL_BENCHMARKS, SPEC2K, BenchmarkProfile, get_profile

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS",
    "Access",
    "AccessType",
    "BCache",
    "BCacheGeometry",
    "BenchmarkProfile",
    "Cache",
    "ColumnAssociativeCache",
    "DirectMappedCache",
    "FullyAssociativeCache",
    "HighlyAssociativeCache",
    "MemoryHierarchy",
    "OoOProcessorModel",
    "ProcessorConfig",
    "ProgrammableDecoderBank",
    "SPEC2K",
    "SetAssociativeCache",
    "SkewedAssociativeCache",
    "SystemEnergyModel",
    "VictimBufferCache",
    "access_energy_for",
    "analyze_balance",
    "get_profile",
    "make_cache",
    "miss_rate_reduction",
    "__version__",
]
