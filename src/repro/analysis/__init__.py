"""Correctness tooling for the cache models (lint pass + runtime sanitizer).

Two cooperating layers keep the simulators honest as the model zoo
grows:

* :mod:`repro.analysis.lint` — a custom AST lint pass (``bcache-lint``)
  with simulator-specific rules: interface completeness of every
  :class:`~repro.caches.base.Cache` subclass, statistics routed through
  the base class, ``slots=True`` on hot-path dataclasses, geometry
  validated via ``log2_exact``, no unseeded randomness, no float
  arithmetic in index/tag computation, no mutable default arguments.
* :mod:`repro.analysis.sanitizer` — a runtime shadow-checker that wraps
  any cache during simulation and verifies residency, eviction
  accounting, dirty-bit discipline and the B-Cache's programmable
  decoder invariants (Section 3.1 geometry equations, Figure 1
  uniqueness), plus a differential mode cross-checking hit/miss streams
  against tiny obviously-correct reference models.

See ``docs/analysis.md`` for the rule-by-rule reference.
"""

# Lazy re-exports (PEP 562): keeps ``python -m repro.analysis.lint``
# from importing the sanitizer (and tripping the double-import warning).
from typing import Any

_EXPORTS = {
    "Violation": "repro.analysis.lint",
    "lint_paths": "repro.analysis.lint",
    "lint_source": "repro.analysis.lint",
    "SanitizedCache": "repro.analysis.sanitizer",
    "SanitizerError": "repro.analysis.sanitizer",
    "install_global_sanitizer": "repro.analysis.sanitizer",
    "uninstall_global_sanitizer": "repro.analysis.sanitizer",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> "Any":
    if name in _EXPORTS:
        import importlib

        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
