"""Abstract domains for the flow engine (:mod:`repro.analysis.flow`).

Three lattices, shared by the BCL013/BCL014/BCL015 rule families:

* :class:`Interval` — integer ranges ``[lo, hi]`` with open ends, the
  numeric half of the (interval, known-mask-width) domain the bit-width
  proof runs on.  Bit operations (``&``, ``|``, ``^``, shifts) carry
  mask-width information through ``bit_length`` bounds, which is what
  makes ``block & (num_sets - 1)`` provably land in ``[0, num_sets-1]``.
* taint — a finite powerset of source labels (``wallclock``, ``pid``,
  ``random``, ``unordered``, ``unpicklable``, ``addr``) joined by union.
* :class:`Val` — the product value: optional integer, ``None``-ness,
  sequence/mapping/tuple/object components, and the taint set.  ``Val``
  is immutable; transfer functions build new values.

Sequences and mappings carry a *provenance* path (``self._tags[]``…)
so subscript stores reached through local aliases still feed the
per-attribute content summaries the interprocedural fixpoint uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

#: Taint labels understood by the rule families.
TAINT_WALLCLOCK = "wallclock"
TAINT_PID = "pid"
TAINT_RANDOM = "random"
TAINT_UNORDERED = "unordered"
TAINT_UNPICKLABLE = "unpicklable"
TAINT_ADDR = "addr"

NO_TAINT: frozenset[str] = frozenset()

#: Beyond this nesting depth value structure collapses to opaque TOP.
MAX_DEPTH = 5


def _min_opt(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return min(a, b)


def _max_opt(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return max(a, b)


@dataclass(frozen=True, slots=True)
class Interval:
    """Integer interval ``[lo, hi]``; ``None`` means unbounded."""

    lo: Optional[int]
    hi: Optional[int]

    @classmethod
    def exact(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def top(cls) -> "Interval":
        return cls(None, None)

    @classmethod
    def nonneg(cls) -> "Interval":
        return cls(0, None)

    # -- predicates ----------------------------------------------------
    @property
    def is_exact(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def value(self) -> int:
        assert self.lo is not None and self.lo == self.hi
        return self.lo

    def ge(self, bound: int) -> bool:
        """Provably ``>= bound`` for every concrete value."""
        return self.lo is not None and self.lo >= bound

    def le(self, bound: int) -> bool:
        """Provably ``<= bound`` for every concrete value."""
        return self.hi is not None and self.hi <= bound

    def contains(self, value: int) -> bool:
        return (self.lo is None or self.lo <= value) and (
            self.hi is None or value <= self.hi
        )

    # -- lattice -------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        return Interval(_min_opt(self.lo, other.lo), _max_opt(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        """Classic interval widening: discard unstable bounds."""
        lo = self.lo
        if newer.lo is None or (lo is not None and newer.lo < lo):
            lo = None
        hi = self.hi
        if newer.hi is None or (hi is not None and newer.hi > hi):
            hi = None
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection; ``None`` when empty (unreachable)."""
        lo = _max_meet(self.lo, other.lo)
        hi = _min_meet(self.hi, other.hi)
        if lo is not None and hi is not None and lo > hi:
            return None
        return Interval(lo, hi)

    # -- arithmetic ----------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        return Interval(
            None if self.lo is None or other.lo is None else self.lo + other.lo,
            None if self.hi is None or other.hi is None else self.hi + other.hi,
        )

    def sub(self, other: "Interval") -> "Interval":
        return Interval(
            None if self.lo is None or other.hi is None else self.lo - other.hi,
            None if self.hi is None or other.lo is None else self.hi + -other.lo,
        )

    def neg(self) -> "Interval":
        return Interval(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def mul(self, other: "Interval") -> "Interval":
        bounds = (self.lo, self.hi, other.lo, other.hi)
        if None not in bounds:
            products = [
                self.lo * other.lo,  # type: ignore[operator]
                self.lo * other.hi,  # type: ignore[operator]
                self.hi * other.lo,  # type: ignore[operator]
                self.hi * other.hi,  # type: ignore[operator]
            ]
            return Interval(min(products), max(products))
        if self.ge(0) and other.ge(0):
            lo = self.lo * other.lo  # type: ignore[operator]
            hi = None if self.hi is None or other.hi is None else self.hi * other.hi
            return Interval(lo, hi)
        return Interval.top()

    def floordiv(self, other: "Interval") -> "Interval":
        if other.ge(1):
            if self.ge(0):
                lo = 0 if other.hi is None else self.lo // other.hi  # type: ignore[operator]
                hi = None if self.hi is None else self.hi // other.lo  # type: ignore[operator]
                return Interval(lo, hi)
            if self.lo is not None and self.hi is not None:
                return Interval(self.lo // other.lo, self.hi // other.lo)  # type: ignore[operator]
        return Interval.top()

    def mod(self, other: "Interval") -> "Interval":
        """Python ``%``: result has the divisor's sign."""
        if other.ge(1) and other.hi is not None:
            out = Interval(0, other.hi - 1)
            if self.ge(0):
                met = out.meet(Interval(0, self.hi))
                if met is not None:
                    return met
            return out
        return Interval.top()

    def lshift(self, other: "Interval") -> "Interval":
        if self.ge(0) and other.ge(0):
            lo = self.lo << other.lo  # type: ignore[operator]
            hi = (
                None
                if self.hi is None or other.hi is None
                else self.hi << other.hi
            )
            return Interval(lo, hi)
        return Interval.top()

    def rshift(self, other: "Interval") -> "Interval":
        if self.ge(0) and other.ge(0):
            if self.hi is None:
                return Interval(0, None)
            lo = 0 if other.hi is None else self.lo >> min(other.hi, 512)  # type: ignore[operator]
            return Interval(lo, self.hi >> other.lo)  # type: ignore[operator]
        return Interval.top()

    def _bit_hi(self, other: "Interval") -> Optional[int]:
        """Upper bound of ``|``/``^`` via known mask widths."""
        if self.hi is None or other.hi is None:
            return None
        width = max(self.hi.bit_length(), other.hi.bit_length())
        return (1 << width) - 1

    def and_(self, other: "Interval") -> "Interval":
        if self.ge(0) and other.ge(0):
            return Interval(0, _min_opt(self.hi, other.hi))
        # One side a known non-negative mask bounds the result even if
        # the other side's sign is unknown (x & mask strips the sign).
        if other.ge(0):
            return Interval(0, other.hi)
        if self.ge(0):
            return Interval(0, self.hi)
        return Interval.top()

    def or_(self, other: "Interval") -> "Interval":
        if self.ge(0) and other.ge(0):
            return Interval(_max_opt(self.lo, other.lo), self._bit_hi(other))
        return Interval.top()

    def xor(self, other: "Interval") -> "Interval":
        if self.ge(0) and other.ge(0):
            return Interval(0, self._bit_hi(other))
        return Interval.top()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


def _max_meet(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _min_meet(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


# ----------------------------------------------------------------------
# Structured components
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SeqInfo:
    """List/tuple/range component: element summary + length bounds."""

    elem: "Val"
    length: Interval
    prov: Optional[str] = None
    unordered: bool = False  # iteration order is nondeterministic


@dataclass(frozen=True, slots=True)
class MapInfo:
    """Dict component: key/value summaries + length bounds."""

    key: "Val"
    val: "Val"
    length: Interval
    prov: Optional[str] = None
    unordered: bool = False


@dataclass(frozen=True, slots=True)
class ObjInfo:
    """Instance component.

    ``concrete`` is the live Python object in proof mode (attribute
    reads are seeded from it); ``attrs`` holds symbolic attributes for
    synthetic objects (contract results, constructor calls, lint-mode
    ``self``).  ``path`` is the provenance root for attribute stores.
    """

    cls_name: str
    concrete: Any = None
    attrs: tuple[tuple[str, "Val"], ...] = ()
    path: Optional[str] = None

    def attr(self, name: str) -> Optional["Val"]:
        for key, value in self.attrs:
            if key == name:
                return value
        return None


@dataclass(frozen=True, slots=True)
class FuncInfo:
    """A callable value: a lambda/def AST node plus its closure env."""

    node: Any
    env: Any = None
    ctx: Any = None


# ----------------------------------------------------------------------
# The product value
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Val:
    """One abstract value: the product of all component lattices.

    A component set to ``None``/``False`` means "this value is provably
    never of that kind"; a value with *no* components is bottom
    (unreachable).  ``other`` marks presence of any unmodeled kind
    (strings, floats, opaque objects).
    """

    num: Optional[Interval] = None
    maybe_none: bool = False
    seq: Optional[SeqInfo] = None
    map: Optional[MapInfo] = None
    tup: Optional[tuple["Val", ...]] = None
    obj: Optional[ObjInfo] = None
    func: Optional[FuncInfo] = None
    other: bool = False
    taint: frozenset[str] = NO_TAINT

    # -- constructors --------------------------------------------------
    @classmethod
    def bottom(cls) -> "Val":
        return _BOTTOM

    @classmethod
    def top(cls, taint: frozenset[str] = NO_TAINT) -> "Val":
        return cls(
            num=Interval.top(),
            maybe_none=True,
            other=True,
            taint=taint,
        )

    @classmethod
    def of_int(cls, lo: Optional[int], hi: Optional[int], taint: frozenset[str] = NO_TAINT) -> "Val":
        return cls(num=Interval(lo, hi), taint=taint)

    @classmethod
    def exact(cls, value: int, taint: frozenset[str] = NO_TAINT) -> "Val":
        return cls(num=Interval.exact(value), taint=taint)

    @classmethod
    def of_bool(cls, taint: frozenset[str] = NO_TAINT) -> "Val":
        return cls(num=Interval(0, 1), taint=taint)

    @classmethod
    def none(cls) -> "Val":
        return cls(maybe_none=True)

    @classmethod
    def of_seq(
        cls,
        elem: "Val",
        length: Interval,
        prov: Optional[str] = None,
        unordered: bool = False,
        taint: frozenset[str] = NO_TAINT,
    ) -> "Val":
        return cls(seq=SeqInfo(elem, length, prov, unordered), taint=taint)

    @classmethod
    def of_map(
        cls,
        key: "Val",
        val: "Val",
        length: Interval = Interval.nonneg(),
        prov: Optional[str] = None,
        taint: frozenset[str] = NO_TAINT,
    ) -> "Val":
        return cls(map=MapInfo(key, val, length, prov), taint=taint)

    @classmethod
    def of_obj(
        cls,
        cls_name: str,
        concrete: Any = None,
        attrs: tuple[tuple[str, "Val"], ...] = (),
        path: Optional[str] = None,
        taint: frozenset[str] = NO_TAINT,
    ) -> "Val":
        return cls(obj=ObjInfo(cls_name, concrete, attrs, path), taint=taint)

    # -- predicates ----------------------------------------------------
    @property
    def is_bottom(self) -> bool:
        return (
            self.num is None
            and not self.maybe_none
            and self.seq is None
            and self.map is None
            and self.tup is None
            and self.obj is None
            and self.func is None
            and not self.other
        )

    @property
    def definitely_none(self) -> bool:
        return self.maybe_none and self.num is None and self.seq is None and (
            self.map is None and self.tup is None and self.obj is None
        ) and self.func is None and not self.other

    def with_taint(self, labels: frozenset[str]) -> "Val":
        if labels <= self.taint:
            return self
        return replace(self, taint=self.taint | labels)

    def without_none(self) -> "Val":
        """Narrow away the ``None`` component (``x is not None``)."""
        if not self.maybe_none:
            return self
        return replace(self, maybe_none=False)

    def with_num(self, num: Optional[Interval]) -> "Val":
        return replace(self, num=num)

    # -- lattice -------------------------------------------------------
    def join(self, other: "Val", depth: int = 0) -> "Val":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        if self is other or self == other:
            return self.with_taint(other.taint)
        if depth > MAX_DEPTH:
            return Val.top(self.taint | other.taint)
        num = (
            self.num.join(other.num)
            if self.num is not None and other.num is not None
            else (self.num or other.num)
        )
        seq = _join_seq(self.seq, other.seq, depth)
        mapc = _join_map(self.map, other.map, depth)
        tup: Optional[tuple[Val, ...]]
        if self.tup is not None and other.tup is not None:
            if len(self.tup) == len(other.tup):
                tup = tuple(
                    a.join(b, depth + 1) for a, b in zip(self.tup, other.tup)
                )
            else:
                # Mixed arities collapse into a sequence summary.
                elem = _BOTTOM
                for item in self.tup + other.tup:
                    elem = elem.join(item, depth + 1)
                lengths = Interval(
                    min(len(self.tup), len(other.tup)),
                    max(len(self.tup), len(other.tup)),
                )
                seq = _join_seq(seq, SeqInfo(elem, lengths), depth)
                tup = None
        else:
            tup = self.tup or other.tup
        obj = _join_obj(self.obj, other.obj, depth)
        func = self.func if self.func is not None else other.func
        return Val(
            num=num,
            maybe_none=self.maybe_none or other.maybe_none,
            seq=seq,
            map=mapc,
            tup=tup,
            obj=obj,
            func=func,
            other=self.other or other.other,
            taint=self.taint | other.taint,
        )

    def widen(self, newer: "Val", depth: int = 0) -> "Val":
        """Widen ``self`` (older) against ``newer``; must bound chains."""
        if self.is_bottom:
            return newer
        if self == newer:
            return self
        if depth > MAX_DEPTH:
            return Val.top(self.taint | newer.taint)
        joined = self.join(newer, depth)
        num = joined.num
        if self.num is not None and num is not None:
            num = self.num.widen(num)
        seq = joined.seq
        if self.seq is not None and seq is not None:
            seq = SeqInfo(
                self.seq.elem.widen(seq.elem, depth + 1),
                self.seq.length.widen(seq.length),
                seq.prov,
                seq.unordered,
            )
        mapc = joined.map
        if self.map is not None and mapc is not None:
            mapc = MapInfo(
                self.map.key.widen(mapc.key, depth + 1),
                self.map.val.widen(mapc.val, depth + 1),
                self.map.length.widen(mapc.length),
                mapc.prov,
                mapc.unordered,
            )
        tup = joined.tup
        if self.tup is not None and tup is not None and len(self.tup) == len(tup):
            tup = tuple(a.widen(b, depth + 1) for a, b in zip(self.tup, tup))
        return replace(joined, num=num, seq=seq, map=mapc, tup=tup)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.num is not None:
            parts.append(str(self.num))
        if self.maybe_none:
            parts.append("None?")
        if self.seq is not None:
            parts.append(f"seq(len={self.seq.length})")
        if self.map is not None:
            parts.append("map")
        if self.tup is not None:
            parts.append(f"tuple[{len(self.tup)}]")
        if self.obj is not None:
            parts.append(f"obj:{self.obj.cls_name}")
        if self.func is not None:
            parts.append("func")
        if self.other:
            parts.append("other")
        if self.taint:
            parts.append("taint{" + ",".join(sorted(self.taint)) + "}")
        return "Val(" + (" | ".join(parts) or "bottom") + ")"


_BOTTOM = Val()

BOTTOM = _BOTTOM
TOP = Val.top()


def _join_seq(a: Optional[SeqInfo], b: Optional[SeqInfo], depth: int) -> Optional[SeqInfo]:
    if a is None:
        return b
    if b is None:
        return a
    return SeqInfo(
        a.elem.join(b.elem, depth + 1),
        a.length.join(b.length),
        a.prov if a.prov == b.prov else None,
        a.unordered or b.unordered,
    )


def _join_map(a: Optional[MapInfo], b: Optional[MapInfo], depth: int) -> Optional[MapInfo]:
    if a is None:
        return b
    if b is None:
        return a
    return MapInfo(
        a.key.join(b.key, depth + 1),
        a.val.join(b.val, depth + 1),
        a.length.join(b.length),
        a.prov if a.prov == b.prov else None,
        a.unordered or b.unordered,
    )


def _join_obj(a: Optional[ObjInfo], b: Optional[ObjInfo], depth: int) -> Optional[ObjInfo]:
    if a is None:
        return b
    if b is None:
        return a
    if a.cls_name != b.cls_name:
        return ObjInfo("object")
    if a.concrete is not None and a.concrete is b.concrete and a.attrs == b.attrs:
        return a
    names = {k for k, _ in a.attrs} | {k for k, _ in b.attrs}
    attrs = []
    for name in sorted(names):
        av = a.attr(name)
        bv = b.attr(name)
        if av is None or bv is None:
            # Attribute known on only one side: fall back to TOP unless
            # the other side can seed it from a concrete object.
            attrs.append((name, (av or bv or TOP) if a.concrete is None and b.concrete is None else TOP))
        else:
            attrs.append((name, av.join(bv, depth + 1)))
    concrete = a.concrete if a.concrete is b.concrete else None
    return ObjInfo(a.cls_name, concrete, tuple(attrs), a.path if a.path == b.path else None)


def seed_value(obj: Any, path: Optional[str] = None, depth: int = 0) -> Val:
    """Abstract a concrete Python object into a :class:`Val`.

    Containers are summarised by scanning (element join for ints, the
    first element as a homogeneous representative for objects); nested
    structure deeper than :data:`MAX_DEPTH` collapses to TOP.
    """
    if depth > MAX_DEPTH:
        return TOP
    if obj is None:
        return Val.none()
    if isinstance(obj, bool):
        return Val.exact(int(obj))
    if isinstance(obj, int):
        return Val.exact(obj)
    if isinstance(obj, (list, tuple)):
        elem = _seed_elems(obj, path, depth)
        val = Val.of_seq(elem, Interval.exact(len(obj)), prov=_elem_path(path))
        return val
    if isinstance(obj, (set, frozenset)):
        elem = _seed_elems(list(obj), path, depth)
        return Val.of_seq(
            elem, Interval.exact(len(obj)), prov=_elem_path(path), unordered=True
        )
    if isinstance(obj, dict):
        key = _seed_elems(list(obj.keys()), None, depth)
        val = _seed_elems(list(obj.values()), path, depth)
        return Val.of_map(key, val, Interval.exact(len(obj)), prov=_elem_path(path))
    if isinstance(obj, (str, float, bytes, bytearray)):
        return Val(other=True)
    # Any other object: keep the live reference for attribute seeding
    # and method resolution.
    return Val.of_obj(type(obj).__name__, concrete=obj, path=path)


def _elem_path(path: Optional[str]) -> Optional[str]:
    return None if path is None else path + "[]"


def _seed_elems(items: Any, path: Optional[str], depth: int) -> Val:
    """Element summary for a concrete container.

    Integer (and bool) elements are scanned exhaustively for tight
    bounds; heterogeneous/object elements use the first element as a
    homogeneous representative (true for every container this repo
    builds: policy lists, nested tag arrays, lookup-dict rows).
    """
    if not items:
        return BOTTOM
    first = items[0]
    if all(isinstance(item, (int, bool)) for item in items):
        los = min(int(i) for i in items)
        his = max(int(i) for i in items)
        return Val.of_int(los, his)
    if isinstance(first, (list, tuple)):
        lo = min(len(i) for i in items)
        hi = max(len(i) for i in items)
        inner = _seed_elems(
            [e for item in items[:8] for e in item], _elem_path(path), depth + 1
        )
        return Val.of_seq(inner, Interval(lo, hi), prov=_elem_path(_elem_path(path)))
    if isinstance(first, dict):
        keys = [k for item in items[:8] for k in item.keys()]
        vals = [v for item in items[:8] for v in item.values()]
        lo = min(len(i) for i in items)
        hi = max(len(i) for i in items)
        return Val.of_map(
            _seed_elems(keys, None, depth + 1),
            _seed_elems(vals, _elem_path(path), depth + 1),
            Interval(lo, hi),
            prov=_elem_path(_elem_path(path)),
        )
    return seed_value(first, _elem_path(path), depth + 1)
