"""Intraprocedural dataflow / abstract-interpretation engine.

This is the semantic layer under :mod:`repro.analysis.lint`: a forward
worklist solver over per-function control-flow graphs, interpreting
statements over the product lattice of :mod:`repro.analysis.domains`
(intervals with bit-width bounds, container summaries, taint sets).

The same engine serves three masters (see :mod:`rules_flow`):

* **BCL015 / proof mode** — :class:`LiveResolver` resolves methods
  through a live cache instance's MRO and seeds ``self`` from the
  concrete object, so ``block & (self.num_sets - 1)`` evaluates over
  exact geometry and every sequence subscript becomes a discharged
  (or failed) bounds :class:`Obligation`.
* **lint mode** — :class:`AstResolver` works from a single module's
  AST with no imports executed; rule hooks inject taint at source
  calls and observe stores at sinks.
* **BCL009 retrofit** — the CFG alone: allocation sites are flagged by
  membership in a CFG cycle (real reaching control flow) instead of
  lexical loop depth.

Design notes: attribute and container-element stores are *weak* — they
join into a global ``summaries`` table keyed by provenance path
(``self._tags[]`` …) and the driver re-runs the target function until
that table reaches a fixpoint.  Locals get strong updates.  Everything
unknown evaluates to TOP; the interpreter must never raise on valid
Python.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .domains import (
    BOTTOM,
    NO_TAINT,
    TAINT_ADDR,
    TAINT_PID,
    TAINT_RANDOM,
    TAINT_UNORDERED,
    TOP,
    FuncInfo,
    Interval,
    MapInfo,
    ObjInfo,
    SeqInfo,
    Val,
    seed_value,
)

__all__ = [
    "Block",
    "build_cfg",
    "cycle_blocks",
    "Obligation",
    "FnCtx",
    "LiveResolver",
    "AstResolver",
    "Interp",
]


# ----------------------------------------------------------------------
# CFG
# ----------------------------------------------------------------------
class _IterInit:
    """Pseudo-statement: evaluate a ``for`` iterable into a temp slot."""

    __slots__ = ("tmp", "iter_expr", "lineno")

    def __init__(self, tmp: str, iter_expr: ast.expr, lineno: int) -> None:
        self.tmp = tmp
        self.iter_expr = iter_expr
        self.lineno = lineno


class _IterBind:
    """Pseudo-statement: bind the loop target from the iterable's elem."""

    __slots__ = ("tmp", "target", "lineno")

    def __init__(self, tmp: str, target: ast.expr, lineno: int) -> None:
        self.tmp = tmp
        self.target = target
        self.lineno = lineno


class _BindTop:
    """Pseudo-statement: bind a name to TOP (exception targets etc.)."""

    __slots__ = ("name", "lineno")

    def __init__(self, name: str, lineno: int) -> None:
        self.name = name
        self.lineno = lineno


@dataclass
class Block:
    """One basic block: straight-line statements plus a terminator.

    Terminators are tuples::

        ("goto", [targets])
        ("cond", test_expr, true_target, false_target)
        ("for", tmp_name, body_target, exit_target)
        ("ret", expr_or_None)
        ("raise",)
    """

    idx: int
    stmts: list = field(default_factory=list)
    term: Optional[tuple] = None
    line: int = 0


class _CfgBuilder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self._tmp = 0

    def new(self, line: int = 0) -> Block:
        block = Block(len(self.blocks), [], None, line)
        self.blocks.append(block)
        return block

    def build(self, fn_node: ast.AST) -> list[Block]:
        entry = self.new(getattr(fn_node, "lineno", 0))
        end = self._seq(fn_node.body, entry, None)
        if end is not None and end.term is None:
            end.term = ("ret", None)
        for block in self.blocks:
            if block.term is None:
                block.term = ("ret", None)
        return self.blocks

    def _seq(
        self, stmts: list, cur: Optional[Block], loop: Optional[tuple[int, int]]
    ) -> Optional[Block]:
        for stmt in stmts:
            if cur is None:
                # Dead code after return/break; keep it analyzable but
                # disconnected so it never contributes to the fixpoint.
                cur = self.new(getattr(stmt, "lineno", 0))
            cur = self._stmt(stmt, cur, loop)
        return cur

    def _stmt(
        self, stmt: ast.stmt, cur: Block, loop: Optional[tuple[int, int]]
    ) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            true_entry = self.new(stmt.lineno)
            false_entry = self.new(stmt.lineno)
            cur.term = ("cond", stmt.test, true_entry.idx, false_entry.idx)
            true_end = self._seq(stmt.body, true_entry, loop)
            false_end = self._seq(stmt.orelse, false_entry, loop)
            after = self.new(stmt.lineno)
            for end in (true_end, false_end):
                if end is not None and end.term is None:
                    end.term = ("goto", [after.idx])
            return after
        if isinstance(stmt, ast.While):
            head = self.new(stmt.lineno)
            cur.term = ("goto", [head.idx])
            body = self.new(stmt.lineno)
            exit_ = self.new(stmt.lineno)
            head.term = ("cond", stmt.test, body.idx, exit_.idx)
            body_end = self._seq(stmt.body, body, (head.idx, exit_.idx))
            if body_end is not None and body_end.term is None:
                body_end.term = ("goto", [head.idx])
            if stmt.orelse:
                return self._seq(stmt.orelse, exit_, loop)
            return exit_
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            tmp = f"$iter{self._tmp}"
            self._tmp += 1
            cur.stmts.append(_IterInit(tmp, stmt.iter, stmt.lineno))
            head = self.new(stmt.lineno)
            cur.term = ("goto", [head.idx])
            body = self.new(stmt.lineno)
            exit_ = self.new(stmt.lineno)
            head.term = ("for", tmp, body.idx, exit_.idx)
            body.stmts.append(_IterBind(tmp, stmt.target, stmt.lineno))
            body_end = self._seq(stmt.body, body, (head.idx, exit_.idx))
            if body_end is not None and body_end.term is None:
                body_end.term = ("goto", [head.idx])
            if stmt.orelse:
                return self._seq(stmt.orelse, exit_, loop)
            return exit_
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    assign = ast.Assign(
                        targets=[item.optional_vars], value=item.context_expr
                    )
                    ast.copy_location(assign, stmt)
                    cur.stmts.append(assign)
                else:
                    expr = ast.Expr(value=item.context_expr)
                    ast.copy_location(expr, stmt)
                    cur.stmts.append(expr)
            return self._seq(stmt.body, cur, loop)
        if isinstance(stmt, ast.Try):
            body_entry = self.new(stmt.lineno)
            handler_entries = []
            for handler in stmt.handlers:
                entry = self.new(handler.lineno)
                if handler.name:
                    entry.stmts.append(_BindTop(handler.name, handler.lineno))
                handler_entries.append(entry)
            cur.term = ("goto", [body_entry.idx] + [h.idx for h in handler_entries])
            ends = [self._seq(stmt.body + stmt.orelse, body_entry, loop)]
            for handler, entry in zip(stmt.handlers, handler_entries):
                ends.append(self._seq(handler.body, entry, loop))
            after = self.new(stmt.lineno)
            for end in ends:
                if end is not None and end.term is None:
                    end.term = ("goto", [after.idx])
            if stmt.finalbody:
                return self._seq(stmt.finalbody, after, loop)
            return after
        if isinstance(stmt, ast.Return):
            cur.term = ("ret", stmt.value)
            return None
        if isinstance(stmt, ast.Raise):
            cur.term = ("raise",)
            return None
        if isinstance(stmt, ast.Break):
            if loop is not None:
                cur.term = ("goto", [loop[1]])
            else:  # pragma: no cover - malformed input
                cur.term = ("raise",)
            return None
        if isinstance(stmt, ast.Continue):
            if loop is not None:
                cur.term = ("goto", [loop[0]])
            else:  # pragma: no cover - malformed input
                cur.term = ("raise",)
            return None
        if isinstance(stmt, ast.Match):
            entries = []
            for case in stmt.cases:
                entry = self.new(case.pattern.lineno)
                for name in _pattern_names(case.pattern):
                    entry.stmts.append(_BindTop(name, case.pattern.lineno))
                entries.append(entry)
            after = self.new(stmt.lineno)
            cur.term = ("goto", [e.idx for e in entries] + [after.idx])
            for case, entry in zip(stmt.cases, entries):
                end = self._seq(case.body, entry, loop)
                if end is not None and end.term is None:
                    end.term = ("goto", [after.idx])
            return after
        cur.stmts.append(stmt)
        return cur


def _pattern_names(pattern: ast.AST) -> list[str]:
    names = []
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name:
            names.append(node.name)
        elif isinstance(node, ast.MatchStar) and node.name:
            names.append(node.name)
    return names


def build_cfg(fn_node: ast.AST) -> list[Block]:
    """Build (and cache on the node) the CFG of one function body."""
    cached = getattr(fn_node, "_bcache_cfg", None)
    if cached is not None:
        return cached
    blocks = _CfgBuilder().build(fn_node)
    try:
        fn_node._bcache_cfg = blocks  # type: ignore[attr-defined]
    except (AttributeError, TypeError):  # pragma: no cover - defensive
        pass
    return blocks


def _block_successors(block: Block) -> list[int]:
    term = block.term
    if term is None:
        return []
    kind = term[0]
    if kind == "goto":
        return list(term[1])
    if kind == "cond":
        return [term[2], term[3]]
    if kind == "for":
        return [term[2], term[3]]
    return []


def cycle_blocks(blocks: list[Block]) -> set[int]:
    """Indices of blocks that lie on a control-flow cycle.

    Tarjan SCC: a block is cyclic iff its SCC has size > 1 or it has a
    self edge.  This is what "allocates inside the hot loop" means
    semantically — reachable from itself — replacing BCL009's old
    lexical loop-depth scan.
    """
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = [0]
    cyclic: set[int] = set()

    def strongconnect(v: int) -> None:
        work = [(v, iter(_block_successors(blocks[v])))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, successors = work[-1]
            advanced = False
            for w in successors:
                if w >= len(blocks):
                    continue
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(_block_successors(blocks[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1 or node in _block_successors(blocks[node]):
                    cyclic.update(scc)

    for v in range(len(blocks)):
        if v not in index:
            strongconnect(v)
    return cyclic


# ----------------------------------------------------------------------
# Proof obligations
# ----------------------------------------------------------------------
@dataclass
class Obligation:
    """One sequence-subscript bounds check the interpreter discharged
    (or failed to)."""

    func: str
    line: int
    target: str
    index: Interval
    length: Interval
    proved: bool
    taint: frozenset = NO_TAINT

    def render(self) -> str:
        verdict = "proved" if self.proved else "UNPROVED"
        return (
            f"{self.func}:{self.line}: {verdict} "
            f"{self.target}[{self.index}] within len {self.length}"
        )


def _obligation_proved(index: Interval, length: Interval) -> bool:
    if length.lo is None:
        return False
    if index.is_exact and index.value < 0:
        return length.lo >= -index.value
    return index.ge(0) and index.le(length.lo - 1)


# ----------------------------------------------------------------------
# Resolution contexts
# ----------------------------------------------------------------------
@dataclass
class FnCtx:
    """Where a function body lives, for name/super()/method resolution.

    ``instance_cls`` is the *dynamic* class of ``self`` (drives super()
    MRO walking); ``defining_cls`` is the class whose body the current
    function was found in.  Either may be a live ``type`` (proof mode)
    or an ``ast.ClassDef`` (lint mode) or ``None`` for free functions.
    ``line_offset`` maps node linenos back to real file lines.
    """

    module: Any = None
    instance_cls: Any = None
    defining_cls: Any = None
    line_offset: int = 0
    name: str = "<fn>"


# ----------------------------------------------------------------------
# Resolvers
# ----------------------------------------------------------------------
def _parse_function(func: Any) -> Optional[tuple[ast.AST, int]]:
    """Parse one live function into its AST def node + line offset."""
    try:
        lines, start = inspect.getsourcelines(func)
        source = textwrap.dedent("".join(lines))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node, start - node.lineno
    return None


class LiveResolver:
    """Resolve names through live objects (proof mode).

    Methods are found by walking ``type(obj).__mro__`` and parsing
    their source; resolution is restricted to classes defined inside
    this package so the interpreter never wanders into the stdlib.
    """

    def __init__(self, package: str = "repro") -> None:
        self.package = package
        self._fn_cache: dict[Any, Optional[tuple[ast.AST, int]]] = {}

    def _in_package(self, cls: type) -> bool:
        module = getattr(cls, "__module__", "") or ""
        return module == self.package or module.startswith(self.package + ".")

    def _parsed(self, func: Any) -> Optional[tuple[ast.AST, int]]:
        key = getattr(func, "__qualname__", None) or id(func)
        if key not in self._fn_cache:
            self._fn_cache[key] = _parse_function(func)
        return self._fn_cache[key]

    def _method_from(
        self, instance_cls: type, mro: tuple, name: str
    ) -> Optional[tuple[ast.AST, FnCtx]]:
        for cls in mro:
            if name in getattr(cls, "__dict__", {}):
                func = cls.__dict__[name]
                if isinstance(func, (staticmethod, classmethod)):
                    func = func.__func__
                if not callable(func) or not self._in_package(cls):
                    return None
                parsed = self._parsed(func)
                if parsed is None:
                    return None
                node, offset = parsed
                module = sys.modules.get(cls.__module__)
                return node, FnCtx(
                    module=module,
                    instance_cls=instance_cls,
                    defining_cls=cls,
                    line_offset=offset,
                    name=f"{cls.__name__}.{name}",
                )
        return None

    def resolve_method(self, obj: ObjInfo, name: str) -> Optional[tuple[ast.AST, FnCtx]]:
        if obj.concrete is None:
            return None
        cls = type(obj.concrete)
        return self._method_from(cls, cls.__mro__, name)

    def resolve_super(self, ctx: FnCtx, name: str) -> Optional[tuple[ast.AST, FnCtx]]:
        instance_cls = ctx.instance_cls
        defining = ctx.defining_cls
        if not isinstance(instance_cls, type) or not isinstance(defining, type):
            return None
        mro = instance_cls.__mro__
        try:
            start = mro.index(defining) + 1
        except ValueError:  # pragma: no cover - defensive
            return None
        return self._method_from(instance_cls, mro[start:], name)

    def mro_names(self, obj: ObjInfo) -> list[str]:
        if obj.concrete is not None:
            return [cls.__name__ for cls in type(obj.concrete).__mro__]
        return [obj.cls_name]

    def resolve_global(self, ctx: FnCtx, name: str) -> Optional[tuple[str, Any]]:
        """Resolve a module-global name.

        Returns ``("val", Val)`` for constants, ``("fn", (node, ctx))``
        for package functions, ``("cls", type)`` for classes, ``None``
        when unknown.
        """
        module = ctx.module
        if module is None or not hasattr(module, name):
            return None
        value = getattr(module, name)
        if isinstance(value, bool) or isinstance(value, int):
            return "val", Val.exact(int(value))
        if value is None:
            return "val", Val.none()
        if isinstance(value, type):
            return "cls", value
        if inspect.isfunction(value):
            mod = getattr(value, "__module__", "") or ""
            if mod == self.package or mod.startswith(self.package + "."):
                parsed = self._parsed(value)
                if parsed is not None:
                    node, offset = parsed
                    return "fn", (
                        node,
                        FnCtx(
                            module=sys.modules.get(mod),
                            line_offset=offset,
                            name=f"{mod}.{name}",
                        ),
                    )
            return None
        return None

    def constructor_fields(self, cls: Any) -> Optional[list[tuple[str, Optional[Val]]]]:
        """Parameter names (after self) + seeded defaults of ``cls``."""
        if not isinstance(cls, type):
            return None
        try:
            sig = inspect.signature(cls)
        except (ValueError, TypeError):
            return None
        fields = []
        for param in sig.parameters.values():
            if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                return None
            default = None
            if param.default is not inspect.Parameter.empty:
                try:
                    default = seed_value(param.default)
                except Exception:  # pragma: no cover - defensive
                    default = TOP
            fields.append((param.name, default))
        return fields


class AstResolver:
    """Resolve names inside a single module AST (lint mode).

    No imports are executed; classes referenced across modules are
    opaque.  A synthetic model of ``Cache.__init__`` lets geometry
    lint rules interpret constructors of cache subclasses whose base
    lives in another module.
    """

    def __init__(self, module_ast: ast.Module, inline: bool = True) -> None:
        self.tree = module_ast
        self.inline = inline
        self.classes: dict[str, ast.ClassDef] = {}
        self.functions: dict[str, ast.FunctionDef] = {}
        self.constants: dict[str, Val] = {}
        for node in module_ast.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.Constant
                ):
                    const = node.value.value
                    if isinstance(const, bool) or isinstance(const, int):
                        self.constants[target.id] = Val.exact(int(const))

    # -- class-hierarchy helpers ---------------------------------------
    def _bases_of(self, cls: ast.ClassDef) -> list[str]:
        names = []
        for base in cls.bases:
            if isinstance(base, ast.Name):
                names.append(base.id)
            elif isinstance(base, ast.Attribute):
                names.append(base.attr)
        return names

    def class_mro(self, cls_name: str) -> list[str]:
        """Linearised *name* MRO, local classes first, depth-first."""
        out: list[str] = []
        queue = [cls_name]
        while queue:
            name = queue.pop(0)
            if name in out:
                continue
            out.append(name)
            cls = self.classes.get(name)
            if cls is not None:
                queue.extend(self._bases_of(cls))
        return out

    def _find_in_class(
        self, cls: ast.ClassDef, name: str
    ) -> Optional[ast.FunctionDef]:
        for node in cls.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                return node
        return None

    def resolve_method(self, obj: ObjInfo, name: str) -> Optional[tuple[ast.AST, FnCtx]]:
        if not self.inline:
            return None
        for cls_name in self.class_mro(obj.cls_name):
            cls = self.classes.get(cls_name)
            if cls is None:
                continue
            node = self._find_in_class(cls, name)
            if node is not None:
                return node, FnCtx(
                    module=self,
                    instance_cls=self.classes.get(obj.cls_name),
                    defining_cls=cls,
                    name=f"{cls_name}.{name}",
                )
        return None

    def resolve_super(self, ctx: FnCtx, name: str) -> Optional[tuple[ast.AST, FnCtx]]:
        if not self.inline or not isinstance(ctx.defining_cls, ast.ClassDef):
            return None
        for base_name in self._bases_of(ctx.defining_cls):
            cls = self.classes.get(base_name)
            if cls is None:
                continue
            node = self._find_in_class(cls, name)
            if node is not None:
                return node, FnCtx(
                    module=self,
                    instance_cls=ctx.instance_cls,
                    defining_cls=cls,
                    name=f"{base_name}.{name}",
                )
        return None

    def mro_names(self, obj: ObjInfo) -> list[str]:
        return self.class_mro(obj.cls_name)

    def resolve_global(self, ctx: FnCtx, name: str) -> Optional[tuple[str, Any]]:
        if name in self.constants:
            return "val", self.constants[name]
        if name in self.classes:
            return "cls", self.classes[name]
        if self.inline and name in self.functions:
            node = self.functions[name]
            return "fn", (node, FnCtx(module=self, name=name))
        return None

    def synthetic_super(
        self,
        interp: "Interp",
        self_val: Optional[Val],
        name: str,
        args: list[Val],
        kwargs: dict[str, Val],
    ) -> Optional[Val]:
        """Model ``Cache.__init__`` when the base class lives in another
        module: derive the geometry attributes the real base derives."""
        if name != "__init__" or self_val is None or self_val.obj is None:
            return None
        path = self_val.obj.path
        if path is None:
            return Val.none()
        order = ("size", "line_size", "num_sets", "name")
        params: dict[str, Val] = {}
        for position, pname in enumerate(order):
            if position < len(args):
                params[pname] = args[position]
            elif pname in kwargs:
                params[pname] = kwargs[pname]
            else:
                params[pname] = TOP
        size = params["size"]
        line_size = params["line_size"]
        num_sets = params["num_sets"]
        interp.summary_store(path + ".size", size)
        interp.summary_store(path + ".line_size", line_size)
        interp.summary_store(path + ".num_sets", num_sets)
        offset_bits = Val(num=Interval.nonneg())
        if line_size.num is not None and line_size.num.is_exact:
            width = line_size.num.value
            if width > 0 and width & (width - 1) == 0:
                offset_bits = Val.exact(width.bit_length() - 1)
        interp.summary_store(path + ".offset_bits", offset_bits)
        num_blocks = Val(num=Interval.nonneg())
        if (
            size.num is not None
            and size.num.is_exact
            and line_size.num is not None
            and line_size.num.is_exact
            and line_size.num.value > 0
        ):
            num_blocks = Val.exact(size.num.value // line_size.num.value)
        interp.summary_store(path + ".num_blocks", num_blocks)
        interp.summary_store(path + ".name", Val(other=True, maybe_none=True))
        stats_len = num_sets.num if num_sets.num is not None else Interval.nonneg()
        stats = Val.of_obj(
            "CacheStats",
            attrs=(
                ("num_sets", num_sets),
                ("set_accesses", Val.of_seq(Val(num=Interval.nonneg()), stats_len)),
                ("set_hits", Val.of_seq(Val(num=Interval.nonneg()), stats_len)),
                ("set_misses", Val.of_seq(Val(num=Interval.nonneg()), stats_len)),
            ),
            path=path + ".stats",
        )
        interp.summary_store(path + ".stats", stats)
        return Val.none()

    def constructor_fields(self, cls: Any) -> Optional[list[tuple[str, Optional[Val]]]]:
        if not isinstance(cls, ast.ClassDef):
            return None
        init = self._find_in_class(cls, "__init__")
        if init is None:
            # Bare dataclass-style body: AnnAssign field declarations.
            fields: list[tuple[str, Optional[Val]]] = []
            for node in cls.body:
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    default: Optional[Val] = None
                    if isinstance(node.value, ast.Constant):
                        const = node.value.value
                        if const is None:
                            default = Val.none()
                        elif isinstance(const, (bool, int)):
                            default = Val.exact(int(const))
                        else:
                            default = Val(other=True)
                    fields.append((node.target.id, default))
            return fields or None
        fields = []
        args = init.args
        names = [a.arg for a in args.posonlyargs + args.args][1:]  # drop self
        defaults = list(args.defaults)
        pad = [None] * (len(names) - len(defaults))
        for name, default_node in zip(names, pad + defaults):
            default = None
            if isinstance(default_node, ast.Constant):
                const = default_node.value
                if const is None:
                    default = Val.none()
                elif isinstance(const, (bool, int)):
                    default = Val.exact(int(const))
                else:
                    default = Val(other=True)
            elif default_node is not None:
                default = TOP
            fields.append((name, default))
        for name in [a.arg for a in args.kwonlyargs]:
            fields.append((name, TOP))
        return fields


# ----------------------------------------------------------------------
# Interpreter
# ----------------------------------------------------------------------
_MAX_INLINE_DEPTH = 8
_MAX_BLOCK_VISITS = 60
_WIDEN_AFTER = 3
_MAX_OUTER_PASSES = 6

Env = dict  # str -> Val


def _join_env_into(dst: Env, src: Env) -> bool:
    """Join ``src`` into ``dst`` in place; True when anything changed."""
    changed = False
    for name, value in src.items():
        old = dst.get(name)
        if old is None:
            dst[name] = value
            changed = True
        else:
            joined = old.join(value)
            if joined != old:
                dst[name] = joined
                changed = True
    return changed


class Interp:
    """The abstract interpreter.

    ``hooks`` (lint mode) is an object with optional methods:

    * ``call_result(interp, node, dotted, args) -> Val | None`` —
      intercept a call by its dotted source text (taint sources).
    * ``on_store(interp, ctx, target_text, value, node)`` — observe an
      attribute/subscript store (taint sinks).
    * ``on_call(interp, ctx, dotted, base_val, args, node)`` — observe
      any call post-evaluation (sink calls like ``journal.record``).
    * ``on_dict_item(interp, ctx, key, value, node)`` — observe dict
      display items (serve payload sinks).

    ``contracts`` maps ``(class_name, method_name)`` to a callable
    ``(interp, obj: ObjInfo, args: list[Val]) -> Val`` consulted over
    the receiver's MRO names before any inlining.
    """

    def __init__(
        self,
        resolver: Any,
        hooks: Any = None,
        contracts: Optional[dict[tuple[str, str], Callable]] = None,
        max_inline_depth: int = _MAX_INLINE_DEPTH,
    ) -> None:
        self.resolver = resolver
        self.hooks = hooks
        self.contracts = contracts or {}
        self.max_inline_depth = max_inline_depth
        self.summaries: dict[str, Val] = {}
        self.obligations: list[Obligation] = []
        self.assumptions: set[str] = set()
        self.final = False
        self._stack: list[Any] = []
        self._widening_summaries = False
        self._quiet = 0

    # -- drivers -------------------------------------------------------
    def analyze(self, fn_node: ast.AST, ctx: FnCtx, bound: Env) -> Val:
        """Run ``fn_node`` to a summary fixpoint, then one final pass
        during which obligations and hook events are recorded."""
        for pass_no in range(_MAX_OUTER_PASSES):
            before = dict(self.summaries)
            self.final = False
            self._widening_summaries = pass_no >= _WIDEN_AFTER
            self.run_function(fn_node, ctx, dict(bound))
            if self.summaries == before:
                break
        self.final = True
        self.obligations = []
        result = self.run_function(fn_node, ctx, dict(bound))
        seen: set[tuple] = set()
        unique = []
        for obligation in self.obligations:
            key = (
                obligation.func,
                obligation.line,
                obligation.target,
                obligation.index,
                obligation.length,
            )
            if key not in seen:
                seen.add(key)
                unique.append(obligation)
        self.obligations = unique
        return result

    # -- summary table -------------------------------------------------
    def summary_store(self, key: str, value: Val) -> None:
        old = self.summaries.get(key, BOTTOM)
        if self._widening_summaries:
            new = old.widen(old.join(value))
        else:
            new = old.join(value)
        if new != old:
            self.summaries[key] = new

    def summary_load(self, key: str) -> Val:
        return self.summaries.get(key, BOTTOM)

    # -- the solver ----------------------------------------------------
    def run_function(self, fn_node: ast.AST, ctx: FnCtx, bound: Env) -> Val:
        key = id(fn_node)
        if key in self._stack or len(self._stack) >= self.max_inline_depth:
            return TOP
        self._stack.append(key)
        try:
            return self._solve(fn_node, ctx, bound)
        finally:
            self._stack.pop()

    def _solve(self, fn_node: ast.AST, ctx: FnCtx, bound: Env) -> Val:
        blocks = build_cfg(fn_node)
        in_envs: dict[int, Env] = {0: bound}
        visits: dict[int, int] = {}
        worklist = [0]
        ret = BOTTOM
        while worklist:
            idx = worklist.pop()
            count = visits.get(idx, 0) + 1
            visits[idx] = count
            if count > _MAX_BLOCK_VISITS:
                continue
            env: Optional[Env] = dict(in_envs[idx])
            for stmt in blocks[idx].stmts:
                env = self.exec_stmt(stmt, env, ctx)
                if env is None:
                    break
            if env is None:
                continue
            term = blocks[idx].term or ("ret", None)
            kind = term[0]
            succs: list[tuple[int, Env]] = []
            if kind == "goto":
                for target in term[1]:
                    succs.append((target, dict(env)))
            elif kind == "cond":
                _, test, true_t, false_t = term
                self.eval_expr(test, env, ctx)
                true_env = self.narrow(dict(env), test, True, ctx)
                false_env = self.narrow(dict(env), test, False, ctx)
                if true_env is not None:
                    succs.append((true_t, true_env))
                if false_env is not None:
                    succs.append((false_t, false_env))
            elif kind == "for":
                _, tmp, body_t, exit_t = term
                body_env = dict(env)
                container = body_env.get(tmp, TOP)
                nonempty = self._narrow_nonempty(container)
                if nonempty is not None:
                    body_env[tmp] = nonempty
                    succs.append((body_t, body_env))
                succs.append((exit_t, dict(env)))
            elif kind == "ret":
                value = Val.none() if term[1] is None else self.eval_expr(
                    term[1], env, ctx
                )
                ret = ret.join(value)
            # "raise": no successors
            for target, out_env in succs:
                old = in_envs.get(target)
                if old is None:
                    in_envs[target] = out_env
                    worklist.append(target)
                elif _join_env_into(old, out_env):
                    if visits.get(target, 0) >= _WIDEN_AFTER:
                        # Widen the stored in-env against itself joined
                        # with the new flow to force termination.
                        for name in list(old.keys()):
                            prev = in_envs[target][name]
                            in_envs[target][name] = prev.widen(prev)
                    worklist.append(target)
        return ret if not ret.is_bottom else Val.none()

    def _narrow_nonempty(self, container: Val) -> Optional[Val]:
        """Loop body entered => the iterable has at least one element."""
        if container.seq is not None:
            length = container.seq.length.meet(Interval(1, None))
            if length is None:
                if container.map is None and not container.other:
                    return None
            else:
                container = Val(
                    num=container.num,
                    maybe_none=container.maybe_none,
                    seq=SeqInfo(
                        container.seq.elem,
                        length,
                        container.seq.prov,
                        container.seq.unordered,
                    ),
                    map=container.map,
                    tup=container.tup,
                    obj=container.obj,
                    func=container.func,
                    other=container.other,
                    taint=container.taint,
                )
        return container

    # -- statement transfer --------------------------------------------
    def exec_stmt(self, stmt: Any, env: Env, ctx: FnCtx) -> Optional[Env]:
        """Execute one straight-line statement; ``None`` = unreachable."""
        if isinstance(stmt, _IterInit):
            env[stmt.tmp] = self.eval_expr(stmt.iter_expr, env, ctx)
            return env
        if isinstance(stmt, _IterBind):
            container = env.get(stmt.tmp, TOP)
            elem = self.iter_element(container)
            self.bind_target(stmt.target, elem, env, ctx)
            return env
        if isinstance(stmt, _BindTop):
            env[stmt.name] = TOP
            return env
        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value, env, ctx)
            for target in stmt.targets:
                self.assign_target(target, value, env, ctx, stmt)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval_expr(stmt.value, env, ctx)
                self.assign_target(stmt.target, value, env, ctx, stmt)
            return env
        if isinstance(stmt, ast.AugAssign):
            load = ast.copy_location(
                _as_load(stmt.target), stmt
            )
            binop = ast.BinOp(left=load, op=stmt.op, right=stmt.value)
            ast.copy_location(binop, stmt)
            value = self.eval_expr(binop, env, ctx)
            self.assign_target(stmt.target, value, env, ctx, stmt)
            return env
        if isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value, env, ctx)
            return env
        if isinstance(stmt, ast.Assert):
            self.eval_expr(stmt.test, env, ctx)
            return self.narrow(env, stmt.test, True, ctx)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[stmt.name] = Val(func=FuncInfo(stmt, dict(env), ctx))
            return env
        if isinstance(stmt, ast.ClassDef):
            env[stmt.name] = TOP
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
                elif isinstance(target, ast.Subscript):
                    # del d[k]: weak — shrink nothing, contents keep.
                    self.eval_expr(target.value, env, ctx)
            return env
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                env[(alias.asname or alias.name).split(".")[0]] = TOP
            return env
        # Pass, Global, Nonlocal, anything else: no effect.
        return env

    # -- assignment targets --------------------------------------------
    def assign_target(
        self, target: ast.expr, value: Val, env: Env, ctx: FnCtx, stmt: Any
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, ast.Starred):
            self.assign_target(
                target.value,
                Val.of_seq(value, Interval.nonneg()),
                env,
                ctx,
                stmt,
            )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            self.bind_target(target, value, env, ctx)
            return
        if isinstance(target, ast.Attribute):
            base = self.eval_expr(target.value, env, ctx)
            self.store_attr(base, target.attr, value, target, ctx)
            return
        if isinstance(target, ast.Subscript):
            base = self.eval_expr(target.value, env, ctx)
            index = self.eval_expr(target.slice, env, ctx)
            self.store_subscript(base, index, value, target, env, ctx)
            return

    def bind_target(self, target: ast.expr, value: Val, env: Env, ctx: FnCtx) -> None:
        """Destructure ``value`` into a (possibly nested) loop target."""
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elems = None
            if value.tup is not None and len(value.tup) == len(target.elts):
                elems = list(value.tup)
            for position, sub in enumerate(target.elts):
                if isinstance(sub, ast.Starred):
                    part = Val.of_seq(
                        self.iter_element(value), Interval.nonneg()
                    )
                    self.bind_target(sub.value, part, env, ctx)
                    continue
                if elems is not None:
                    part = elems[position]
                else:
                    part = self.iter_element(value)
                self.bind_target(sub, part, env, ctx)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self.assign_target(target, value, env, ctx, target)

    def iter_element(self, container: Val) -> Val:
        """The element summary produced by iterating ``container``.

        This is where the container-level ``unordered`` flag becomes
        element taint: iterating a set yields order-dependent values.
        """
        out = BOTTOM
        unordered = False
        if container.seq is not None:
            elem = container.seq.elem
            if container.seq.prov is not None:
                elem = elem.join(self.summary_load(container.seq.prov))
            out = out.join(elem)
            unordered = unordered or container.seq.unordered
        if container.map is not None:
            out = out.join(container.map.key)
            unordered = unordered or container.map.unordered
        if container.tup is not None:
            for item in container.tup:
                out = out.join(item)
        if container.other:
            out = out.join(TOP)
        if out.is_bottom:
            out = BOTTOM
        out = out.with_taint(container.taint)
        if unordered:
            out = out.with_taint(frozenset((TAINT_UNORDERED,)))
        return out

    # -- attribute / subscript stores ----------------------------------
    def store_attr(
        self, base: Val, attr: str, value: Val, node: ast.AST, ctx: FnCtx
    ) -> None:
        if self.hooks is not None and self.final and not self._quiet:
            handler = getattr(self.hooks, "on_store", None)
            if handler is not None:
                handler(self, ctx, _expr_text(node), value, node)
        if base.obj is not None and base.obj.path is not None:
            self.summary_store(base.obj.path + "." + attr, value)

    def store_subscript(
        self,
        base: Val,
        index: Val,
        value: Val,
        node: ast.AST,
        env: Env,
        ctx: FnCtx,
    ) -> None:
        if self.hooks is not None and self.final and not self._quiet:
            handler = getattr(self.hooks, "on_store", None)
            if handler is not None:
                handler(self, ctx, _expr_text(node), value, node)
        self._seq_obligation(base, index, node, ctx)
        prov = None
        if base.seq is not None:
            prov = base.seq.prov
        if prov is None and base.map is not None:
            prov = base.map.prov
        if prov is not None:
            self.summary_store(prov, value)
        # Weak strong-ish update when the container sits in a local.
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            name = node.value.id
            current = env.get(name)
            if current is not None:
                env[name] = _container_with_elem(current, value, index)

    def _seq_obligation(
        self, base: Val, index: Val, node: ast.AST, ctx: FnCtx
    ) -> None:
        """Record a bounds obligation for a sequence subscript."""
        if not self.final or self._quiet or base.seq is None:
            return
        if base.is_bottom or index.is_bottom:
            return
        if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Slice):
            return
        if index.num is None:
            return
        length = base.seq.length
        self.obligations.append(
            Obligation(
                func=ctx.name,
                line=getattr(node, "lineno", 0) + ctx.line_offset,
                target=_expr_text(
                    node.value if isinstance(node, ast.Subscript) else node
                ),
                index=index.num,
                length=length,
                proved=_obligation_proved(index.num, length),
                taint=index.taint,
            )
        )

    # -- condition narrowing -------------------------------------------
    def narrow(
        self, env: Env, test: ast.expr, branch: bool, ctx: FnCtx
    ) -> Optional[Env]:
        """Refine ``env`` assuming ``test`` evaluated to ``branch``.

        Returns ``None`` when the branch is provably unreachable.
        Quiet mode suppresses duplicate obligations/hook events from
        re-evaluating subexpressions.
        """
        with _quietly(self):
            return self._narrow(env, test, branch, ctx)

    def _narrow(
        self, env: Env, test: ast.expr, branch: bool, ctx: FnCtx
    ) -> Optional[Env]:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._narrow(env, test.operand, not branch, ctx)
        if isinstance(test, ast.Constant):
            return env if bool(test.value) == branch else None
        if isinstance(test, ast.BoolOp):
            conjunctive = (isinstance(test.op, ast.And) and branch) or (
                isinstance(test.op, ast.Or) and not branch
            )
            if conjunctive:
                for operand in test.values:
                    narrowed = self._narrow(env, operand, branch, ctx)
                    if narrowed is None:
                        return None
                    env = narrowed
                return env
            return env
        if isinstance(test, ast.Compare):
            return self._narrow_compare(env, test, branch, ctx)
        if isinstance(test, ast.Name):
            value = env.get(test.id)
            if value is None:
                return env
            refined = _truthy(value) if branch else _falsy(value)
            if refined is None:
                return None
            env[test.id] = refined
            return env
        if isinstance(test, ast.NamedExpr):
            value = self.eval_expr(test, env, ctx)
            if isinstance(test.target, ast.Name):
                refined = _truthy(value) if branch else _falsy(value)
                if refined is None:
                    return None
                env[test.target.id] = refined
            return env
        return env

    def _narrow_compare(
        self, env: Env, test: ast.Compare, branch: bool, ctx: FnCtx
    ) -> Optional[Env]:
        items = [test.left] + list(test.comparators)
        if len(test.ops) > 1 and not branch:
            return env  # a negated chain is a disjunction; no refinement
        for (left, op, right) in zip(items, test.ops, items[1:]):
            effective = op if branch else _NEGATED_OPS.get(type(op))
            if effective is None:
                continue
            env2 = self._narrow_pair(env, left, effective, right, ctx)
            if env2 is None:
                return None
            env = env2
        return env

    def _narrow_pair(
        self, env: Env, left: ast.expr, op: Any, right: ast.expr, ctx: FnCtx
    ) -> Optional[Env]:
        op_type = op if isinstance(op, type) else type(op)
        # x is None / x is not None
        left_is_none = isinstance(left, ast.Constant) and left.value is None
        right_is_none = isinstance(right, ast.Constant) and right.value is None
        if op_type in (ast.Is, ast.Eq) and (left_is_none or right_is_none):
            target = right if left_is_none else left
            if isinstance(target, ast.Name) and target.id in env:
                value = env[target.id]
                if not value.maybe_none:
                    return None
                env[target.id] = Val(maybe_none=True, taint=value.taint)
            return env
        if op_type in (ast.IsNot, ast.NotEq) and (left_is_none or right_is_none):
            target = right if left_is_none else left
            if isinstance(target, ast.Name) and target.id in env:
                value = env[target.id].without_none()
                if value.is_bottom:
                    return None
                env[target.id] = value
            return env
        if op_type in (ast.Is, ast.IsNot, ast.In, ast.NotIn):
            return env
        # Numeric comparisons; refine whichever side is a plain name or
        # a len(name) call.
        left_val = self.eval_expr(left, env, ctx)
        right_val = self.eval_expr(right, env, ctx)
        env2 = self._refine_side(env, left, left_val, op_type, right_val, False)
        if env2 is None:
            return None
        env3 = self._refine_side(
            env2, right, right_val, op_type, left_val, True
        )
        return env3

    def _refine_side(
        self,
        env: Env,
        expr: ast.expr,
        current: Val,
        op_type: type,
        other: Val,
        flipped: bool,
    ) -> Optional[Env]:
        if other.num is None:
            return env
        bound = _comparison_bound(op_type, other.num, flipped)
        if bound is None:
            return env
        if isinstance(expr, ast.Name) and expr.id in env:
            value = env[expr.id]
            if value.num is None:
                return env
            refined = value.num.meet(bound)
            if op_type is ast.NotEq and other.num.is_exact and refined is not None:
                refined = _exclude_endpoint(refined, other.num.value)
            if refined is None:
                if value.maybe_none or value.seq or value.map or value.obj or value.other:
                    return env  # numeric arm dead, other kinds remain
                return None
            env[expr.id] = value.with_num(refined)
            return env
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "len"
            and len(expr.args) == 1
            and isinstance(expr.args[0], ast.Name)
            and expr.args[0].id in env
        ):
            name = expr.args[0].id
            value = env[name]
            if value.seq is not None:
                nonneg = bound.meet(Interval.nonneg())
                if nonneg is None:
                    return None
                length = value.seq.length.meet(nonneg)
                if length is None:
                    return None
                env[name] = Val(
                    num=value.num,
                    maybe_none=value.maybe_none,
                    seq=SeqInfo(
                        value.seq.elem,
                        length,
                        value.seq.prov,
                        value.seq.unordered,
                    ),
                    map=value.map,
                    tup=value.tup,
                    obj=value.obj,
                    func=value.func,
                    other=value.other,
                    taint=value.taint,
                )
            return env
        return env

    # -- expression evaluation -----------------------------------------
    def eval_expr(self, node: ast.expr, env: Env, ctx: FnCtx) -> Val:
        try:
            return self._eval(node, env, ctx)
        except RecursionError:  # pragma: no cover - runaway nesting
            raise
        except Exception:  # noqa: BLE001 - the engine must never crash
            return TOP

    def _eval(self, node: ast.expr, env: Env, ctx: FnCtx) -> Val:
        if isinstance(node, ast.Constant):
            const = node.value
            if const is None:
                return Val.none()
            if isinstance(const, bool):
                return Val.exact(int(const))
            if isinstance(const, int):
                return Val.exact(const)
            return Val(other=True)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            resolved = self.resolver.resolve_global(ctx, node.id)
            if resolved is not None:
                kind, payload = resolved
                if kind == "val":
                    return payload
                if kind == "fn":
                    fn_node, fn_ctx = payload
                    return Val(func=FuncInfo(fn_node, None, fn_ctx))
            return TOP
        if isinstance(node, ast.Attribute):
            base = self.eval_expr(node.value, env, ctx)
            return self.load_attr(base, node.attr, ctx)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env, ctx)
        if isinstance(node, ast.Call):
            return self.eval_call(node, env, ctx)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env, ctx)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval_expr(node.operand, env, ctx)
            if isinstance(node.op, ast.Not):
                return Val.of_bool(operand.taint)
            if isinstance(node.op, ast.USub) and operand.num is not None:
                return Val(num=operand.num.neg(), taint=operand.taint)
            if isinstance(node.op, ast.UAdd) and operand.num is not None:
                return Val(num=operand.num, taint=operand.taint)
            return Val(num=Interval.top(), taint=operand.taint)
        if isinstance(node, ast.BoolOp):
            # Short-circuit narrowing: each later operand only runs on
            # the path where the earlier ones were truthy (and) / falsy
            # (or), so evaluate it under that refinement.
            out = BOTTOM
            env2 = dict(env)
            is_and = isinstance(node.op, ast.And)
            for value in node.values:
                out = out.join(self.eval_expr(value, env2, ctx))
                narrowed = self.narrow(env2, value, is_and, ctx)
                if narrowed is None:
                    break
                env2 = narrowed
            return out
        if isinstance(node, ast.Compare):
            taint = self.eval_expr(node.left, env, ctx).taint
            for comp in node.comparators:
                taint = taint | self.eval_expr(comp, env, ctx).taint
            return Val.of_bool(taint)
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test, env, ctx)
            out = BOTTOM
            for branch, expr in ((True, node.body), (False, node.orelse)):
                sub = self.narrow(dict(env), node.test, branch, ctx)
                if sub is not None:
                    out = out.join(self.eval_expr(expr, sub, ctx))
            return out if not out.is_bottom else TOP
        if isinstance(node, ast.Tuple):
            if any(isinstance(e, ast.Starred) for e in node.elts):
                elem = BOTTOM
                for item in node.elts:
                    if isinstance(item, ast.Starred):
                        elem = elem.join(
                            self.iter_element(
                                self.eval_expr(item.value, env, ctx)
                            )
                        )
                    else:
                        elem = elem.join(self.eval_expr(item, env, ctx))
                return Val.of_seq(elem, Interval.nonneg())
            return Val(tup=tuple(self.eval_expr(e, env, ctx) for e in node.elts))
        if isinstance(node, ast.List):
            elem = BOTTOM
            exact = True
            for item in node.elts:
                if isinstance(item, ast.Starred):
                    exact = False
                    elem = elem.join(
                        self.iter_element(self.eval_expr(item.value, env, ctx))
                    )
                else:
                    elem = elem.join(self.eval_expr(item, env, ctx))
            length = (
                Interval.exact(len(node.elts)) if exact else Interval.nonneg()
            )
            return Val.of_seq(elem, length)
        if isinstance(node, ast.Set):
            elem = BOTTOM
            for item in node.elts:
                elem = elem.join(self.eval_expr(item, env, ctx))
            return Val.of_seq(
                elem, Interval(0, len(node.elts)), unordered=True
            )
        if isinstance(node, ast.Dict):
            key = BOTTOM
            val = BOTTOM
            for key_node, val_node in zip(node.keys, node.values):
                item = self.eval_expr(val_node, env, ctx)
                if key_node is None:  # ** expansion
                    if item.map is not None:
                        key = key.join(item.map.key)
                        val = val.join(item.map.val)
                    continue
                key = key.join(self.eval_expr(key_node, env, ctx))
                val = val.join(item)
                if self.hooks is not None and self.final and not self._quiet:
                    handler = getattr(self.hooks, "on_dict_item", None)
                    if handler is not None and isinstance(key_node, ast.Constant):
                        handler(self, ctx, key_node.value, item, val_node)
            return Val.of_map(key, val, Interval(0, len(node.keys)))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(node, env, ctx)
        if isinstance(node, ast.DictComp):
            return self._eval_comp(node, env, ctx)
        if isinstance(node, ast.Lambda):
            return Val(func=FuncInfo(node, dict(env), ctx))
        if isinstance(node, ast.NamedExpr):
            value = self.eval_expr(node.value, env, ctx)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, ast.Await):
            return self.eval_expr(node.value, env, ctx)
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value, env, ctx)
        if isinstance(node, ast.JoinedStr):
            taint = NO_TAINT
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    taint = taint | self.eval_expr(part.value, env, ctx).taint
            return Val(other=True, taint=taint)
        if isinstance(node, ast.FormattedValue):
            return Val(other=True, taint=self.eval_expr(node.value, env, ctx).taint)
        return TOP

    def load_attr(self, base: Val, attr: str, ctx: FnCtx) -> Val:
        if base.is_bottom:
            return BOTTOM
        out = BOTTOM
        obj = base.obj
        if obj is not None:
            sym = obj.attr(attr)
            if sym is not None:
                out = out.join(sym)
            if obj.path is not None:
                out = out.join(self.summary_load(obj.path + "." + attr))
            if obj.concrete is not None:
                try:
                    concrete = getattr(obj.concrete, attr)
                except Exception:  # noqa: BLE001 - property may raise
                    concrete = _MISSING
                if concrete is not _MISSING:
                    if inspect.isroutine(concrete):
                        out = out.join(Val(other=True))
                    else:
                        path = (
                            obj.path + "." + attr
                            if obj.path is not None
                            else None
                        )
                        out = out.join(seed_value(concrete, path=path))
            if out.is_bottom:
                out = TOP
        elif base.seq is not None or base.map is not None or base.num is not None:
            out = TOP  # method reference or unknown attribute
        else:
            out = TOP
        return out.with_taint(base.taint)

    def _eval_subscript(self, node: ast.Subscript, env: Env, ctx: FnCtx) -> Val:
        base = self.eval_expr(node.value, env, ctx)
        if isinstance(node.slice, ast.Slice):
            for bound in (node.slice.lower, node.slice.upper, node.slice.step):
                if bound is not None:
                    self.eval_expr(bound, env, ctx)
            if base.seq is not None:
                elem = base.seq.elem
                if base.seq.prov is not None:
                    elem = elem.join(self.summary_load(base.seq.prov))
                return Val.of_seq(
                    elem,
                    Interval(0, base.seq.length.hi),
                    unordered=base.seq.unordered,
                    taint=base.taint,
                )
            return TOP
        index = self.eval_expr(node.slice, env, ctx)
        self._seq_obligation(base, index, node, ctx)
        return self.load_subscript(base, index)

    def load_subscript(self, base: Val, index: Val) -> Val:
        if base.is_bottom or index.is_bottom:
            return BOTTOM
        out = BOTTOM
        if base.seq is not None:
            elem = base.seq.elem
            if base.seq.prov is not None:
                elem = elem.join(self.summary_load(base.seq.prov))
            out = out.join(elem)
        if base.map is not None:
            val = base.map.val
            if base.map.prov is not None:
                val = val.join(self.summary_load(base.map.prov))
            out = out.join(val)
        if base.tup is not None:
            if index.num is not None and index.num.is_exact:
                position = index.num.value
                if -len(base.tup) <= position < len(base.tup):
                    out = out.join(base.tup[position])
                # definite out-of-range: contributes nothing (raises)
            else:
                for item in base.tup:
                    out = out.join(item)
        if base.other:
            out = out.join(TOP)
        if out.is_bottom:
            out = TOP
        return out.with_taint(base.taint | index.taint)

    def _eval_binop(self, node: ast.BinOp, env: Env, ctx: FnCtx) -> Val:
        left = self.eval_expr(node.left, env, ctx)
        right = self.eval_expr(node.right, env, ctx)
        taint = left.taint | right.taint
        op = node.op
        if left.num is not None and right.num is not None:
            table = {
                ast.Add: left.num.add,
                ast.Sub: left.num.sub,
                ast.Mult: left.num.mul,
                ast.FloorDiv: left.num.floordiv,
                ast.Mod: left.num.mod,
                ast.LShift: left.num.lshift,
                ast.RShift: left.num.rshift,
                ast.BitAnd: left.num.and_,
                ast.BitOr: left.num.or_,
                ast.BitXor: left.num.xor,
            }
            fn = table.get(type(op))
            if fn is not None:
                return Val(num=fn(right.num), taint=taint)
            if isinstance(op, ast.Div):
                return Val(other=True, taint=taint)
            if isinstance(op, ast.Pow):
                if (
                    left.num.is_exact
                    and right.num.is_exact
                    and 0 <= right.num.value <= 64
                ):
                    return Val.exact(left.num.value ** right.num.value, taint)
                return Val(num=Interval.top(), taint=taint)
        if isinstance(op, ast.Add) and left.seq is not None and right.seq is not None:
            return Val.of_seq(
                left.seq.elem.join(right.seq.elem),
                left.seq.length.add(right.seq.length),
                unordered=left.seq.unordered or right.seq.unordered,
                taint=taint,
            )
        if isinstance(op, ast.Mult):
            seq, count = (
                (left.seq, right.num)
                if left.seq is not None
                else (right.seq, left.num)
            )
            if seq is not None and count is not None:
                length = seq.length.mul(count).meet(Interval.nonneg())
                return Val.of_seq(
                    seq.elem,
                    length if length is not None else Interval.nonneg(),
                    unordered=seq.unordered,
                    taint=taint,
                )
        return Val.top(taint)

    def _eval_comp(self, node: Any, env: Env, ctx: FnCtx) -> Val:
        env2 = dict(env)
        length: Optional[Interval] = None
        capped = False
        unordered = False
        for position, gen in enumerate(node.generators):
            container = self.eval_expr(gen.iter, env2, ctx)
            elem = self.iter_element(container)
            self.bind_target(gen.target, elem, env2, ctx)
            if container.seq is not None:
                unordered = unordered or container.seq.unordered
            if container.map is not None:
                unordered = unordered or container.map.unordered
            if position == 0:
                length = _container_length(container)
            else:
                capped = True
            for if_node in gen.ifs:
                capped = True
                self.eval_expr(if_node, env2, ctx)
                narrowed = self.narrow(env2, if_node, True, ctx)
                if narrowed is not None:
                    env2 = narrowed
        if length is None:
            length = Interval.nonneg()
        if capped:
            length = Interval(0, length.hi)
        if isinstance(node, ast.DictComp):
            key = self.eval_expr(node.key, env2, ctx)
            val = self.eval_expr(node.value, env2, ctx)
            return Val.of_map(key, val, length)
        elem_out = self.eval_expr(node.elt, env2, ctx)
        return Val.of_seq(
            elem_out,
            length,
            unordered=unordered or isinstance(node, ast.SetComp),
        )

    # -- calls ---------------------------------------------------------
    def eval_call(self, node: ast.Call, env: Env, ctx: FnCtx) -> Val:
        func = node.func
        args: list[Val] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                args.append(
                    self.iter_element(self.eval_expr(arg.value, env, ctx))
                )
            else:
                args.append(self.eval_expr(arg, env, ctx))
        kwargs: dict[str, Val] = {}
        kw_taint = NO_TAINT
        for keyword in node.keywords:
            value = self.eval_expr(keyword.value, env, ctx)
            if keyword.arg is not None:
                kwargs[keyword.arg] = value
            kw_taint = kw_taint | value.taint
        arg_taint = kw_taint
        for value in args:
            arg_taint = arg_taint | value.taint
        dotted = _expr_text(func)

        if self.hooks is not None:
            source = getattr(self.hooks, "call_result", None)
            if source is not None:
                hooked = source(self, node, dotted, args)
                if hooked is not None:
                    return hooked

        result = self._dispatch_call(
            node, func, dotted, args, kwargs, arg_taint, env, ctx
        )
        if self.hooks is not None and self.final and not self._quiet:
            observer = getattr(self.hooks, "on_call", None)
            if observer is not None:
                base_val = None
                if isinstance(func, ast.Attribute):
                    with _quietly(self):
                        base_val = self.eval_expr(func.value, env, ctx)
                observer(self, ctx, dotted, base_val, args, kwargs, node)
        return result

    def _dispatch_call(
        self,
        node: ast.Call,
        func: ast.expr,
        dotted: str,
        args: list[Val],
        kwargs: dict[str, Val],
        arg_taint: frozenset,
        env: Env,
        ctx: FnCtx,
    ) -> Val:
        # super().method(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            resolved = None
            try:
                resolved = self.resolver.resolve_super(ctx, func.attr)
            except Exception:  # noqa: BLE001 - defensive
                resolved = None
            self_val = env.get("self")
            if resolved is not None:
                fn_node, fn_ctx = resolved
                return self._inline(fn_node, fn_ctx, args, kwargs, self_val)
            synthetic = getattr(self.resolver, "synthetic_super", None)
            if synthetic is not None:
                result = synthetic(self, self_val, func.attr, args, kwargs)
                if result is not None:
                    return result
            return Val.top(arg_taint)

        if isinstance(func, ast.Name):
            name = func.id
            local = env.get(name)
            if local is not None:
                if local.func is not None:
                    return self._call_funcinfo(local.func, args, kwargs, ctx)
                return Val.top(arg_taint | local.taint)
            builtin = self._call_builtin(
                name, node, args, kwargs, arg_taint, env, ctx
            )
            if builtin is not None:
                return builtin
            resolved = None
            try:
                resolved = self.resolver.resolve_global(ctx, name)
            except Exception:  # noqa: BLE001 - defensive
                resolved = None
            if resolved is not None:
                kind, payload = resolved
                if kind == "fn":
                    fn_node, fn_ctx = payload
                    return self._inline(fn_node, fn_ctx, args, kwargs, None)
                if kind == "cls":
                    return self._construct(payload, args, kwargs, arg_taint)
            return Val.top(arg_taint)

        if isinstance(func, ast.Attribute):
            base = self.eval_expr(func.value, env, ctx)
            method = func.attr
            handled = self._call_container_method(
                base, method, node, args, kwargs, env, ctx
            )
            if handled is not None:
                return handled
            if base.obj is not None:
                try:
                    mro = self.resolver.mro_names(base.obj)
                except Exception:  # noqa: BLE001 - defensive
                    mro = [base.obj.cls_name]
                for cls_name in mro:
                    contract = self.contracts.get((cls_name, method))
                    if contract is not None:
                        return contract(self, base.obj, args)
                resolved = None
                try:
                    resolved = self.resolver.resolve_method(base.obj, method)
                except Exception:  # noqa: BLE001 - defensive
                    resolved = None
                if resolved is not None:
                    fn_node, fn_ctx = resolved
                    return self._inline(fn_node, fn_ctx, args, kwargs, base)
            if base.func is not None:
                return self._call_funcinfo(base.func, args, kwargs, ctx)
            return Val.top(arg_taint | base.taint)

        return Val.top(arg_taint)

    def _call_funcinfo(
        self, info: FuncInfo, args: list[Val], kwargs: dict[str, Val], ctx: FnCtx
    ) -> Val:
        node = info.node
        call_ctx = info.ctx or ctx
        if isinstance(node, ast.Lambda):
            closure = dict(info.env or {})
            self._bind_params(node.args, args, kwargs, closure, call_ctx)
            return self.eval_expr(node.body, closure, call_ctx)
        bound = dict(info.env or {}) if info.env else {}
        self._bind_params(node.args, args, kwargs, bound, call_ctx)
        return self.run_function(node, call_ctx, bound)

    def _inline(
        self,
        fn_node: ast.AST,
        fn_ctx: FnCtx,
        args: list[Val],
        kwargs: dict[str, Val],
        self_val: Optional[Val],
    ) -> Val:
        values = list(args)
        if self_val is not None:
            values = [self_val] + values
        bound: Env = {}
        self._bind_params(fn_node.args, values, kwargs, bound, fn_ctx)
        return self.run_function(fn_node, fn_ctx, bound)

    def _bind_params(
        self,
        arguments: ast.arguments,
        args: list[Val],
        kwargs: dict[str, Val],
        bound: Env,
        ctx: FnCtx,
    ) -> None:
        kwargs = dict(kwargs)
        params = [p.arg for p in arguments.posonlyargs + arguments.args]
        defaults = list(arguments.defaults)
        pad: list[Optional[ast.expr]] = [None] * (len(params) - len(defaults))
        default_map = dict(zip(params, pad + defaults))
        for position, name in enumerate(params):
            if position < len(args):
                bound[name] = args[position]
            elif name in kwargs:
                bound[name] = kwargs.pop(name)
            elif default_map.get(name) is not None:
                bound[name] = self.eval_expr(default_map[name], {}, ctx)
            else:
                bound[name] = TOP
        for param, default in zip(arguments.kwonlyargs, arguments.kw_defaults):
            if param.arg in kwargs:
                bound[param.arg] = kwargs.pop(param.arg)
            elif default is not None:
                bound[param.arg] = self.eval_expr(default, {}, ctx)
            else:
                bound[param.arg] = TOP
        if arguments.vararg is not None:
            extra = BOTTOM
            for value in args[len(params):]:
                extra = extra.join(value)
            bound[arguments.vararg.arg] = Val.of_seq(extra, Interval.nonneg())
        if arguments.kwarg is not None:
            bound[arguments.kwarg.arg] = TOP

    def _construct(
        self, cls: Any, args: list[Val], kwargs: dict[str, Val], arg_taint: frozenset
    ) -> Val:
        fields = None
        try:
            fields = self.resolver.constructor_fields(cls)
        except Exception:  # noqa: BLE001 - defensive
            fields = None
        cls_name = (
            cls.__name__ if isinstance(cls, type) else getattr(cls, "name", "object")
        )
        if fields is None:
            return Val.of_obj(cls_name, taint=arg_taint)
        attrs = []
        for position, (name, default) in enumerate(fields):
            if position < len(args):
                value = args[position]
            elif name in kwargs:
                value = kwargs[name]
            elif default is not None:
                value = default
            else:
                value = TOP
            attrs.append((name, value))
        return Val.of_obj(cls_name, attrs=tuple(attrs), taint=arg_taint)

    # -- builtin models ------------------------------------------------
    def _call_builtin(
        self,
        name: str,
        node: ast.Call,
        args: list[Val],
        kwargs: dict[str, Val],
        arg_taint: frozenset,
        env: Env,
        ctx: FnCtx,
    ) -> Optional[Val]:
        a0 = args[0] if args else BOTTOM
        if name == "len":
            length = _container_length(a0)
            taint = a0.taint - {TAINT_UNORDERED}
            return Val(num=length.meet(Interval.nonneg()) or Interval.nonneg(), taint=taint)
        if name == "range":
            return self._builtin_range(args, arg_taint)
        if name in ("min", "max"):
            return self._builtin_minmax(name, args, kwargs, arg_taint, ctx)
        if name == "sorted":
            key = kwargs.get("key")
            if key is not None and key.func is not None:
                self._call_funcinfo(key.func, [self.iter_element(a0)], {}, ctx)
            elem = self.iter_element(a0)
            elem = _strip_taint(elem, TAINT_UNORDERED)
            length = _container_length(a0)
            return Val.of_seq(elem, length, taint=a0.taint - {TAINT_UNORDERED})
        if name == "sum":
            elem = _strip_taint(self.iter_element(a0), TAINT_UNORDERED)
            length = _container_length(a0)
            if elem.num is not None:
                total = elem.num.mul(length.meet(Interval.nonneg()) or Interval.nonneg())
                start = args[1].num if len(args) > 1 and args[1].num else Interval.exact(0)
                return Val(num=total.add(start), taint=elem.taint | (a0.taint - {TAINT_UNORDERED}))
            return Val(num=Interval.top(), taint=elem.taint)
        if name == "abs":
            if a0.num is not None:
                lo, hi = a0.num.lo, a0.num.hi
                if lo is not None and lo >= 0:
                    return Val(num=a0.num, taint=a0.taint)
                if lo is not None and hi is not None:
                    return Val(num=Interval(0, max(abs(lo), abs(hi))), taint=a0.taint)
                return Val(num=Interval.nonneg(), taint=a0.taint)
            return Val(num=Interval.nonneg(), taint=a0.taint)
        if name == "int":
            if a0.num is not None:
                return Val(num=a0.num, taint=a0.taint)
            return Val(num=Interval.top(), taint=a0.taint)
        if name == "bool":
            return Val.of_bool(a0.taint)
        if name in ("isinstance", "issubclass", "hasattr", "callable"):
            return Val.of_bool()
        if name == "enumerate":
            elem = self.iter_element(a0)
            length = _container_length(a0)
            hi = None if length.hi is None else max(length.hi - 1, 0)
            pair = Val(tup=(Val.of_int(0, hi), elem))
            unordered = bool(a0.seq and a0.seq.unordered) or bool(
                a0.map and a0.map.unordered
            )
            return Val.of_seq(pair, length, unordered=unordered, taint=a0.taint)
        if name == "zip":
            elems = tuple(self.iter_element(value) for value in args)
            lengths = [_container_length(value) for value in args]
            hi = None
            for length in lengths:
                if length.hi is not None:
                    hi = length.hi if hi is None else min(hi, length.hi)
            lo = 0
            if lengths and all(length.lo is not None for length in lengths):
                lo = min(length.lo for length in lengths)
            return Val.of_seq(Val(tup=elems), Interval(lo, hi), taint=arg_taint)
        if name in ("list", "tuple"):
            if not args:
                return Val.of_seq(BOTTOM, Interval.exact(0))
            return Val.of_seq(
                self.iter_element(a0),
                _container_length(a0),
                unordered=bool(a0.seq and a0.seq.unordered)
                or bool(a0.map and a0.map.unordered),
                taint=a0.taint,
            )
        if name in ("set", "frozenset"):
            if not args:
                return Val.of_seq(BOTTOM, Interval.exact(0), unordered=True)
            return Val.of_seq(
                self.iter_element(a0),
                Interval(0, _container_length(a0).hi),
                unordered=True,
                taint=a0.taint,
            )
        if name in ("dict", "OrderedDict", "defaultdict", "Counter"):
            if not args:
                return Val.of_map(BOTTOM, BOTTOM, Interval.exact(0))
            if a0.map is not None:
                return Val(map=a0.map, taint=a0.taint)
            return Val.of_map(TOP, TOP, taint=a0.taint)
        if name == "deque":
            if not args:
                return Val.of_seq(BOTTOM, Interval.exact(0))
            return Val.of_seq(self.iter_element(a0), _container_length(a0))
        if name == "iter":
            return a0
        if name == "next":
            elem = self.iter_element(a0)
            if len(args) > 1:
                elem = elem.join(args[1])
            if a0.map is not None and a0.seq is None:
                # next(iter(d)) yields a key; handled by iter_element.
                pass
            return elem
        if name == "divmod":
            if a0.num is not None and len(args) > 1 and args[1].num is not None:
                return Val(
                    tup=(
                        Val(num=a0.num.floordiv(args[1].num), taint=arg_taint),
                        Val(num=a0.num.mod(args[1].num), taint=arg_taint),
                    )
                )
            return Val(tup=(Val.top(arg_taint), Val.top(arg_taint)))
        if name == "reversed":
            return Val.of_seq(
                self.iter_element(a0), _container_length(a0), taint=a0.taint
            )
        if name in ("all", "any"):
            return Val.of_bool(self.iter_element(a0).taint)
        if name == "id":
            return Val.of_int(0, None, taint=frozenset((TAINT_PID,)))
        if name == "print":
            return Val.none()
        if name in ("repr", "str", "format", "chr", "hex", "bin", "oct"):
            return Val(other=True, taint=arg_taint)
        if name == "round":
            if a0.num is not None and len(args) == 1:
                return Val(num=a0.num, taint=a0.taint)
            return Val(num=Interval.top(), other=True, taint=arg_taint)
        if name == "pow":
            return Val(num=Interval.top(), taint=arg_taint)
        if name == "log2_exact":
            # Companion model of repro.caches.base.log2_exact: exact on
            # exact powers of two, a non-negative width otherwise.
            if a0.num is not None and a0.num.is_exact:
                value = a0.num.value
                if value > 0 and value & (value - 1) == 0:
                    return Val.exact(value.bit_length() - 1, a0.taint)
            return Val(num=Interval.nonneg(), taint=a0.taint)
        if name == "super":
            return None  # handled structurally in _dispatch_call
        return None

    def _builtin_range(self, args: list[Val], arg_taint: frozenset) -> Val:
        zero = Interval.exact(0)
        one = Interval.exact(1)
        if not args:
            return Val.of_seq(Val(num=Interval.nonneg()), Interval.nonneg())
        if len(args) == 1:
            start, stop, step = zero, args[0].num or Interval.top(), one
        else:
            start = args[0].num or Interval.top()
            stop = args[1].num or Interval.top()
            step = args[2].num if len(args) > 2 and args[2].num else one
        if not step.ge(1):
            return Val.of_seq(
                Val(num=Interval.top(), taint=arg_taint), Interval.nonneg()
            )
        elem_hi = None if stop.hi is None else stop.hi - 1
        elem = Val(num=Interval(start.lo, elem_hi), taint=arg_taint)
        span = stop.sub(start)
        length = span.meet(Interval.nonneg()) or Interval.exact(0)
        if not step.is_exact or step.value != 1:
            length = Interval(0, length.hi)
        return Val.of_seq(elem, length, taint=arg_taint)

    def _builtin_minmax(
        self,
        name: str,
        args: list[Val],
        kwargs: dict[str, Val],
        arg_taint: frozenset,
        ctx: FnCtx,
    ) -> Val:
        key = kwargs.get("key")
        if len(args) == 1:
            elem = _strip_taint(self.iter_element(args[0]), TAINT_UNORDERED)
            if key is not None and key.func is not None:
                self._call_funcinfo(key.func, [elem], {}, ctx)
            return elem.with_taint(args[0].taint - {TAINT_UNORDERED})
        nums = [value.num for value in args]
        if all(num is not None for num in nums):
            pick_lo = [num.lo for num in nums]
            pick_hi = [num.hi for num in nums]
            if name == "min":
                lo = None if any(b is None for b in pick_lo) else min(pick_lo)
                hi = None if all(b is None for b in pick_hi) else min(
                    b for b in pick_hi if b is not None
                )
            else:
                lo = None if all(b is None for b in pick_lo) else max(
                    b for b in pick_lo if b is not None
                )
                hi = None if any(b is None for b in pick_hi) else max(pick_hi)
            return Val(num=Interval(lo, hi), taint=arg_taint - {TAINT_UNORDERED})
        out = BOTTOM
        for value in args:
            out = out.join(value)
        return out

    # -- container method models ---------------------------------------
    def _call_container_method(
        self,
        base: Val,
        method: str,
        node: ast.Call,
        args: list[Val],
        kwargs: dict[str, Val],
        env: Env,
        ctx: FnCtx,
    ) -> Optional[Val]:
        a0 = args[0] if args else BOTTOM
        local_name = None
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            local_name = func.value.id

        if base.seq is not None and method in _SEQ_METHODS:
            seq = base.seq
            elem = seq.elem
            if seq.prov is not None:
                elem = elem.join(self.summary_load(seq.prov))
            if method in ("append", "add"):
                self._mutate_seq(base, a0, local_name, env, grow=1)
                return Val.none()
            if method == "insert":
                value = args[1] if len(args) > 1 else TOP
                self._mutate_seq(base, value, local_name, env, grow=1)
                return Val.none()
            if method == "extend":
                self._mutate_seq(
                    base, self.iter_element(a0), local_name, env, grow=None
                )
                return Val.none()
            if method == "pop":
                if args:
                    self._seq_obligation(base, a0, node, ctx)
                return elem.with_taint(base.taint)
            if method == "index":
                hi = None if seq.length.hi is None else max(seq.length.hi - 1, 0)
                return Val.of_int(0, hi, taint=base.taint)
            if method == "count":
                return Val.of_int(0, seq.length.hi, taint=base.taint)
            if method in ("remove", "clear", "reverse", "discard"):
                return Val.none()
            if method == "sort":
                if local_name is not None and local_name in env:
                    current = env[local_name]
                    if current.seq is not None:
                        env[local_name] = Val(
                            num=current.num,
                            maybe_none=current.maybe_none,
                            seq=SeqInfo(
                                current.seq.elem,
                                current.seq.length,
                                current.seq.prov,
                                False,
                            ),
                            map=current.map,
                            tup=current.tup,
                            obj=current.obj,
                            func=current.func,
                            other=current.other,
                            taint=current.taint,
                        )
                return Val.none()
            if method == "copy":
                return Val.of_seq(
                    elem, seq.length, unordered=seq.unordered, taint=base.taint
                )

        if base.map is not None and method in _MAP_METHODS:
            mapc = base.map
            val = mapc.val
            if mapc.prov is not None:
                val = val.join(self.summary_load(mapc.prov))
            if method == "get":
                default = args[1] if len(args) > 1 else Val.none()
                return val.join(default).with_taint(base.taint)
            if method == "pop":
                default = args[1] if len(args) > 1 else BOTTOM
                return val.join(default).with_taint(base.taint)
            if method == "popitem":
                return Val(
                    tup=(mapc.key.with_taint(base.taint), val.with_taint(base.taint))
                )
            if method == "items":
                return Val.of_seq(
                    Val(tup=(mapc.key, val)),
                    mapc.length,
                    unordered=mapc.unordered,
                    taint=base.taint,
                )
            if method == "keys":
                return Val.of_seq(
                    mapc.key, mapc.length, unordered=mapc.unordered, taint=base.taint
                )
            if method == "values":
                return Val.of_seq(
                    val,
                    mapc.length,
                    prov=mapc.prov,
                    unordered=mapc.unordered,
                    taint=base.taint,
                )
            if method == "setdefault":
                default = args[1] if len(args) > 1 else Val.none()
                if mapc.prov is not None:
                    self.summary_store(mapc.prov, default)
                return val.join(default).with_taint(base.taint)
            if method == "update":
                if a0.map is not None and mapc.prov is not None:
                    self.summary_store(mapc.prov, a0.map.val)
                return Val.none()
            if method in ("move_to_end", "clear"):
                return Val.none()
            if method == "copy":
                return Val(map=mapc, taint=base.taint)

        if (
            base.num is not None
            and base.seq is None
            and base.map is None
            and method == "bit_length"
        ):
            hi = None
            if base.num.hi is not None and base.num.lo is not None:
                hi = max(abs(base.num.hi), abs(base.num.lo)).bit_length()
            return Val.of_int(0, hi, taint=base.taint)
        return None

    def _mutate_seq(
        self,
        base: Val,
        value: Val,
        local_name: Optional[str],
        env: Env,
        grow: Optional[int],
    ) -> None:
        if base.seq is not None and base.seq.prov is not None:
            self.summary_store(base.seq.prov, value)
        if local_name is not None and local_name in env:
            current = env[local_name]
            if current.seq is not None:
                growth = (
                    Interval.exact(grow) if grow is not None else Interval.nonneg()
                )
                env[local_name] = Val(
                    num=current.num,
                    maybe_none=current.maybe_none,
                    seq=SeqInfo(
                        current.seq.elem.join(value),
                        current.seq.length.add(growth),
                        current.seq.prov,
                        current.seq.unordered,
                    ),
                    map=current.map,
                    tup=current.tup,
                    obj=current.obj,
                    func=current.func,
                    other=current.other,
                    taint=current.taint,
                )


_SEQ_METHODS = frozenset(
    (
        "append",
        "add",
        "insert",
        "extend",
        "pop",
        "index",
        "count",
        "remove",
        "clear",
        "reverse",
        "discard",
        "sort",
        "copy",
    )
)

_MAP_METHODS = frozenset(
    (
        "get",
        "pop",
        "popitem",
        "items",
        "keys",
        "values",
        "setdefault",
        "update",
        "move_to_end",
        "clear",
        "copy",
    )
)


# ----------------------------------------------------------------------
# Module helpers
# ----------------------------------------------------------------------
class _MissingSentinel:
    pass


_MISSING = _MissingSentinel()


class _quietly:
    """Context manager suppressing obligations/hook events (re-eval)."""

    def __init__(self, interp: Interp) -> None:
        self.interp = interp

    def __enter__(self) -> None:
        self.interp._quiet += 1

    def __exit__(self, *exc: Any) -> None:
        self.interp._quiet -= 1


_NEGATED_OPS: dict[type, type] = {
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
    ast.Lt: ast.GtE,
    ast.LtE: ast.Gt,
    ast.Gt: ast.LtE,
    ast.GtE: ast.Lt,
    ast.Is: ast.IsNot,
    ast.IsNot: ast.Is,
}


def _comparison_bound(
    op_type: type, other: Interval, flipped: bool
) -> Optional[Interval]:
    """The interval the refined side must lie in, given ``side op other``.

    ``flipped`` means the refined side is on the *right* of the op.
    """
    if flipped:
        op_type = {
            ast.Lt: ast.Gt,
            ast.LtE: ast.GtE,
            ast.Gt: ast.Lt,
            ast.GtE: ast.LtE,
        }.get(op_type, op_type)
    if op_type is ast.Eq:
        return other
    if op_type is ast.NotEq:
        return Interval.top()  # endpoint exclusion handled by caller
    if op_type is ast.Lt:
        return Interval(None, None if other.hi is None else other.hi - 1)
    if op_type is ast.LtE:
        return Interval(None, other.hi)
    if op_type is ast.Gt:
        return Interval(None if other.lo is None else other.lo + 1, None)
    if op_type is ast.GtE:
        return Interval(other.lo, None)
    return None


def _exclude_endpoint(interval: Interval, value: int) -> Optional[Interval]:
    """Refine ``!= value`` when it trims an interval endpoint."""
    lo, hi = interval.lo, interval.hi
    if lo is not None and lo == value:
        lo = lo + 1
    elif hi is not None and hi == value:
        hi = hi - 1
    if lo is not None and hi is not None and lo > hi:
        return None
    return Interval(lo, hi)


def _container_length(value: Val) -> Interval:
    length = None
    if value.seq is not None:
        length = value.seq.length
    if value.map is not None:
        length = (
            value.map.length if length is None else length.join(value.map.length)
        )
    if value.tup is not None:
        arity = Interval.exact(len(value.tup))
        length = arity if length is None else length.join(arity)
    if length is None:
        return Interval.nonneg()
    return length


def _container_with_elem(current: Val, value: Val, index: Val) -> Val:
    """Weak update of a local container binding after ``c[i] = v``."""
    seq = current.seq
    if seq is not None:
        seq = SeqInfo(seq.elem.join(value), seq.length, seq.prov, seq.unordered)
    mapc = current.map
    if mapc is not None:
        mapc = MapInfo(
            mapc.key.join(index),
            mapc.val.join(value),
            mapc.length.add(Interval(0, 1)),
            mapc.prov,
            mapc.unordered,
        )
    return Val(
        num=current.num,
        maybe_none=current.maybe_none,
        seq=seq,
        map=mapc,
        tup=None if current.tup is not None else None,
        obj=current.obj,
        func=current.func,
        other=current.other,
        taint=current.taint,
    )


def _strip_taint(value: Val, label: str) -> Val:
    if label not in value.taint:
        return value
    from dataclasses import replace as _replace

    return _replace(value, taint=value.taint - {label})


def _truthy(value: Val) -> Optional[Val]:
    """Refine a value assumed truthy; ``None`` if impossible."""
    if value.is_bottom:
        return None
    num = value.num
    if num is not None:
        lo, hi = num.lo, num.hi
        if lo == 0 and hi == 0:
            num = None
        else:
            if lo == 0:
                lo = 1
            if hi == 0:
                hi = -1
            if lo is not None and hi is not None and lo > hi:
                num = None
            else:
                num = Interval(lo, hi)
    seq = value.seq
    if seq is not None:
        length = seq.length.meet(Interval(1, None))
        seq = None if length is None else SeqInfo(
            seq.elem, length, seq.prov, seq.unordered
        )
    mapc = value.map
    if mapc is not None:
        length = mapc.length.meet(Interval(1, None))
        mapc = None if length is None else MapInfo(
            mapc.key, mapc.val, length, mapc.prov, mapc.unordered
        )
    tup = value.tup if value.tup else None
    out = Val(
        num=num,
        maybe_none=False,
        seq=seq,
        map=mapc,
        tup=tup,
        obj=value.obj,
        func=value.func,
        other=value.other,
        taint=value.taint,
    )
    return None if out.is_bottom else out


def _falsy(value: Val) -> Optional[Val]:
    """Refine a value assumed falsy; ``None`` if impossible."""
    if value.is_bottom:
        return None
    num = None
    if value.num is not None:
        num = value.num.meet(Interval.exact(0))
    seq = value.seq
    if seq is not None:
        length = seq.length.meet(Interval.exact(0))
        seq = None if length is None else SeqInfo(
            seq.elem, length, seq.prov, seq.unordered
        )
    mapc = value.map
    if mapc is not None:
        length = mapc.length.meet(Interval.exact(0))
        mapc = None if length is None else MapInfo(
            mapc.key, mapc.val, length, mapc.prov, mapc.unordered
        )
    tup = value.tup if value.tup is not None and len(value.tup) == 0 else None
    out = Val(
        num=num,
        maybe_none=value.maybe_none,
        seq=seq,
        map=mapc,
        tup=tup,
        obj=value.obj,
        func=value.func,
        other=value.other,
        taint=value.taint,
    )
    return None if out.is_bottom else out


def _expr_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # noqa: BLE001 - cosmetic only
        return "<expr>"


def _as_load(node: ast.expr) -> ast.expr:
    """A Load-context copy of an assignment target (for AugAssign)."""
    try:
        loaded = ast.parse(_expr_text(node), mode="eval").body
        ast.increment_lineno(loaded, getattr(node, "lineno", 1) - 1)
        return loaded
    except SyntaxError:  # pragma: no cover - defensive
        return ast.Constant(value=None)
