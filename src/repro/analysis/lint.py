"""``bcache-lint`` — AST lint pass with simulator-specific rules.

Generic linters cannot know that every cache model must route its
statistics through :meth:`repro.caches.base.Cache.access`, or that a
``/`` inside ``_access_block`` silently turns an index into a float.
This pass encodes the repo's correctness conventions as machine-checked
rules:

========  =============================================================
code      rule
========  =============================================================
BCL001    concrete ``Cache`` subclass must implement ``_access_block``,
          ``_probe_block`` and ``_flush_state``
BCL002    cache subclasses must route statistics through the base class
          (no ``access``/``run`` overrides, no direct
          ``self.stats.record(...)`` calls)
BCL003    hot-path dataclasses must declare ``slots=True``
BCL004    geometry parameters must be validated via ``log2_exact`` —
          no bare ``int(math.log2(...))``, no ``math.log2`` in
          ``caches``/``core`` modules
BCL005    no unseeded ``random`` usage anywhere in ``src/repro/``
          (module-level ``random.*`` calls, seedless ``Random()``)
BCL006    no float arithmetic in index/tag computation
          (``/``, ``float()``, ``math.*`` inside the address-math
          functions)
BCL007    no mutable default arguments
BCL008    cache-interface methods must carry full type annotations so
          this pass (and mypy) can reason about subclass signatures
BCL009    batch kernels (``access_trace`` / ``_batch_trace``) must stay
          allocation-free: no ``AccessResult(...)`` construction on a
          CFG cycle (accumulate locals, bulk-update the stats once) —
          decided on the function's real control-flow graph, so
          straight-line code under a lexical loop that returns on its
          first iteration is not flagged
BCL010    engine code (``repro.engine``) must not swallow failures or
          spin-retry: no bare ``except:``, no ``except Exception:
          pass``, and retry loops (``while``/``for range(...)`` with an
          except-and-continue) must back off via a sleep/delay call
BCL011    event-loop code (``repro.serve`` and the cluster coordinator
          ``repro.engine.cluster``) must not block the loop: no
          ``time.sleep``, synchronous file I/O (``open``,
          ``read_text``/``write_text``/…) or ``Future.result()``
          inside a coroutine — await, or offload via
          ``run_in_executor``
BCL012    telemetry contract: ``span(...)`` must be used as a context
          manager (``with span(...):`` — never a bare call or manual
          ``__enter__``, which loses the crash-safe exit event), and
          metric names passed to ``counter``/``gauge``/``histogram``
          must match ``^repro_[a-z0-9_]+$``
BCL013    determinism audit (flow): values tainted by wall-clock,
          process identity, unseeded randomness or unordered iteration
          must not flow into result-bearing sinks — ``CacheStats``
          fields, journal ``record(...)`` calls, ``merge_deltas`` and
          serve response payloads
BCL014    fork-safety (flow): process-boundary entry points must not
          mutate module-level mutable state, ship unpicklable objects
          (locks, file handles, event loops) across ``Process``/
          ``submit`` boundaries, or (serve) drop ``create_task``
          references (task leak)
BCL015    bit-width proof (flow): address-derived indices in
          ``_access_block``-family methods are abstract-interpreted
          over intervals seeded from the constructor; an index mask
          provably wider than its table is flagged
BCL016    columnar/shm discipline: no ``Access`` object construction
          inside a batch-kernel loop (kernels consume address/kind
          columns directly), and no ``SharedMemory`` use without a
          paired ``close()``/``unlink()`` owner in the same module
BCL017    cluster coroutines (``repro.engine.cluster``) must bound every
          await on a node socket (``connect``/``request``/``sweep``/
          ``status``/``read_frame``/…) with a deadline — wrap the call
          in ``asyncio.wait_for(...)``; a hung node must never hang
          the coordinator
BCL018    result-cache key discipline: ``execute_job`` must not read a
          job field outside the canonical hash set (a field that can
          change the result but not the key silently poisons every
          cached entry), and nothing non-canonical — ``str(...)``,
          ``repr(...)`` or an f-string — may feed a cache-key function
          (``canonical_job_key``/``job_hash``); representation drift
          splits one logical job across many keys
BCL019    trace propagation discipline: spans opened inside serve or
          cluster coroutines (``span``/``stage_span``/``stage_event``)
          must thread the request context via ``trace=`` (an
          ambient-only span silently detaches from its waterfall the
          moment a task boundary drops the contextvar), and trace ids
          must never be minted from clocks or randomness
          (``time.*``/``random.*``/``uuid4``/``urandom``/…) — a worker
          that mints a nondeterministic id orphans its spans and breaks
          replay
========  =============================================================

Rules BCL013–BCL015 run on the :mod:`repro.analysis.flow`
abstract-interpretation engine (see ``docs/analysis.md``); the
remaining rules are single-pass syntactic checks.

A violation on a line containing ``# noqa: BCLxxx`` (or a bare
``# noqa``) is suppressed; the repo itself is expected to stay clean
(see ``tests/test_lint.py::test_repo_is_lint_clean``).
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import os
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional

#: One-line summary per rule (``bcache-lint --list-rules``).
RULES: dict[str, str] = {
    "BCL001": "concrete Cache subclass must implement "
    "_access_block/_probe_block/_flush_state",
    "BCL002": "cache subclasses must route stats through the base class "
    "(no access/run override, no self.stats.record)",
    "BCL003": "hot-path dataclass must declare slots=True",
    "BCL004": "validate geometry via log2_exact, not int(math.log2(...))",
    "BCL005": "unseeded random usage (module-level random.* / Random())",
    "BCL006": "float arithmetic in index/tag computation",
    "BCL007": "mutable default argument",
    "BCL008": "cache-interface method missing type annotations",
    "BCL009": "AccessResult allocation inside a batch-kernel loop",
    "BCL010": "engine code swallows exceptions or retries without backoff",
    "BCL011": "blocking call (time.sleep / sync file I/O / Future.result) "
    "inside a serve or cluster coroutine",
    "BCL012": "span() not used as a context manager, or metric name not "
    "matching ^repro_[a-z0-9_]+$",
    "BCL013": "nondeterministic value (wall-clock/pid/random/unordered) "
    "flows into a result-bearing sink",
    "BCL014": "fork-safety hazard: worker-reachable module state mutation, "
    "unpicklable across the process boundary, or dropped create_task",
    "BCL015": "address-derived index mask provably wider than its table "
    "(interval/bit-width proof of address math)",
    "BCL016": "Access object built in a batch-kernel loop, or SharedMemory "
    "without a paired close()/unlink() owner",
    "BCL017": "await on a node socket without a deadline in a cluster "
    "coroutine (wrap in asyncio.wait_for)",
    "BCL018": "result-cache key discipline: execute_job reads a job field "
    "outside the canonical hash, or str()/repr()/f-string feeds a cache key",
    "BCL019": "trace discipline: span/stage_span/stage_event in a serve or "
    "cluster coroutine without trace=, or a trace id minted from "
    "clock/randomness",
}

#: Rules that need the flow engine rather than the syntactic visitor.
FLOW_RULES = frozenset({"BCL013", "BCL014", "BCL015"})

#: Sub-packages of ``repro`` whose code runs once per simulated access.
HOT_PACKAGES = frozenset(
    {"caches", "core", "trace", "hierarchy", "replacement", "stats"}
)

#: Sub-packages holding the fault-tolerant engine: failure handling
#: there must be explicit (BCL010) — a swallowed exception is a lost
#: worker, a sleepless retry loop is a busy-wait against a dead pool.
ENGINE_PACKAGES = frozenset({"engine"})

#: Call names that count as backing off inside a retry loop.
BACKOFF_CALLS = frozenset({"sleep", "delay", "backoff", "wait"})

#: Sub-packages running on an asyncio event loop: a blocking call in a
#: coroutine there stalls every connection at once (BCL011).
SERVE_PACKAGES = frozenset({"serve"})

#: Coroutine call names that talk to a node socket in the cluster
#: coordinator.  BCL017: every such await must sit inside a deadline
#: wrapper, or one hung node hangs the whole sweep.
NODE_SOCKET_CALLS = frozenset(
    {
        "connect",
        "connect_with_backoff",
        "request",
        "simulate",
        "sweep",
        "status",
        "drain",
        "open_connection",
        "open_unix_connection",
        "read_frame",
        "write_frame",
    }
)

def _is_cluster_module(segments: tuple[str, ...]) -> bool:
    """Is this file part of the cluster coordinator (BCL011/BCL017 scope)?"""
    return (
        len(segments) >= 2
        and segments[0] in ENGINE_PACKAGES
        and segments[-1].startswith("cluster")
    )

#: Method calls that do synchronous file I/O when issued on a ``Path``
#: (or file object) inside a coroutine.
BLOCKING_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: ``SweepJob`` fields covered by the canonical result-cache key
#: (mirrors ``repro.serve.resultcache.HASHED_JOB_FIELDS``; duplicated so
#: the linter stays importable without the serve package).  BCL018:
#: ``execute_job`` reading any *other* ``job.<field>`` means the cached
#: result depends on state the key cannot see.
RESULT_CACHE_KEY_FIELDS = frozenset(
    {"spec", "benchmark", "side", "n", "seed", "size", "line_size",
     "policy", "with_kinds"}
)

#: Functions whose return value keys the result cache.  BCL018: their
#: arguments must stay canonical — ``str()``/``repr()``/f-string
#: serialisation drifts with Python versions and repr details, silently
#: splitting one logical job across several cache entries.
CACHE_KEY_FUNCS = frozenset({"canonical_job_key", "job_hash", "cache_key"})

#: Registry factory methods whose first argument is a metric name that
#: must satisfy the exposition contract (BCL012).
METRIC_FACTORY_METHODS = frozenset({"counter", "gauge", "histogram"})

#: Span-opening observability calls.  BCL019: inside serve/cluster
#: coroutines each must thread the request's TraceContext explicitly —
#: relying on the ambient contextvar detaches the span from its
#: waterfall as soon as a task boundary drops the context.
TRACE_SPAN_CALLS = frozenset({"span", "stage_span", "stage_event"})

#: Nondeterministic sources banned from trace-id minting (BCL019);
#: ``time.*`` and ``random.*`` attribute calls are banned wholesale.
NONDET_TRACE_SOURCES = frozenset(
    {"uuid4", "urandom", "token_hex", "token_bytes", "getrandbits",
     "randbytes"}
)

#: Prometheus-safe, repo-prefixed metric names (mirrors
#: ``repro.obs.metrics.METRIC_NAME_RE``; duplicated so the linter stays
#: importable without the obs package).
METRIC_NAME_PATTERN = re.compile(r"^repro_[a-z0-9_]+$")

#: Modules where ``math.log2`` itself is banned (geometry must go
#: through ``log2_exact``); the energy models legitimately need floats.
GEOMETRY_PACKAGES = frozenset({"caches", "core"})

#: The subclass contract of :class:`repro.caches.base.Cache`.
CACHE_INTERFACE = ("_access_block", "_probe_block", "_flush_state")

#: Functions that compute set indices / tags and must stay integral.
INDEX_FUNCS = frozenset(
    {
        "_access_block",
        "_probe_block",
        "_batch_trace",
        "decompose_block",
        "compose_block",
        "set_index",
    }
)

#: The batch fast path: these bodies are the per-reference hot loop and
#: must not allocate one result object per access (BCL009).
BATCH_FUNCS = frozenset({"access_trace", "_batch_trace"})

#: ``random.<fn>()`` calls that use the shared, unseeded global state.
RANDOM_MODULE_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "expovariate",
        "betavariate",
        "paretovariate",
        "seed",
        "getrandbits",
    }
)

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True, slots=True)
class Violation:
    """One lint finding, renderable as ``path:line: CODE message``."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _call_name(node: ast.Call) -> str:
    """The called name: ``f(...)`` → ``f``, ``obj.m(...)`` → ``m``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _module_segments(path: str) -> tuple[str, ...]:
    """Path components below the ``repro`` package (empty if outside)."""
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return parts[i + 1 :]
    return ()


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_abstract_class(node: ast.ClassDef, bases: list[str]) -> bool:
    if "ABC" in bases or "ABCMeta" in bases:
        return True
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in item.decorator_list:
                name = deco.attr if isinstance(deco, ast.Attribute) else (
                    deco.id if isinstance(deco, ast.Name) else ""
                )
                if name in {"abstractmethod", "abstractproperty"}:
                    return True
    return False


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator, if present."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return deco
    return None


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "bytearray"}
    return False


class _Linter(ast.NodeVisitor):
    """Single-pass visitor collecting all rule violations for one file."""

    def __init__(self, path: str, segments: tuple[str, ...]) -> None:
        self.path = path
        self.hot = bool(segments) and segments[0] in HOT_PACKAGES
        self.geometry_module = bool(segments) and segments[0] in GEOMETRY_PACKAGES
        self.engine_module = bool(segments) and segments[0] in ENGINE_PACKAGES
        self.cluster_module = _is_cluster_module(segments)
        # The cluster coordinator runs on an event loop exactly like the
        # serve package; it inherits the no-blocking-call rule (BCL011).
        self.serve_module = (
            bool(segments) and segments[0] in SERVE_PACKAGES
        ) or self.cluster_module
        self.violations: list[Violation] = []
        self._func_stack: list[str] = []
        self._async_stack: list[bool] = []  # "is coroutine" per frame
        self._class_stack: list[bool] = []  # "is cache-like" per frame
        self._awaited_calls: set[ast.Call] = set()
        self._cm_calls: set[ast.Call] = set()  # calls used as with-items
        self._loop_depth = 0  # loops inside the current function body
        # BCL016 bookkeeping: SharedMemory call sites seen in this
        # module, plus whether any close()/unlink() appears anywhere in
        # it (resolved module-wide in finish()).
        self._shm_calls: list[tuple[ast.Call, bool]] = []
        self._saw_close = False
        self._saw_unlink = False

    # -- helpers -------------------------------------------------------
    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, getattr(node, "lineno", 0), code, message)
        )

    @property
    def _in_index_func(self) -> bool:
        return bool(self._func_stack) and self._func_stack[-1] in INDEX_FUNCS

    @property
    def _in_batch_func(self) -> bool:
        return any(name in BATCH_FUNCS for name in self._func_stack)

    @property
    def _in_cache_class(self) -> bool:
        return bool(self._class_stack) and self._class_stack[-1]

    @property
    def _in_coroutine(self) -> bool:
        """Is the nearest enclosing function frame an ``async def``?

        A plain nested ``def`` inside a coroutine is *not* a coroutine
        frame — it typically runs in an executor thread, where blocking
        is the whole point.
        """
        return bool(self._async_stack) and self._async_stack[-1]

    # -- classes -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = _base_names(node)
        # "Cache-like": inherits (directly) from the abstract base or
        # from another cache model; CacheLevel et al. do not match.
        cache_like = any(b == "Cache" or b.endswith("Cache") for b in bases)
        direct_subclass = "Cache" in bases
        abstract = _is_abstract_class(node, bases)
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        if direct_subclass and not abstract:
            missing = [m for m in CACHE_INTERFACE if m not in methods]
            if missing:
                self._add(
                    node,
                    "BCL001",
                    f"cache model {node.name!r} does not implement "
                    f"{', '.join(missing)}",
                )

        if cache_like:
            # access_trace is the sanitizer's single batch interception
            # point; subclasses customise _batch_trace instead.
            for overridden in ("access", "run", "access_trace"):
                if overridden in methods:
                    self._add(
                        node,
                        "BCL002",
                        f"{node.name!r} overrides {overridden}(); statistics "
                        "must be routed through Cache.access/Cache.run "
                        "(batch kernels override _batch_trace)",
                    )

        deco = _dataclass_decorator(node)
        if deco is not None and self.hot:
            has_slots = isinstance(deco, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in deco.keywords
            )
            if not has_slots:
                self._add(
                    node,
                    "BCL003",
                    f"hot-path dataclass {node.name!r} must declare slots=True",
                )

        self._class_stack.append(cache_like)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- functions -----------------------------------------------------
    def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_literal(default):
                self._add(
                    default,
                    "BCL007",
                    f"mutable default argument in {node.name}()",
                )

        # BCL009 on real control flow: an allocation counts as per-access
        # only when its basic block sits on a CFG cycle (or inside a
        # comprehension).  Nested defs get their own CFGs.
        if node.name in BATCH_FUNCS and not self._in_batch_func:
            self._check_batch_allocations(node)

        if node.name in CACHE_INTERFACE:
            positional = args.posonlyargs + args.args
            unannotated = [
                a.arg
                for a in positional[1:] + args.kwonlyargs  # skip self
                if a.annotation is None
            ]
            if unannotated:
                self._add(
                    node,
                    "BCL008",
                    f"{node.name}() is missing annotations for "
                    f"{', '.join(unannotated)}",
                )
            if node.returns is None:
                self._add(
                    node,
                    "BCL008",
                    f"{node.name}() is missing a return annotation",
                )

        self._func_stack.append(node.name)
        self._async_stack.append(isinstance(node, ast.AsyncFunctionDef))
        enclosing_loops = self._loop_depth
        self._loop_depth = 0
        self.generic_visit(node)
        self._loop_depth = enclosing_loops
        self._async_stack.pop()
        self._func_stack.pop()

    def _check_batch_allocations(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        from .rules_flow import batch_allocation_lines

        nested = [
            sub
            for sub in ast.walk(node)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not node
        ]
        nested_spans = [
            (sub.lineno, sub.end_lineno or sub.lineno) for sub in nested
        ]
        lines = {
            line
            for line in batch_allocation_lines(node)
            if not any(lo <= line <= hi for lo, hi in nested_spans)
        }
        for sub in nested:
            lines.update(batch_allocation_lines(sub))
        for line in sorted(lines):
            self.violations.append(
                Violation(
                    self.path,
                    line,
                    "BCL009",
                    "AccessResult allocated per access inside a batch "
                    "kernel loop; accumulate local counters instead",
                )
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)

    # -- loops ---------------------------------------------------------
    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        # Only counted ``for`` loops (``for _ in range(...)``) look like
        # retry loops; journal/line iteration legitimately continues on
        # bad records without sleeping.
        if (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
        ):
            self._check_retry_loop(node)
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited_calls.add(node.value)
            # BCL017: an awaited node-socket call must carry a deadline.
            # The wrapped form (await asyncio.wait_for(client.sweep(...),
            # t)) awaits wait_for, not sweep, so it passes; the bare
            # form awaits the socket op directly and is flagged.
            if self.cluster_module and self._in_coroutine:
                name = _call_name(node.value)
                if name in NODE_SOCKET_CALLS:
                    self._add(
                        node,
                        "BCL017",
                        f"await {name}() on a node socket without a deadline; "
                        "wrap the call in asyncio.wait_for(...)",
                    )
        self.generic_visit(node)

    # -- with-statements (BCL012 bookkeeping) --------------------------
    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                self._cm_calls.add(item.context_expr)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_retry_loop(node)
        self._visit_loop(node)

    def _check_retry_loop(self, node: ast.While | ast.For) -> None:
        """BCL010 (engine only): a loop that catches-and-continues must
        back off — a sleepless retry loop busy-waits against a failure
        that is not going away this microsecond."""
        if not self.engine_module:
            return
        retries = False
        backs_off = False
        for child in ast.walk(node):
            if isinstance(child, ast.ExceptHandler) and any(
                isinstance(sub, ast.Continue) for sub in ast.walk(child)
            ):
                retries = True
            elif isinstance(child, ast.Call):
                func = child.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else ""
                )
                if name in BACKOFF_CALLS:
                    backs_off = True
        if retries and not backs_off:
            self._add(
                node,
                "BCL010",
                "retry loop without backoff: call sleep/delay before "
                "retrying a failed operation",
            )

    # -- exception handling (BCL010, engine only) ----------------------
    @staticmethod
    def _handler_type_names(node: ast.ExceptHandler) -> list[str]:
        """Exception class names a handler catches (empty for bare)."""
        if node.type is None:
            return []
        exprs = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        names = []
        for expr in exprs:
            if isinstance(expr, ast.Name):
                names.append(expr.id)
            elif isinstance(expr, ast.Attribute):
                names.append(expr.attr)
        return names

    @staticmethod
    def _is_noop_body(body: list[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in body
        )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.engine_module:
            if node.type is None:
                self._add(
                    node,
                    "BCL010",
                    "bare except: hides worker failures; catch specific "
                    "exception types (contextlib.suppress for expected ones)",
                )
            elif any(
                name in {"Exception", "BaseException"}
                for name in self._handler_type_names(node)
            ) and self._is_noop_body(node.body):
                self._add(
                    node,
                    "BCL010",
                    "except Exception: pass swallows failures silently; "
                    "log, retry with backoff, or re-raise",
                )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_loop(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_loop(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_loop(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_loop(node)

    # -- expressions ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func

        # BCL004: int(math.log2(...)) truncates silently on non-powers
        # of two; log2_exact raises instead.
        if (
            isinstance(func, ast.Name)
            and func.id == "int"
            and len(node.args) == 1
            and self._is_math_call(node.args[0], {"log2"})
        ):
            self._add(
                node,
                "BCL004",
                "use log2_exact(value, what) instead of int(math.log2(...))",
            )
        elif self.geometry_module and self._is_math_call(node, {"log2"}):
            self._add(
                node,
                "BCL004",
                "math.log2 in a geometry module; use log2_exact",
            )

        # BCL005: the module-level random API draws from one shared,
        # unseeded generator — irreproducible simulations.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "random" and func.attr in RANDOM_MODULE_FUNCS:
                self._add(
                    node,
                    "BCL005",
                    f"random.{func.attr}() uses the unseeded global generator; "
                    "pass an explicit random.Random(seed)",
                )
            if (
                func.value.id == "random"
                and func.attr == "Random"
                and not node.args
                and not node.keywords
            ):
                self._add(
                    node,
                    "BCL005",
                    "random.Random() without a seed is irreproducible",
                )
        if (
            isinstance(func, ast.Name)
            and func.id in {"Random", "SystemRandom"}
            and not node.args
            and not node.keywords
        ):
            self._add(
                node, "BCL005", f"{func.id}() without a seed is irreproducible"
            )

        # BCL012: a span's duration/ok fields are written by __exit__;
        # a bare span(...) call — or a manual __enter__() on one —
        # leaks an unpaired span whenever the caller raises.
        # ExitStack.enter_context(span(...)) still routes through
        # __exit__ and is allowed.
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name == "enter_context":
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    self._cm_calls.add(arg)
        elif name == "span" and node not in self._cm_calls:
            self._add(
                node,
                "BCL012",
                "span(...) must be entered via a with-statement "
                "(with span(...):) so the exit event is always emitted",
            )

        # BCL012: metric names feed the Prometheus exposition; reject a
        # name that would fail the registry's contract at lint time
        # rather than at first scrape.
        if (
            name in METRIC_FACTORY_METHODS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and not METRIC_NAME_PATTERN.match(node.args[0].value)
        ):
            self._add(
                node,
                "BCL012",
                f"metric name {node.args[0].value!r} does not match "
                "^repro_[a-z0-9_]+$",
            )

        # BCL019 (a): a span opened on the request path must carry the
        # request's TraceContext explicitly.  The ambient contextvar is
        # a convenience, not a guarantee — create_task / executor hops
        # drop it, and the span lands parentless in the event log.
        if (
            self.serve_module
            and self._in_coroutine
            and name in TRACE_SPAN_CALLS
            and not any(kw.arg == "trace" for kw in node.keywords)
        ):
            self._add(
                node,
                "BCL019",
                f"{name}(...) in a serve/cluster coroutine must thread the "
                "request context explicitly (trace=...); ambient context "
                "does not survive task boundaries",
            )

        # BCL019 (b): trace identity must be deterministic.  An id
        # minted from a clock or an entropy source cannot be re-derived
        # on replay, and a worker minting its own id (instead of
        # deriving from the propagated parent) orphans its spans.
        is_mint = name == "mint_trace_id" or (
            isinstance(func, ast.Attribute)
            and func.attr == "new"
            and isinstance(func.value, ast.Name)
            and func.value.id == "TraceContext"
        )
        if is_mint:
            culprit = self._nondet_trace_arg(node)
            if culprit:
                self._add(
                    node,
                    "BCL019",
                    f"trace id minted from {culprit}; derive it from a "
                    "deterministic request key (client id / ordinal / "
                    "propagated parent), never from clocks or randomness",
                )

        # BCL016: the columnar refactor's contract.  Batch kernels flow
        # flat address/kind columns straight from the trace store; one
        # Access object per reference would resurrect the allocation
        # cost the columnar core removed.
        if name == "Access" and self._in_batch_func and self._loop_depth > 0:
            self._add(
                node,
                "BCL016",
                "Access object built inside a batch-kernel loop; columnar "
                "kernels consume address/kind columns directly",
            )

        # BCL016 bookkeeping: SharedMemory ownership is resolved
        # module-wide in finish() — every create needs close()+unlink()
        # somewhere in its module, every attach at least a close().
        if name == "SharedMemory":
            created = any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            self._shm_calls.append((node, created))
        elif name == "close":
            self._saw_close = True
        elif name == "unlink":
            self._saw_unlink = True

        # BCL018: cache-key functions must be fed canonical values.  An
        # f-string or str()/repr() serialisation in the argument list
        # bakes incidental representation into the content hash.
        if name in CACHE_KEY_FUNCS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                culprit = self._non_canonical_arg(arg)
                if culprit:
                    self._add(
                        arg,
                        "BCL018",
                        f"{culprit} feeds cache-key function {name}(); pass "
                        "the job/mapping itself — canonical serialisation "
                        "happens inside the key function",
                    )

        # BCL011: serve coroutines share one event loop; a single
        # blocking call there stalls every connection.  Blocking work
        # belongs in an executor (see ShardPool's shard-io threads).
        if self.serve_module and self._in_coroutine:
            self._check_blocking_call(node)

        # BCL006: float() / math.* inside address math.
        if self._in_index_func and self.hot:
            if isinstance(func, ast.Name) and func.id == "float":
                self._add(node, "BCL006", "float() in index/tag computation")
            elif self._is_math_call(node, None):
                self._add(
                    node,
                    "BCL006",
                    f"math.{func.attr} in index/tag computation",  # type: ignore[union-attr]
                )

        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self._in_index_func and self.hot and isinstance(node.op, ast.Div):
            self._add(
                node,
                "BCL006",
                "true division in index/tag computation (use // or shifts)",
            )
        self.generic_visit(node)

    def _check_blocking_call(self, node: ast.Call) -> None:
        """BCL011: blocking primitives inside a serve coroutine."""
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            self._add(
                node,
                "BCL011",
                "open() blocks the event loop; offload file I/O via "
                "loop.run_in_executor",
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr == "sleep"
        ):
            self._add(
                node,
                "BCL011",
                "time.sleep() blocks the event loop; use await asyncio.sleep",
            )
        elif func.attr in BLOCKING_IO_METHODS:
            self._add(
                node,
                "BCL011",
                f".{func.attr}() does synchronous file I/O in a coroutine; "
                "offload via loop.run_in_executor",
            )
        elif func.attr == "result" and not self._is_awaited(node):
            self._add(
                node,
                "BCL011",
                ".result() blocks the event loop waiting on a future; "
                "await the future (or run_in_executor) instead",
            )

    def _is_awaited(self, node: ast.Call) -> bool:
        return node in self._awaited_calls

    @staticmethod
    def _nondet_trace_arg(node: ast.Call) -> str:
        """BCL019: describe a nondeterministic mint source, or ``""``.

        Unlike BCL018's shallow check, the whole argument subtree is
        walked: ``f"gw/{time.time()}"`` hides the clock one level down.
        """
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if isinstance(func, ast.Attribute):
                    base = (
                        func.value.id
                        if isinstance(func.value, ast.Name)
                        else ""
                    )
                    if base in {"time", "random"}:
                        return f"{base}.{func.attr}()"
                    if func.attr in NONDET_TRACE_SOURCES:
                        return f"{func.attr}()"
                elif (
                    isinstance(func, ast.Name)
                    and func.id in NONDET_TRACE_SOURCES
                ):
                    return f"{func.id}()"
        return ""

    @staticmethod
    def _non_canonical_arg(node: ast.expr) -> str:
        """BCL018: describe a non-canonical serialisation, or ``""``.

        Only the argument expression itself is judged (not its
        subexpressions): a pre-computed string variable is the caller's
        responsibility, but ``f"..."`` / ``str(...)`` / ``repr(...)``
        written directly into the call is always representation drift.
        """
        if isinstance(node, ast.JoinedStr):
            return "an f-string"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"str", "repr"}
        ):
            return f"{node.func.id}(...)"
        return ""

    # -- attributes (BCL018: execute_job's side of the key contract) ---
    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Every job field the execution path consults must be part of
        # the canonical cache key; a field the key cannot see would let
        # two different results share one hash.
        if (
            "execute_job" in self._func_stack
            and isinstance(node.value, ast.Name)
            and node.value.id == "job"
            and isinstance(node.ctx, ast.Load)
            and not node.attr.startswith("_")
            and node.attr not in RESULT_CACHE_KEY_FIELDS
        ):
            self._add(
                node,
                "BCL018",
                f"execute_job reads job.{node.attr}, which is not in the "
                "canonical result-cache key; add it to HASHED_JOB_FIELDS "
                "(and the linter's RESULT_CACHE_KEY_FIELDS) or the cache "
                "will serve stale results",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_math_call(node: ast.expr, names: set[str] | None) -> bool:
        """Is ``node`` a call ``math.<fn>(...)`` (optionally restricted)?"""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "math"
            and (names is None or func.attr in names)
        )

    # -- module-wide wrap-up -------------------------------------------
    def finish(self) -> None:
        """Emit violations that need the whole module seen first.

        BCL016's shared-memory half is an ownership pairing: a module
        that creates named segments must also be the place that closes
        and unlinks them (the registry pattern); a module that only
        attaches must still close its handles.  Individual calls can't
        be judged until every call site has been visited.
        """
        for node, created in self._shm_calls:
            if created and not (self._saw_close and self._saw_unlink):
                self._add(
                    node,
                    "BCL016",
                    "SharedMemory(create=True) without a paired "
                    "close()/unlink() owner in this module; segments must "
                    "be tracked and unlinked (registry pattern)",
                )
            elif not created and not self._saw_close:
                self._add(
                    node,
                    "BCL016",
                    "SharedMemory attached without a close() in this "
                    "module; attachers must close their handle (only the "
                    "owner unlinks)",
                )


def _noqa_codes(source: str) -> dict[int, set[str] | None]:
    """Map line number -> suppressed codes (None = suppress all)."""
    suppressed: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressed[lineno] = None
        else:
            suppressed[lineno] = {c.strip().upper() for c in codes.split(",")}
    return suppressed


def _flow_violations(
    tree: ast.Module, path: str, segments: tuple[str, ...]
) -> list[Violation]:
    """BCL013–BCL015 via the abstract-interpretation engine."""
    from .rules_flow import (
        check_address_math,
        check_determinism,
        check_fork_safety,
    )

    violations: list[Violation] = []
    for checker in (check_determinism, check_fork_safety, check_address_math):
        for line, code, message in checker(tree, segments):
            violations.append(Violation(path, line, code, message))
    return violations


def lint_source(
    source: str, path: str = "<string>", flow: bool = True
) -> list[Violation]:
    """Lint one module's source text; ``path`` drives path-scoped rules.

    ``flow=False`` restricts the pass to the syntactic rules (an order
    of magnitude faster; used by callers that only need BCL001–BCL012).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "BCL000", f"syntax error: {exc.msg}")]
    segments = _module_segments(path)
    linter = _Linter(path, segments)
    linter.visit(tree)
    linter.finish()
    violations = linter.violations
    if flow:
        violations = violations + _flow_violations(tree, path, segments)
    suppressed = _noqa_codes(source)
    kept = []
    for violation in violations:
        codes = suppressed.get(violation.line, set())
        if codes is None or (codes and violation.code in codes):
            continue
        kept.append(violation)
    return sorted(kept, key=lambda v: (v.path, v.line, v.code))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(
                p
                for p in entry.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            yield entry


# ----------------------------------------------------------------------
# Result cache + parallel execution
# ----------------------------------------------------------------------
#: Default location of the content-hash result cache.
CACHE_DIR_NAME = ".bcache-lint-cache"

_fingerprint: Optional[str] = None


def engine_fingerprint() -> str:
    """Hash of the analysis engine's own sources.

    Part of every cache key, so editing any rule (or the engine under
    it) invalidates all cached results at once.
    """
    global _fingerprint
    if _fingerprint is None:
        digest = hashlib.sha256()
        here = Path(__file__).parent
        for name in ("lint.py", "domains.py", "flow.py", "rules_flow.py"):
            module = here / name
            if module.exists():
                digest.update(module.read_bytes())
        _fingerprint = digest.hexdigest()
    return _fingerprint


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _cache_key(path: str, source: str) -> str:
    digest = hashlib.sha256()
    digest.update(engine_fingerprint().encode())
    digest.update(path.encode())
    digest.update(b"\0")
    digest.update(source.encode())
    return digest.hexdigest()


def _cache_load(cache_dir: Path, key: str) -> Optional[list[Violation]]:
    entry = cache_dir / f"{key}.json"
    try:
        rows = json.loads(entry.read_text(encoding="utf-8"))
        return [Violation(r[0], r[1], r[2], r[3]) for r in rows]
    except (OSError, ValueError, IndexError, TypeError):
        return None


def _cache_store(
    cache_dir: Path, key: str, violations: list[Violation]
) -> None:
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        rows = [[v.path, v.line, v.code, v.message] for v in violations]
        tmp = cache_dir / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(rows), encoding="utf-8")
        tmp.replace(cache_dir / f"{key}.json")
    except OSError:  # cache is best-effort; never fail the lint
        pass


def lint_file(
    path: str | Path, cache_dir: str | Path | None = None
) -> list[Violation]:
    """Lint one file, consulting the content-hash cache if given."""
    path = str(path)
    source = Path(path).read_text(encoding="utf-8")
    if cache_dir is None:
        return lint_source(source, path)
    cache = Path(cache_dir)
    key = _cache_key(path, source)
    cached = _cache_load(cache, key)
    if cached is not None:
        return cached
    violations = lint_source(source, path)
    _cache_store(cache, key, violations)
    return violations


def _lint_file_job(job: tuple[str, str | None]) -> list[Violation]:
    """Process-pool entry point (must be module-level picklable)."""
    path, cache_dir = job
    return lint_file(path, cache_dir)


def lint_paths(
    paths: Iterable[str | Path],
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> list[Violation]:
    """Lint every python file under ``paths``; returns all violations.

    ``jobs > 1`` fans files out across a process pool;
    ``cache_dir`` enables the content-hash result cache.
    """
    files = [str(f) for f in iter_python_files(paths)]
    cache = str(cache_dir) if cache_dir is not None else None
    violations: list[Violation] = []
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(files))) as pool:
            for result in pool.map(
                _lint_file_job, [(f, cache) for f in files]
            ):
                violations.extend(result)
    else:
        for file in files:
            violations.extend(lint_file(file, cache))
    return violations


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
def render_json(violations: list[Violation]) -> str:
    rows = [
        {
            "path": v.path,
            "line": v.line,
            "code": v.code,
            "message": v.message,
        }
        for v in violations
    ]
    return json.dumps(rows, indent=2)


def render_sarif(violations: list[Violation]) -> str:
    """SARIF 2.1.0, as consumed by GitHub code scanning."""
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
        }
        for code, summary in sorted(RULES.items())
    ]
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path.replace(os.sep, "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(v.line, 1)},
                    }
                }
            ],
        }
        for v in violations
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "bcache-lint",
                        "informationUri": "https://example.invalid/bcache-lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-lint``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="bcache-lint",
        description="Simulator-specific lint pass for the B-Cache reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="lint N files in parallel (default: all available CPUs)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"disable the {CACHE_DIR_NAME}/ result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=CACHE_DIR_NAME,
        help=f"result-cache directory (default: {CACHE_DIR_NAME})",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"bcache-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    jobs = args.jobs if args.jobs > 0 else available_cpus()
    cache_dir = None if args.no_cache else args.cache_dir
    violations = lint_paths(args.paths, jobs=jobs, cache_dir=cache_dir)
    violations.sort(key=lambda v: (v.path, v.line, v.code))
    checked = sum(1 for _ in iter_python_files(args.paths))
    if args.format == "json":
        print(render_json(violations))
    elif args.format == "sarif":
        print(render_sarif(violations))
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            print(
                f"bcache-lint: {len(violations)} violation(s) in "
                f"{checked} file(s)"
            )
        else:
            print(f"bcache-lint: OK ({checked} files clean)")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
