"""Tiny, obviously-correct reference models for differential checking.

The production caches are optimised (flat arrays, reverse maps,
precomputed masks); these references are written for auditability
instead — a direct-mapped cache is one dict, an N-way LRU cache is one
:class:`~collections.OrderedDict` per set.  The sanitizer's
differential mode replays the same access stream through both and
requires bit-identical hit/miss outcomes (miss *rates* agreeing is not
enough: two models can disagree per-access yet land on similar rates).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.caches.base import Cache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.set_associative import SetAssociativeCache


class ReferenceSetAssociativeLRU:
    """N-way set-associative LRU cache in ~20 lines (ways=1 ⇒ DM).

    Hit/miss behaviour of an LRU cache depends only on the recency
    order of the blocks in each set, never on which physical way holds
    them, so this model is stream-equivalent to any correct LRU
    implementation of the same geometry.
    """

    def __init__(self, num_sets: int, ways: int, offset_bits: int) -> None:
        if num_sets < 1 or ways < 1 or offset_bits < 0:
            raise ValueError("num_sets/ways must be >= 1, offset_bits >= 0")
        self.num_sets = num_sets
        self.ways = ways
        self.offset_bits = offset_bits
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def access(self, address: int) -> bool:
        """Reference ``address``; allocate on miss; return hit/miss."""
        block = address >> self.offset_bits
        resident = self._sets[block % self.num_sets]
        if block in resident:
            resident.move_to_end(block)
            return True
        if len(resident) >= self.ways:
            resident.popitem(last=False)
        resident[block] = None
        return False

    def flush(self) -> None:
        for resident in self._sets:
            resident.clear()


def reference_for(cache: Cache) -> ReferenceSetAssociativeLRU | None:
    """Build a reference model for ``cache``, or None if unsupported.

    Exact-type matches only: subclasses (way prediction, victim
    buffers, alternative write policies, ...) intentionally deviate
    from the plain hit/miss stream and must not be cross-checked.
    """
    if type(cache) is DirectMappedCache:
        return ReferenceSetAssociativeLRU(cache.num_sets, 1, cache.offset_bits)
    if type(cache) is SetAssociativeCache and cache.policy_name == "lru":
        return ReferenceSetAssociativeLRU(
            cache.num_sets, cache.ways, cache.offset_bits
        )
    if type(cache) is FullyAssociativeCache and cache.policy_name == "lru":
        return ReferenceSetAssociativeLRU(1, cache.ways, cache.offset_bits)
    return None
