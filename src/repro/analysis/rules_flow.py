"""Flow-engine rule families: BCL013–BCL015 and the BCL009 retrofit.

Four consumers of :mod:`repro.analysis.flow`:

* :func:`prove_address_math` — the BCL015 *proof* driver.  Given a live
  cache it abstract-interprets ``_access_block``/``_probe_block`` over
  (interval, bit-width) domains seeded from the concrete geometry, and
  for B-Caches additionally checks field-disjointness of the
  ``decompose_block`` split (row/PI/tag occupy disjoint bit ranges, so
  ``compose_block`` is injective — "tags never alias") plus the
  programmable-decoder bank's own subscripts.
* :func:`check_determinism` — BCL013: taint from unordered iteration,
  wall-clock, process identity and unseeded randomness must not reach
  result-bearing sinks (CacheStats fields, journal records,
  ``merge_deltas``, serve response payloads).
* :func:`check_fork_safety` — BCL014: process-boundary entry points
  must not mutate module-level state, ship unpicklables across the
  fork, or (in ``repro.serve``) drop ``create_task`` references.
* :func:`batch_allocation_lines` — BCL009 on real reaching control
  flow: an ``AccessResult`` allocation is hot iff its basic block lies
  on a CFG cycle (or inside a comprehension), not merely under a
  lexical ``for``.

All checkers return plain ``(line, message)`` tuples; the linter wraps
them into :class:`repro.analysis.lint.Violation`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Optional

from .domains import (
    BOTTOM,
    NO_TAINT,
    TAINT_ADDR,
    TAINT_PID,
    TAINT_RANDOM,
    TAINT_UNORDERED,
    TAINT_UNPICKLABLE,
    TAINT_WALLCLOCK,
    TOP,
    Interval,
    ObjInfo,
    Val,
    seed_value,
)
from .flow import (
    AstResolver,
    FnCtx,
    Interp,
    LiveResolver,
    Obligation,
    build_cfg,
    cycle_blocks,
)

__all__ = [
    "CONTRACTS",
    "ProofReport",
    "prove_address_math",
    "check_determinism",
    "check_fork_safety",
    "check_address_math",
    "batch_allocation_lines",
]


# ----------------------------------------------------------------------
# Assume-guarantee contracts
# ----------------------------------------------------------------------
def _obj_int(obj: ObjInfo, name: str) -> Optional[int]:
    """An exact integer attribute of a (concrete or symbolic) object."""
    if obj.concrete is not None:
        value = getattr(obj.concrete, name, None)
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    sym = obj.attr(name)
    if sym is not None and sym.num is not None and sym.num.is_exact:
        return sym.num.value
    return None


def _contract_victim(interp: Interp, obj: ObjInfo, args: list[Val]) -> Val:
    ways = _obj_int(obj, "ways")
    interp.assumptions.add(
        f"{obj.cls_name}.victim() returns a way in [0, ways-1]"
    )
    return Val.of_int(0, None if ways is None else ways - 1)


def _contract_victim_among(interp: Interp, obj: ObjInfo, args: list[Val]) -> Val:
    interp.assumptions.add(
        f"{obj.cls_name}.victim_among(c) returns an element of c"
    )
    if args:
        elem = interp.iter_element(args[0])
        if elem.num is not None:
            return Val(num=elem.num, taint=elem.taint)
    ways = _obj_int(obj, "ways")
    return Val.of_int(0, None if ways is None else ways - 1)


def _contract_none(interp: Interp, obj: ObjInfo, args: list[Val]) -> Val:
    return Val.none()


def _decoder_cluster_interval(obj: ObjInfo) -> Interval:
    clusters = _obj_int(obj, "num_clusters")
    return Interval(0, None if clusters is None else clusters - 1)


def _contract_search(interp: Interp, obj: ObjInfo, args: list[Val]) -> Val:
    interp.assumptions.add(
        "ProgrammableDecoderBank.search(row, value) hits with a cluster "
        "in [0, num_clusters-1] or misses with cluster None"
    )
    cluster = Val(num=_decoder_cluster_interval(obj), maybe_none=True)
    return Val.of_obj(
        "PDMatch", attrs=(("hit", Val.of_bool()), ("cluster", cluster))
    )


def _contract_value_at(interp: Interp, obj: ObjInfo, args: list[Val]) -> Val:
    interp.assumptions.add(
        "ProgrammableDecoderBank.value_at(row, cluster) returns a PI value "
        "in [0, 2^pi_bits-1] or None when the entry is invalid"
    )
    pi_bits = _obj_int(obj, "pi_bits")
    hi = None if pi_bits is None else (1 << pi_bits) - 1
    return Val(num=Interval(0, hi), maybe_none=True)


def _contract_invalid_clusters(interp: Interp, obj: ObjInfo, args: list[Val]) -> Val:
    interp.assumptions.add(
        "ProgrammableDecoderBank.invalid_clusters(row) returns cluster "
        "numbers in [0, num_clusters-1]"
    )
    clusters = _obj_int(obj, "num_clusters")
    return Val.of_seq(
        Val(num=_decoder_cluster_interval(obj)),
        Interval(0, clusters),
    )


#: (class-in-MRO, method) -> summary function.  Checked before inlining.
CONTRACTS = {
    ("ReplacementPolicy", "victim"): _contract_victim,
    ("ReplacementPolicy", "victim_among"): _contract_victim_among,
    ("ReplacementPolicy", "touch"): _contract_none,
    ("ReplacementPolicy", "invalidate"): _contract_none,
    ("ReplacementPolicy", "reset"): _contract_none,
    ("ProgrammableDecoderBank", "search"): _contract_search,
    ("ProgrammableDecoderBank", "value_at"): _contract_value_at,
    ("ProgrammableDecoderBank", "invalid_clusters"): _contract_invalid_clusters,
    ("ProgrammableDecoderBank", "program"): _contract_none,
    ("ProgrammableDecoderBank", "invalidate"): _contract_none,
    ("ProgrammableDecoderBank", "reset"): _contract_none,
}


# ----------------------------------------------------------------------
# BCL015 proof mode
# ----------------------------------------------------------------------
@dataclass
class ProofReport:
    """Outcome of :func:`prove_address_math` for one cache instance."""

    cache_name: str
    obligations: list[Obligation] = field(default_factory=list)
    geometry_checks: list[tuple[str, bool]] = field(default_factory=list)
    assumptions: list[str] = field(default_factory=list)

    @property
    def proven(self) -> bool:
        return all(o.proved for o in self.obligations) and all(
            ok for _, ok in self.geometry_checks
        )

    @property
    def failures(self) -> list[str]:
        out = [o.render() for o in self.obligations if not o.proved]
        out.extend(desc for desc, ok in self.geometry_checks if not ok)
        return out

    def render(self) -> str:
        status = "PROVEN" if self.proven else "UNPROVEN"
        lines = [
            f"{self.cache_name}: {status} "
            f"({len(self.obligations)} obligations, "
            f"{len(self.geometry_checks)} geometry checks)"
        ]
        lines.extend("  " + o.render() for o in self.obligations)
        for desc, ok in self.geometry_checks:
            lines.append(f"  {'proved' if ok else 'UNPROVED'} {desc}")
        for assumption in self.assumptions:
            lines.append(f"  assuming {assumption}")
        return "\n".join(lines)


_PROOF_METHODS = ("_access_block", "_probe_block")


def prove_address_math(cache: Any, address_bits: int = 32) -> ProofReport:
    """Statically prove the address math of one live cache instance.

    Every sequence subscript reachable from ``_access_block`` /
    ``_probe_block`` (through method inlining, replacement-policy and
    decoder contracts) becomes a bounds obligation; for B-Caches the
    geometry split and the decoder bank's own tables are checked too.
    ``_batch_trace`` kernels are intentionally out of scope — they are
    covered bit-for-bit by the runtime equivalence suite.
    """
    report = ProofReport(cache_name=type(cache).__name__)
    resolver = LiveResolver()
    interp = Interp(resolver, contracts=CONTRACTS)
    obj = ObjInfo(type(cache).__name__, concrete=cache, path="self")
    block_hi = (1 << max(address_bits - cache.offset_bits, 1)) - 1
    for method in _PROOF_METHODS:
        resolved = resolver.resolve_method(obj, method)
        if resolved is None:
            continue
        fn_node, ctx = resolved
        bound = {
            "self": seed_value(cache, path="self"),
            "block": Val.of_int(0, block_hi, taint=frozenset((TAINT_ADDR,))),
            "is_write": Val.of_bool(),
        }
        interp.analyze(fn_node, ctx, bound)
        report.obligations.extend(interp.obligations)
    report.assumptions = sorted(interp.assumptions)

    geometry = getattr(cache, "geometry", None)
    if geometry is not None:
        _check_geometry(report, resolver, geometry, address_bits)
    decoder = getattr(cache, "decoder", None)
    if decoder is not None:
        _check_decoder(report, resolver, decoder)
    return report


def _check_geometry(
    report: ProofReport, resolver: LiveResolver, geometry: Any, address_bits: int
) -> None:
    """Interpret ``decompose_block`` and check field-disjointness.

    If row < 2^NPI, pi < 2^PI and tag <= 2^stored_tag_bits - 1 then the
    three fields occupy disjoint bit ranges of ``compose_block``'s
    or-composition, so the mapping is injective and two distinct block
    addresses can never collide on (row, pi, tag): tags never alias.
    """
    obj = ObjInfo(type(geometry).__name__, concrete=geometry, path="self")
    resolved = resolver.resolve_method(obj, "decompose_block")
    if resolved is None:
        report.geometry_checks.append(("decompose_block resolvable", False))
        return
    fn_node, ctx = resolved
    interp = Interp(resolver, contracts=CONTRACTS)
    block_hi = (1 << max(address_bits - geometry.offset_bits, 1)) - 1
    result = interp.analyze(
        fn_node,
        ctx,
        {
            "self": seed_value(geometry, path="self"),
            "block": Val.of_int(0, block_hi, taint=frozenset((TAINT_ADDR,))),
        },
    )
    report.obligations.extend(interp.obligations)
    parts = result.tup
    if parts is None or len(parts) != 3:
        report.geometry_checks.append(
            ("decompose_block returns a (row, pi, tag) triple", False)
        )
        return
    row, pi, tag = parts
    checks = [
        (
            f"row in [0, 2^NPI-1] = [0, {geometry.num_rows - 1}]",
            row.num is not None
            and row.num.ge(0)
            and row.num.le(geometry.num_rows - 1),
        ),
        (
            f"pi in [0, 2^PI-1] = [0, {(1 << geometry.pi_bits) - 1}]",
            pi.num is not None
            and pi.num.ge(0)
            and pi.num.le((1 << geometry.pi_bits) - 1),
        ),
        (
            "stored tag in [0, 2^stored_tag_bits-1] "
            f"= [0, {(1 << geometry.stored_tag_bits) - 1}]",
            tag.num is not None
            and tag.num.ge(0)
            and tag.num.le((1 << geometry.stored_tag_bits) - 1),
        ),
    ]
    report.geometry_checks.extend(checks)
    if all(ok for _, ok in checks):
        report.geometry_checks.append(
            (
                "compose_block is injective on (row, pi, tag) — "
                "fields are bit-disjoint, tags never alias",
                True,
            )
        )


def _check_decoder(report: ProofReport, resolver: LiveResolver, decoder: Any) -> None:
    """Prove the decoder bank's own table subscripts in isolation."""
    obj = ObjInfo(type(decoder).__name__, concrete=decoder, path="self")
    rows = Interval(0, decoder.num_rows - 1)
    clusters = Interval(0, decoder.num_clusters - 1)
    values = Interval(0, (1 << decoder.pi_bits) - 1)
    cases = {
        "search": {"row": Val(num=rows), "value": Val(num=values)},
        "value_at": {"row": Val(num=rows), "cluster": Val(num=clusters)},
        "invalid_clusters": {"row": Val(num=rows)},
        "program": {
            "row": Val(num=rows),
            "cluster": Val(num=clusters),
            "value": Val(num=values),
        },
    }
    for method, params in cases.items():
        resolved = resolver.resolve_method(obj, method)
        if resolved is None:
            continue
        fn_node, ctx = resolved
        interp = Interp(resolver, contracts={})
        bound = {"self": seed_value(decoder, path="self")}
        bound.update(params)
        interp.analyze(fn_node, ctx, bound)
        report.obligations.extend(interp.obligations)


# ----------------------------------------------------------------------
# BCL013: determinism audit
# ----------------------------------------------------------------------
#: Result-bearing CacheStats fields (sinks when the receiver is stats).
CACHESTATS_FIELDS = frozenset(
    (
        "num_sets",
        "accesses",
        "hits",
        "misses",
        "reads",
        "writes",
        "evictions",
        "writebacks",
        "pd_hit_misses",
        "pd_miss_misses",
        "set_accesses",
        "set_hits",
        "set_misses",
    )
)

#: Timing metadata is a legitimate wall-clock consumer: a journal may
#: record durations without breaking bit-identity of *results*.
TIMING_FIELD_RE = re.compile(
    r"(duration|elapsed|latency|uptime|time|wall|started|finished)", re.IGNORECASE
)

_NONDET_LABELS = frozenset(
    (TAINT_WALLCLOCK, TAINT_PID, TAINT_RANDOM, TAINT_UNORDERED)
)

_WALLCLOCK_CALLS = frozenset(
    (
        "time.time",
        "time.monotonic",
        "time.perf_counter",
        "time.process_time",
        "time.time_ns",
        "time.monotonic_ns",
        "time.perf_counter_ns",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    )
)

_PID_CALLS = frozenset(("os.getpid", "os.getppid", "threading.get_ident"))

_RANDOM_CALLS = frozenset(
    (
        "random.random",
        "random.randrange",
        "random.randint",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.getrandbits",
        "random.randbytes",
        "uuid.uuid4",
        "uuid.uuid1",
        "secrets.token_hex",
        "secrets.token_bytes",
        "secrets.randbelow",
    )
)

_UNORDERED_CALL_SUFFIXES = (
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
    ".iterdir",
    ".rglob",
)

#: Serve response payload keys whose values must be deterministic.
_PAYLOAD_KEYS = frozenset(("stats", "results", "result"))

#: Constructors whose results must never cross a fork/pickle boundary.
_UNPICKLABLE_CALLS = (
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
    "asyncio.get_event_loop",
    "asyncio.get_running_loop",
    "asyncio.new_event_loop",
    "socket.socket",
)

_MUTATOR_METHODS = frozenset(
    (
        "append",
        "add",
        "insert",
        "extend",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "move_to_end",
    )
)

#: Known process-boundary entry point names (see engine/serve layers).
_ENTRY_POINT_NAMES = frozenset(
    ("execute_job", "_shard_entry", "_worker_entry", "_init_worker")
)


class _FlowLintHooks:
    """Shared hook object feeding BCL013 + BCL014(b) during one run."""

    def __init__(self, segments: tuple[str, ...]) -> None:
        self.segments = segments
        self.in_serve = bool(segments) and segments[0] == "serve"
        self.findings: list[tuple[int, str, str]] = []

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append((getattr(node, "lineno", 1), code, message))

    # -- taint sources -------------------------------------------------
    def call_result(
        self, interp: Interp, node: ast.Call, dotted: str, args: list[Val]
    ) -> Optional[Val]:
        if dotted in _WALLCLOCK_CALLS:
            return Val(
                num=Interval.nonneg(),
                other=True,
                taint=frozenset((TAINT_WALLCLOCK,)),
            )
        if dotted in _PID_CALLS:
            return Val(num=Interval.nonneg(), taint=frozenset((TAINT_PID,)))
        if dotted in _RANDOM_CALLS:
            return Val.top(frozenset((TAINT_RANDOM,)))
        for suffix in _UNORDERED_CALL_SUFFIXES:
            if dotted == suffix or dotted.endswith(suffix):
                return Val.of_seq(
                    Val(other=True), Interval.nonneg(), unordered=True
                )
        if dotted == "open" or dotted in _UNPICKLABLE_CALLS:
            return Val.of_obj(
                "unpicklable", taint=frozenset((TAINT_UNPICKLABLE,))
            )
        return None

    # -- sinks ---------------------------------------------------------
    @staticmethod
    def _labels(value: Val) -> frozenset:
        return value.taint & _NONDET_LABELS

    @staticmethod
    def _describe(labels: frozenset) -> str:
        return "/".join(sorted(labels))

    def on_store(
        self,
        interp: Interp,
        ctx: FnCtx,
        target_text: str,
        value: Val,
        node: ast.AST,
    ) -> None:
        labels = self._labels(value)
        if not labels:
            return
        base, _, attr = target_text.rpartition(".")
        if "[" in attr:
            attr = attr.split("[", 1)[0]
        if attr in CACHESTATS_FIELDS and base.endswith("stats"):
            if TIMING_FIELD_RE.search(attr):
                labels = labels - {TAINT_WALLCLOCK}
            if labels:
                self._flag(
                    node,
                    "BCL013",
                    f"nondeterministic value ({self._describe(labels)}) "
                    f"stored into result-bearing stats field {target_text!r}",
                )

    def on_call(
        self,
        interp: Interp,
        ctx: FnCtx,
        dotted: str,
        base_val: Optional[Val],
        args: list[Val],
        kwargs: dict[str, Val],
        node: ast.AST,
    ) -> None:
        receiver, _, method = dotted.rpartition(".")
        if method == "record" and (
            "journal" in receiver or receiver.endswith("stats")
        ):
            self._check_record_args(dotted, args, kwargs, node)
        elif method == "merge_deltas" or dotted == "merge_deltas":
            self._check_record_args(dotted, args, kwargs, node)
        elif method == "Process" or dotted == "Process":
            self._check_fork_args(dotted, args, kwargs, node)
        elif method in ("submit", "apply_async"):
            self._check_fork_args(dotted, args[1:], kwargs, node)

    def _check_record_args(
        self,
        dotted: str,
        args: list[Val],
        kwargs: dict[str, Val],
        node: ast.AST,
    ) -> None:
        for value in args:
            labels = self._labels(value)
            if labels:
                self._flag(
                    node,
                    "BCL013",
                    f"nondeterministic value ({self._describe(labels)}) "
                    f"flows into result sink {dotted}()",
                )
                return
        for key, value in kwargs.items():
            labels = self._labels(value)
            if labels and TIMING_FIELD_RE.search(key):
                labels = labels - {TAINT_WALLCLOCK}
            if labels:
                self._flag(
                    node,
                    "BCL013",
                    f"nondeterministic value ({self._describe(labels)}) "
                    f"flows into result sink {dotted}({key}=...)",
                )
                return

    def _check_fork_args(
        self,
        dotted: str,
        args: list[Val],
        kwargs: dict[str, Val],
        node: ast.AST,
    ) -> None:
        candidates = list(args)
        payload = kwargs.get("args")
        if payload is not None:
            candidates.append(payload)
            if payload.tup is not None:
                candidates.extend(payload.tup)
            if payload.seq is not None:
                candidates.append(payload.seq.elem)
        for value in candidates:
            if TAINT_UNPICKLABLE in value.taint:
                self._flag(
                    node,
                    "BCL014",
                    "unpicklable object (lock/file handle/event loop) "
                    f"crosses the process boundary at {dotted}()",
                )
                return

    def on_dict_item(
        self, interp: Interp, ctx: FnCtx, key: Any, value: Val, node: ast.AST
    ) -> None:
        if not self.in_serve or not isinstance(key, str):
            return
        if key not in _PAYLOAD_KEYS:
            return
        labels = self._labels(value)
        if labels:
            self._flag(
                node,
                "BCL013",
                f"nondeterministic value ({self._describe(labels)}) "
                f"placed into serve response payload key {key!r}",
            )


def _iter_functions(tree: ast.Module):
    """Yield (classdef_or_None, function_node) for every def in a module."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node, sub


def _function_bound(cls_name: Optional[str], fn_node: ast.AST) -> dict:
    bound: dict[str, Val] = {}
    args = fn_node.args
    params = [p.arg for p in args.posonlyargs + args.args + args.kwonlyargs]
    for position, name in enumerate(params):
        if position == 0 and cls_name is not None and name in ("self", "cls"):
            bound[name] = Val.of_obj(cls_name, path="self")
        else:
            bound[name] = TOP
    if args.vararg is not None:
        bound[args.vararg.arg] = Val.of_seq(TOP, Interval.nonneg())
    if args.kwarg is not None:
        bound[args.kwarg.arg] = TOP
    return bound


def check_determinism(
    tree: ast.Module, segments: tuple[str, ...]
) -> list[tuple[int, str, str]]:
    """BCL013 + BCL014(b): run the taint interpreter over every function.

    Methods of one class share an :class:`Interp` (and therefore the
    ``self.*`` summaries), analysed in two sweeps so stores in later
    methods reach loads in earlier ones.  Findings are collected only
    on the second sweep, then deduplicated.
    """
    hooks = _FlowLintHooks(segments)
    resolver = AstResolver(tree, inline=False)
    by_class: dict[Optional[ast.ClassDef], list] = {}
    for cls_node, fn_node in _iter_functions(tree):
        by_class.setdefault(cls_node, []).append(fn_node)
    for cls_node, functions in by_class.items():
        cls_name = cls_node.name if cls_node is not None else None
        interp = Interp(resolver, hooks=hooks, contracts=CONTRACTS)
        for sweep in range(2):
            if sweep == 0:
                saved, hooks.findings = hooks.findings, []
            for fn_node in functions:
                ctx = FnCtx(
                    module=resolver,
                    instance_cls=cls_node,
                    defining_cls=cls_node,
                    name=(f"{cls_name}." if cls_name else "") + fn_node.name,
                )
                interp.analyze(fn_node, ctx, _function_bound(cls_name, fn_node))
            if sweep == 0:
                hooks.findings = saved
    seen: set[tuple[int, str, str]] = set()
    unique = []
    for finding in hooks.findings:
        if finding not in seen:
            seen.add(finding)
            unique.append(finding)
    return unique


# ----------------------------------------------------------------------
# BCL014: fork-safety (module-state reachability + task leaks)
# ----------------------------------------------------------------------
_MUTABLE_DISPLAY = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CTORS = frozenset(
    ("list", "dict", "set", "OrderedDict", "defaultdict", "deque", "Counter")
)


def _module_mutables(tree: ast.Module) -> dict[str, int]:
    """Module-level names bound to mutable containers → def line."""
    mutables: dict[str, int] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(value, _MUTABLE_DISPLAY) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CTORS
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables[target.id] = node.lineno
    return mutables


def _entry_points(tree: ast.Module) -> dict[str, str]:
    """Function name → reason it is a process-boundary entry point."""
    entries: dict[str, str] = {}
    for _, fn_node in _iter_functions(tree):
        if fn_node.name in _ENTRY_POINT_NAMES:
            entries[fn_node.name] = "worker entry point"
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if callee == "Process":
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    entries.setdefault(kw.value.id, "Process target")
        elif callee in ("submit", "apply_async") and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name):
                entries.setdefault(first.id, f"{callee}() callable")
    return entries


def _local_names(fn_node: ast.AST) -> set[str]:
    """Names bound inside a function (params + assignments), minus globals."""
    bound: set[str] = set()
    args = fn_node.args
    for p in args.posonlyargs + args.args + args.kwonlyargs:
        bound.add(p.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
    return bound - declared_global


def _root_name(node: ast.expr) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mutations_of(
    fn_node: ast.AST, globals_: dict[str, int]
) -> list[tuple[int, str]]:
    """(line, name) for each mutation of a module-level container."""
    shadowed = _local_names(fn_node)
    visible = {name for name in globals_ if name not in shadowed}
    declared_global = {
        name
        for node in ast.walk(fn_node)
        if isinstance(node, ast.Global)
        for name in node.names
    }
    visible |= declared_global & set(globals_)
    if not visible:
        return []
    hits: list[tuple[int, str]] = []
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _root_name(target)
                    if root in visible:
                        hits.append((node.lineno, root))
                elif (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                    and target.id in globals_
                ):
                    hits.append((node.lineno, target.id))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
            ):
                root = _root_name(func.value)
                if root in visible:
                    hits.append((node.lineno, root))
    return hits


def check_fork_safety(
    tree: ast.Module, segments: tuple[str, ...]
) -> list[tuple[int, str, str]]:
    """BCL014(a)+(c): module-state mutations reachable from a worker
    entry point, and (serve only) dropped ``create_task`` references.

    The unpicklable-capture half, (b), rides on the taint interpreter
    inside :func:`check_determinism`.
    """
    findings: list[tuple[int, str, str]] = []
    mutables = _module_mutables(tree)
    entries = _entry_points(tree)
    if mutables and entries:
        functions = {fn.name: fn for _, fn in _iter_functions(tree)}
        for entry_name, reason in entries.items():
            entry_fn = functions.get(entry_name)
            if entry_fn is None:
                continue
            # Entry function plus same-module callees, two levels deep.
            reachable = [entry_fn]
            frontier = [entry_fn]
            for _ in range(2):
                next_frontier = []
                for fn in frontier:
                    for node in ast.walk(fn):
                        if (
                            isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Name)
                            and node.func.id in functions
                        ):
                            callee = functions[node.func.id]
                            if callee not in reachable:
                                reachable.append(callee)
                                next_frontier.append(callee)
                frontier = next_frontier
            for fn in reachable:
                for line, name in _mutations_of(fn, mutables):
                    findings.append(
                        (
                            line,
                            "BCL014",
                            f"module-level mutable {name!r} is mutated on a "
                            f"path reachable from process {reason} "
                            f"{entry_name!r}; state diverges across workers",
                        )
                    )
    if segments and segments[0] == "serve":
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in ("create_task", "ensure_future")
            ):
                findings.append(
                    (
                        node.lineno,
                        "BCL014",
                        f"fire-and-forget {node.value.func.attr}(): the task "
                        "reference is dropped, so exceptions vanish and the "
                        "task may be garbage-collected mid-flight",
                    )
                )
    seen: set[tuple[int, str, str]] = set()
    return [f for f in findings if not (f in seen or seen.add(f))]


# ----------------------------------------------------------------------
# BCL015 (lint mode): interval proof over a module's AST
# ----------------------------------------------------------------------
#: Synthetic constructor arguments used when an __init__ parameter has
#: no default: a plausible mid-size geometry.
_SYNTH_PARAMS = {
    "size": 16384,
    "line_size": 32,
    "ways": 2,
    "associativity": 2,
    "victim_entries": 4,
    "num_colors": 4,
    "mf": 8,
    "bas": 8,
}

_ADDRESS_BITS = 26

_PROOF_METHOD_NAMES = ("_access_block", "_probe_block")


def _init_bound(cls_node: ast.ClassDef, init_node: ast.AST, self_val: Val) -> dict:
    bound: dict[str, Val] = {}
    args = init_node.args
    params = args.posonlyargs + args.args
    defaults = list(args.defaults)
    # Right-align defaults against the positional parameter list.
    default_by_name: dict[str, ast.expr] = {}
    for param, default in zip(params[len(params) - len(defaults):], defaults):
        default_by_name[param.arg] = default
    for kw_param, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None:
            default_by_name[kw_param.arg] = kw_default
    for position, param in enumerate(params + args.kwonlyargs):
        name = param.arg
        if position == 0:
            bound[name] = self_val
        elif name in _SYNTH_PARAMS:
            bound[name] = Val.exact(_SYNTH_PARAMS[name])
        elif name in default_by_name and isinstance(
            default_by_name[name], ast.Constant
        ):
            value = default_by_name[name].value
            if isinstance(value, bool):
                bound[name] = Val.of_bool()
            elif isinstance(value, int):
                bound[name] = Val.exact(value)
            elif value is None:
                bound[name] = Val.none()
            else:
                bound[name] = TOP
        else:
            bound[name] = TOP
    if args.vararg is not None:
        bound[args.vararg.arg] = Val.of_seq(TOP, Interval.nonneg())
    if args.kwarg is not None:
        bound[args.kwarg.arg] = TOP
    return bound


def check_address_math(
    tree: ast.Module, segments: tuple[str, ...]
) -> list[tuple[int, str, str]]:
    """BCL015 in lint mode: flag *provably possible* out-of-bounds
    indexing by address-derived values in ``_access_block``-family
    methods.

    Conservative by construction: a finding requires the index upper
    bound to be finite, the container length to be exact, and the two
    to overlap — anything the analysis cannot bound stays silent.
    """
    findings: list[tuple[int, str, str]] = []
    resolver = AstResolver(tree, inline=True)
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            sub.name: sub
            for sub in node.body
            if isinstance(sub, ast.FunctionDef)
        }
        if not any(name in methods for name in _PROOF_METHOD_NAMES):
            continue
        interp = Interp(resolver, contracts=CONTRACTS)
        self_val = Val.of_obj(node.name, path="self")
        init = resolver.resolve_method(self_val.obj, "__init__")
        if init is not None:
            init_node, init_ctx = init
            interp.analyze(
                init_node, init_ctx, _init_bound(node, init_node, self_val)
            )
        for method_name in _PROOF_METHOD_NAMES:
            fn_node = methods.get(method_name)
            if fn_node is None:
                continue
            ctx = FnCtx(
                module=resolver,
                instance_cls=node,
                defining_cls=node,
                name=f"{node.name}.{method_name}",
            )
            bound = {
                "self": self_val,
                "block": Val.of_int(
                    0, (1 << _ADDRESS_BITS) - 1, taint=frozenset((TAINT_ADDR,))
                ),
                "is_write": Val.of_bool(),
            }
            args = fn_node.args
            for param in args.posonlyargs + args.args + args.kwonlyargs:
                bound.setdefault(param.arg, TOP)
            interp.analyze(fn_node, ctx, bound)
        for ob in interp.obligations:
            if ob.proved:
                continue
            if TAINT_ADDR not in ob.taint:
                continue
            if ob.index.hi is None or not ob.length.is_exact:
                continue
            if ob.length.lo is not None and ob.index.hi >= ob.length.lo:
                findings.append(
                    (
                        ob.line,
                        "BCL015",
                        f"address-derived index {ob.target}[{ob.index}] can "
                        f"exceed container length {ob.length}; the index "
                        "mask is wider than the table",
                    )
                )
    seen: set[tuple[int, str, str]] = set()
    return [f for f in findings if not (f in seen or seen.add(f))]


# ----------------------------------------------------------------------
# BCL009 retrofit: allocation-in-loop via real control flow
# ----------------------------------------------------------------------
def batch_allocation_lines(
    fn_node: ast.AST, call_names: frozenset = frozenset(("AccessResult",))
) -> list[int]:
    """Lines in ``fn_node`` where a per-access object is allocated on a
    CFG cycle (or inside a comprehension) — i.e. genuinely per-element,
    not merely lexically beneath a ``for`` that returns on iteration 1.
    """
    from .flow import _IterBind, _BindTop, _IterInit  # cycle-free: same package

    blocks = build_cfg(fn_node)
    cyclic = cycle_blocks(blocks)

    def alloc_lines(sub: ast.AST):
        for inner in ast.walk(sub):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id in call_names
            ):
                yield inner.lineno

    lines: set[int] = set()
    for block in blocks:
        trees: list[ast.AST] = []
        for stmt in block.stmts:
            if isinstance(stmt, _IterInit):
                trees.append(stmt.iter_expr)
            elif isinstance(stmt, (_IterBind, _BindTop)):
                continue
            else:
                trees.append(stmt)
        if block.term and block.term[0] in ("cond", "for"):
            test = block.term[1]
            if isinstance(test, ast.AST):
                trees.append(test)
        if block.term and block.term[0] == "ret" and block.term[1] is not None:
            trees.append(block.term[1])
        for tree in trees:
            for sub in ast.walk(tree):
                if isinstance(
                    sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                ):
                    lines.update(alloc_lines(sub))
            if block.idx in cyclic:
                lines.update(alloc_lines(tree))
    return sorted(lines)
