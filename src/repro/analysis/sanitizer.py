"""Runtime sanitizer: shadow-checks any cache model during simulation.

The lint pass (:mod:`repro.analysis.lint`) checks what the *source*
promises; this module checks what the *simulation* actually does.  A
:class:`SanitizedCache` wraps any :class:`~repro.caches.base.Cache`
and, after every access, verifies:

* **Residency** — a hit only for a block previously filled; a miss
  never for a block still resident; never more resident blocks than
  the cache has frames.
* **Eviction accounting** — every reported eviction removes a block
  that was resident, the ``evicted_dirty`` flag matches the shadow
  dirty bit, and the :class:`~repro.stats.counters.CacheStats`
  counters agree with the observed access stream.
* **Dirty discipline** — structurally, a dirty bit is never set on an
  invalid line; no set holds duplicate (tag, set) residents.
* **B-Cache PD invariants** (Section 3.1 / Figure 1) — programmed
  indices are unique per CAM cluster row, each row holds at most
  ``2^PI`` live mappings, and the geometry satisfies
  ``PI = log2(MF) + log2(BAS)``, ``MF = 2^(PI+NPI) / 2^OI`` and
  ``BAS = 2^OI / 2^NPI``.
* **Differential mode** — for plain direct-mapped / set-associative
  LRU caches, the hit/miss stream must be bit-identical to the tiny
  reference model in :mod:`repro.analysis.reference`.

The wrapper never changes behaviour: it forwards accesses verbatim and
re-raises nothing on the happy path, so a sanitized run produces
bit-identical statistics to an unwrapped one.

``install_global_sanitizer()`` patches :meth:`Cache.access` itself so
an existing test suite exercises every cache it builds without
modification; the test suite enables it via the ``REPRO_SANITIZE``
environment variable (see ``tests/conftest.py``).  The global hook
runs in *lenient* mode: tests may legitimately mutate cache state
behind the wrapper's back (fault injection, direct stat resets), so
shadow mismatches resynchronise instead of failing, while structural
and accounting invariants stay enforced.
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable, Sequence

from repro.analysis.reference import ReferenceSetAssociativeLRU, reference_for
from repro.caches.base import AccessResult, Cache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.set_associative import SetAssociativeCache
from repro.core.bcache import BCache
from repro.core.config import BCacheGeometry
from repro.core.decoder import DecoderIntegrityError
from repro.stats.counters import CacheStats
from repro.trace.access import Access


class SanitizerError(AssertionError):
    """An invariant violation observed during a sanitized simulation."""


def check_bcache_geometry(geometry: BCacheGeometry) -> None:
    """Verify the Section 3.1 geometry equations hold for a design point.

    ``BCacheGeometry`` derives its fields from (size, MF, BAS), so these
    can only fail if the derivation itself regresses — which is exactly
    the kind of drift the sanitizer exists to catch.
    """
    oi = geometry.original_index_bits
    if 1 << geometry.mf_bits != geometry.mapping_factor:
        raise SanitizerError(
            f"log2(MF) mismatch: mf_bits={geometry.mf_bits} but "
            f"MF={geometry.mapping_factor}"
        )
    if 1 << geometry.bas_bits != geometry.associativity:
        raise SanitizerError(
            f"log2(BAS) mismatch: bas_bits={geometry.bas_bits} but "
            f"BAS={geometry.associativity}"
        )
    if geometry.pi_bits != geometry.mf_bits + geometry.bas_bits:
        raise SanitizerError(
            f"PI = log2(MF) + log2(BAS) violated: PI={geometry.pi_bits}, "
            f"log2(MF)={geometry.mf_bits}, log2(BAS)={geometry.bas_bits}"
        )
    if 1 << (geometry.pi_bits + geometry.npi_bits) != geometry.mapping_factor << oi:
        raise SanitizerError(
            f"MF = 2^(PI+NPI)/2^OI violated: PI={geometry.pi_bits} "
            f"NPI={geometry.npi_bits} OI={oi} MF={geometry.mapping_factor}"
        )
    if 1 << oi != geometry.associativity << geometry.npi_bits:
        raise SanitizerError(
            f"BAS = 2^OI/2^NPI violated: OI={oi} NPI={geometry.npi_bits} "
            f"BAS={geometry.associativity}"
        )
    if geometry.num_rows * geometry.num_clusters != geometry.num_sets:
        raise SanitizerError(
            f"rows x clusters != sets: {geometry.num_rows} x "
            f"{geometry.num_clusters} != {geometry.num_sets}"
        )


def strict_capable(cache: Cache) -> bool:
    """True when strict shadow-checking is sound for ``cache``.

    Strict mode assumes a resident block stays in its set and that every
    eviction/writeback is reported on the access that caused it.  That
    holds for the set-stable organisations below; relocating ones
    (victim buffers, column/group-associative, page colouring) move or
    drop blocks out of band and must be checked leniently.
    """
    return isinstance(
        cache,
        (DirectMappedCache, SetAssociativeCache, FullyAssociativeCache, BCache),
    )


class _StatsBaseline:
    """Snapshot of the aggregate counters at shadow-attach time."""

    __slots__ = ("accesses", "hits", "misses", "evictions", "writebacks", "pd")

    def __init__(self, stats: CacheStats) -> None:
        self.accesses = stats.accesses
        self.hits = stats.hits
        self.misses = stats.misses
        self.evictions = stats.evictions
        self.writebacks = stats.writebacks
        self.pd = stats.pd_hit_misses + stats.pd_miss_misses


class ShadowChecker:
    """Per-instance shadow state plus the invariant checks themselves.

    ``strict=True`` assumes the checker observes *every* access from a
    cold cache and fails loudly on any shadow mismatch.  ``strict=False``
    (the global test-suite hook) resynchronises the shadow on mismatch
    and keeps only the externally-robust checks fatal.
    """

    def __init__(
        self,
        cache: Cache,
        *,
        strict: bool = True,
        check_interval: int = 64,
        reference: ReferenceSetAssociativeLRU | None = None,
    ) -> None:
        self.cache = cache
        self.strict = strict
        self.check_interval = max(1, check_interval)
        self.reference = reference
        self.stable_sets = strict_capable(cache)
        if isinstance(cache, BCache):
            check_bcache_geometry(cache.geometry)
        self.reset()
        self.checks_run = 0
        self.structural_checks = 0

    # -- shadow bookkeeping --------------------------------------------
    def reset(self) -> None:
        """Forget everything (cache was flushed or externally mutated)."""
        self._residents: dict[int, int] = {}
        self._dirty: set[int] = set()
        self._base = _StatsBaseline(self.cache.stats)
        self.accesses_seen = 0
        self.observed_hits = 0
        self.observed_misses = 0
        self.observed_evictions = 0
        self.observed_writebacks = 0
        if self.reference is not None:
            self.reference.flush()

    def _fail(self, message: str) -> None:
        raise SanitizerError(
            f"{self.cache.name}: {message} "
            f"(after {self.accesses_seen} sanitized accesses)"
        )

    # -- per-access check ----------------------------------------------
    def after_access(self, address: int, is_write: bool, result: AccessResult) -> None:
        """Validate one access outcome against the shadow model."""
        self.checks_run += 1
        self.accesses_seen += 1
        block = address >> self.cache.offset_bits
        residents = self._residents
        dirty = self._dirty

        if self.reference is not None:
            reference_hit = self.reference.access(address)
            if reference_hit != result.hit:
                self._fail(
                    f"differential divergence at {address:#x}: model says "
                    f"hit={result.hit}, reference says hit={reference_hit}"
                )

        if result.hit:
            self.observed_hits += 1
            previous = residents.get(block)
            if previous is None:
                if self.strict:
                    self._fail(f"hit at {address:#x} for a block never filled")
            elif self.stable_sets and previous != result.set_index:
                self._fail(
                    f"resident block {block:#x} moved from set {previous} "
                    f"to set {result.set_index} without an eviction"
                )
            residents[block] = result.set_index
            if is_write:
                dirty.add(block)
        else:
            self.observed_misses += 1
            if block in residents:
                if self.strict:
                    self._fail(f"miss at {address:#x} for a still-resident block")
                residents.pop(block, None)
                dirty.discard(block)
            if result.evicted is not None:
                self._check_eviction(block, result)
            residents[block] = result.set_index
            if is_write:
                dirty.add(block)
            else:
                dirty.discard(block)

        if self.strict and len(residents) > self.cache.num_blocks:
            self._fail(
                f"{len(residents)} resident blocks exceed capacity "
                f"{self.cache.num_blocks}"
            )
        if self.strict and not self.cache.contains(address):
            self._fail(f"just-accessed address {address:#x} fails contains()")

        if self.accesses_seen % self.check_interval == 0:
            self.check_structure()
            self.check_accounting()

    def _check_eviction(self, incoming_block: int, result: AccessResult) -> None:
        assert result.evicted is not None
        evicted_block = result.evicted >> self.cache.offset_bits
        self.observed_evictions += 1
        if result.evicted_dirty:
            self.observed_writebacks += 1
        if evicted_block == incoming_block:
            self._fail(f"evicted the very block being filled ({evicted_block:#x})")
        previous = self._residents.pop(evicted_block, None)
        if previous is None:
            if self.strict:
                self._fail(
                    f"evicted block {evicted_block:#x} was never resident"
                )
        else:
            if self.stable_sets and previous != result.set_index:
                self._fail(
                    f"evicted block {evicted_block:#x} lived in set {previous} "
                    f"but the access resolved set {result.set_index}"
                )
            was_dirty = evicted_block in self._dirty
            if self.strict and self.stable_sets and result.evicted_dirty != was_dirty:
                self._fail(
                    f"writeback flag for {evicted_block:#x} is "
                    f"{result.evicted_dirty} but the shadow dirty bit is "
                    f"{was_dirty}"
                )
        self._dirty.discard(evicted_block)

    # -- whole-state checks --------------------------------------------
    def check_accounting(self) -> None:
        """CacheStats counters must agree with the observed stream."""
        stats = self.cache.stats
        base = self._base
        deltas = (
            stats.accesses - base.accesses,
            stats.hits - base.hits,
            stats.misses - base.misses,
            stats.evictions - base.evictions,
            stats.writebacks - base.writebacks,
        )
        if min(deltas) < 0:
            # Counters went backwards: stats were reset behind our back.
            if self.strict:
                self._fail("statistics counters regressed mid-run")
            self.reset()
            return
        expected = (
            self.accesses_seen,
            self.observed_hits,
            self.observed_misses,
            self.observed_evictions,
            self.observed_writebacks,
        )
        labels = ("accesses", "hits", "misses", "evictions", "writebacks")
        for label, got, want in zip(labels, deltas, expected):
            # Relocating organisations (e.g. the AGAC's directory
            # overflow) may legitimately account extra evictions /
            # writebacks out of band — AccessResult carries at most one
            # eviction per access — so those two counters are checked
            # exactly only for the stable write-back classes.
            exact = self.stable_sets or label in ("accesses", "hits", "misses")
            if got != want if exact else got < want:
                self._fail(
                    f"stats.{label} advanced by {got} but the stream "
                    f"observed {want}"
                )
        pd_delta = stats.pd_hit_misses + stats.pd_miss_misses - base.pd
        if pd_delta != self.observed_misses:
            self._fail(
                f"pd_hit_misses + pd_miss_misses advanced by {pd_delta} "
                f"but {self.observed_misses} misses were observed"
            )
        if stats.num_sets and sum(stats.set_accesses) != stats.accesses:
            self._fail("per-set access counters do not sum to stats.accesses")

    def check_structure(self) -> None:
        """Type-specific structural invariants over the raw arrays."""
        self.structural_checks += 1
        cache = self.cache
        if isinstance(cache, BCache):
            self._check_bcache_structure(cache)
        elif isinstance(cache, SetAssociativeCache):
            for index, tags in enumerate(cache._tags):
                valid = [t for t in tags if t >= 0]
                if len(valid) != len(set(valid)):
                    self._fail(f"duplicate (tag, set) residents in set {index}")
                for way, tag in enumerate(tags):
                    if tag < 0 and cache._dirty[index][way]:
                        self._fail(
                            f"dirty bit set on invalid line (set {index}, "
                            f"way {way})"
                        )
        elif isinstance(cache, FullyAssociativeCache):
            self._check_fa_structure(cache)
        else:
            self._check_flat_tags(cache)

    def _check_flat_tags(self, cache: Cache) -> None:
        """Generic dirty-on-invalid check for flat ``_tags``/``_dirty``."""
        tags = getattr(cache, "_tags", None)
        dirty = getattr(cache, "_dirty", None)
        if not isinstance(tags, list) or not isinstance(dirty, list):
            return
        if len(tags) != len(dirty) or (tags and not isinstance(tags[0], int)):
            return
        for index, (tag, is_dirty) in enumerate(zip(tags, dirty)):
            if tag < 0 and is_dirty:
                self._fail(f"dirty bit set on invalid line (set {index})")

    def _check_fa_structure(self, cache: FullyAssociativeCache) -> None:
        valid = [t for t in cache._tags if t >= 0]
        if len(valid) != len(set(valid)):
            self._fail("duplicate resident blocks in fully associative array")
        for way, tag in enumerate(cache._tags):
            if tag < 0 and cache._dirty[way]:
                self._fail(f"dirty bit set on invalid line (way {way})")
            if tag >= 0 and cache._where.get(tag) != way:
                self._fail(f"reverse map out of sync for way {way}")
        if len(cache._where) != len(valid):
            self._fail("reverse map size disagrees with valid entry count")

    def _check_bcache_structure(self, cache: BCache) -> None:
        try:
            cache.decoder.check_integrity()
        except DecoderIntegrityError as exc:
            self._fail(f"programmable decoder integrity: {exc}")
        geometry = cache.geometry
        live_limit = min(geometry.num_clusters, 1 << geometry.pi_bits)
        for row in range(geometry.num_rows):
            live = sum(
                1
                for cluster in range(geometry.num_clusters)
                if cache.decoder.is_valid(row, cluster)
            )
            if live > live_limit:
                self._fail(
                    f"row {row} holds {live} live PD mappings "
                    f"(limit {live_limit})"
                )
        for index, (tag, is_dirty) in enumerate(zip(cache._tags, cache._dirty)):
            if tag < 0 and is_dirty:
                self._fail(f"dirty bit set on invalid line (set {index})")
        if self.strict:
            try:
                cache.check_integrity()
            except AssertionError as exc:
                self._fail(f"B-Cache integrity: {exc}")

    def finalize(self) -> dict[str, int]:
        """Run the whole-state checks one last time; return a summary."""
        self.check_structure()
        self.check_accounting()
        return {
            "accesses_checked": self.accesses_seen,
            "checks_run": self.checks_run,
            "structural_checks": self.structural_checks,
        }


class SanitizedCache:
    """Drop-in wrapper exposing the :class:`Cache` API plus checking.

    Behaviour-preserving by construction: every access is forwarded
    verbatim and checked afterwards, so statistics are bit-identical to
    an unwrapped run or a :class:`SanitizerError` is raised.

    Args:
        cache: the model to shadow-check (wrap it before first access).
        strict: fail on any shadow mismatch (default) instead of
            resynchronising.
        check_interval: run the O(num_sets) structural/accounting scans
            every this many accesses (always once more in
            :meth:`finalize`).
        differential: additionally replay the stream through the
            reference model; raises :class:`ValueError` for cache types
            without a reference (see
            :func:`repro.analysis.reference.reference_for`).
    """

    def __init__(
        self,
        cache: Cache,
        *,
        strict: bool = True,
        check_interval: int = 64,
        differential: bool = False,
    ) -> None:
        reference = None
        if differential:
            reference = reference_for(cache)
            if reference is None:
                raise ValueError(
                    f"no reference model for {type(cache).__name__}; "
                    "differential mode supports plain direct-mapped and "
                    "LRU set/fully-associative caches"
                )
        self.cache = cache
        self.checker = ShadowChecker(
            cache, strict=strict, check_interval=check_interval, reference=reference
        )

    # -- Cache API -----------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> AccessResult:
        result = self.cache.access(address, is_write)
        self.checker.after_access(address, is_write, result)
        return result

    def run(self, trace: Iterable[Access]) -> CacheStats:
        for ref in trace:
            self.access(ref.address, ref.kind == 1)
        return self.cache.stats

    def access_trace(
        self,
        addresses: Sequence[int],
        kinds: Sequence[int] | None = None,
    ) -> CacheStats:
        """Batch API, forwarded through the checked per-access path.

        The wrapped model's allocation-free batch kernels bypass the
        per-access hook by design, so a sanitized batch replay trades
        the speedup for the invariant trail — statistics stay
        bit-identical to the unchecked batch path either way.
        """
        access = self.access
        if kinds is None:
            for address in addresses:
                access(address)
        else:
            for address, kind in zip(addresses, kinds):
                access(address, kind == 1)
        return self.cache.stats

    def contains(self, address: int) -> bool:
        return self.cache.contains(address)

    def flush(self) -> None:
        self.cache.flush()
        self.checker.reset()

    def finalize(self) -> dict[str, int]:
        """Final full-state check; call once after the workload."""
        return self.checker.finalize()

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def miss_rate(self) -> float:
        return self.cache.stats.miss_rate

    @property
    def name(self) -> str:
        return self.cache.name

    def __getattr__(self, attr: str) -> Any:
        # Organisation-specific observables (pd_hit_rate_during_miss,
        # victim_hits, ...) pass straight through to the wrapped model.
        return getattr(self.cache, attr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<sanitized {self.cache!r}>"


# ----------------------------------------------------------------------
# Global hook: sanitize every Cache instance a process creates.
# ----------------------------------------------------------------------
_INSTALLED: dict[str, Any] = {}


def install_global_sanitizer(check_interval: int = 256) -> None:
    """Patch :meth:`Cache.access` to shadow-check every instance.

    Lenient mode (see :class:`ShadowChecker`): structural, accounting
    and stable-set invariants are enforced; shadow mismatches caused by
    out-of-band state mutation resynchronise silently.  Idempotent;
    undo with :func:`uninstall_global_sanitizer`.
    """
    if _INSTALLED:
        return
    original_access = Cache.access
    original_flush = Cache.flush
    original_access_trace = Cache.access_trace
    checkers: weakref.WeakKeyDictionary[Cache, ShadowChecker] = (
        weakref.WeakKeyDictionary()
    )

    def checked_access(
        self: Cache, address: int, is_write: bool = False
    ) -> AccessResult:
        result = original_access(self, address, is_write)
        checker = checkers.get(self)
        if checker is None:
            # The instance may have history from before the hook saw it
            # (the stats baseline snapshot includes this first access);
            # shadow only the stream from here on, seeding residency of
            # the block this access just guaranteed.
            checker = checkers[self] = ShadowChecker(
                self, strict=False, check_interval=check_interval
            )
            checker._residents[address >> self.offset_bits] = result.set_index
            return result
        checker.after_access(address, is_write, result)
        return result

    def checked_flush(self: Cache) -> None:
        original_flush(self)
        checker = checkers.get(self)
        if checker is not None:
            checker.reset()

    def checked_access_trace(
        self: Cache,
        addresses: Any,
        kinds: Any = None,
    ) -> CacheStats:
        # Route the batch API through the checked per-access path so the
        # shadow model observes every reference (the batch kernels would
        # otherwise advance the statistics behind the checker's back).
        if kinds is None:
            for address in addresses:
                checked_access(self, address)
        else:
            for address, kind in zip(addresses, kinds):
                checked_access(self, address, kind == 1)
        return self.stats

    Cache.access = checked_access  # type: ignore[method-assign]
    Cache.flush = checked_flush  # type: ignore[method-assign]
    Cache.access_trace = checked_access_trace  # type: ignore[method-assign]
    _INSTALLED.update(
        access=original_access,
        flush=original_flush,
        access_trace=original_access_trace,
        checkers=checkers,
    )


def uninstall_global_sanitizer() -> None:
    """Restore the unpatched :class:`Cache` methods."""
    if not _INSTALLED:
        return
    Cache.access = _INSTALLED["access"]  # type: ignore[method-assign]
    Cache.flush = _INSTALLED["flush"]  # type: ignore[method-assign]
    Cache.access_trace = _INSTALLED["access_trace"]  # type: ignore[method-assign]
    _INSTALLED.clear()


def global_sanitizer_installed() -> bool:
    """Whether the class-level hook is currently active."""
    return bool(_INSTALLED)
