"""Cache organisations: the baseline and every comparison point."""

from repro.caches.base import AccessResult, Cache, log2_exact
from repro.caches.column_associative import ColumnAssociativeCache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.factory import (
    FIGURE12_SPECS,
    FIGURE45_SPECS,
    FIGURE89_SPECS,
    UnknownCacheSpecError,
    make_cache,
)
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.group_associative import GroupAssociativeCache
from repro.caches.hac import HighlyAssociativeCache
from repro.caches.page_coloring import PageColoringCache
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.skewed_associative import SkewedAssociativeCache
from repro.caches.victim import VictimBufferCache
from repro.caches.write_policy import WritePolicyCache
from repro.caches.way_predicting import (
    PartialAddressMatchingCache,
    PredictiveSequentialCache,
)

__all__ = [
    "AccessResult",
    "Cache",
    "ColumnAssociativeCache",
    "DirectMappedCache",
    "FIGURE12_SPECS",
    "FIGURE45_SPECS",
    "FIGURE89_SPECS",
    "FullyAssociativeCache",
    "GroupAssociativeCache",
    "HighlyAssociativeCache",
    "PageColoringCache",
    "PartialAddressMatchingCache",
    "PredictiveSequentialCache",
    "SetAssociativeCache",
    "SkewedAssociativeCache",
    "UnknownCacheSpecError",
    "VictimBufferCache",
    "WritePolicyCache",
    "log2_exact",
    "make_cache",
]
