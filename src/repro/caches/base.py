"""Common cache interface shared by every organisation in the study.

All caches are byte-addressed, write-back, write-allocate, and operate
on whole cache blocks (the simulators are trace-driven miss-rate /
latency models, so block *contents* are never stored).  Concrete
subclasses implement :meth:`_access_block`; the base class handles
block-address extraction and statistics plumbing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable

from repro.stats.counters import CacheStats
from repro.trace.access import Access


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int, what: str) -> int:
    """Return log2 of ``value`` or raise if it is not a power of two."""
    if not _is_power_of_two(value):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of a single cache access.

    Attributes:
        hit: whether the reference hit in this cache.
        set_index: physical set (row) that resolved the access.
        evicted: block address evicted to make room, or None.
        evicted_dirty: whether the evicted block needed a writeback.
        pd_hit: for the B-Cache, whether the programmable decoder
            matched (always True for conventional caches — their fixed
            decoder always selects a set).
    """

    hit: bool
    set_index: int
    evicted: int | None = None
    evicted_dirty: bool = False
    pd_hit: bool = True


class Cache(abc.ABC):
    """Abstract trace-driven cache model."""

    def __init__(self, size: int, line_size: int, num_sets: int, name: str = "") -> None:
        self.size = size
        self.line_size = line_size
        self.offset_bits = log2_exact(line_size, "line_size")
        if size % line_size:
            raise ValueError(f"size {size} not a multiple of line_size {line_size}")
        self.num_blocks = size // line_size
        self.num_sets = num_sets
        self.name = name or type(self).__name__
        self.stats = CacheStats(num_sets=num_sets)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Reference ``address``; allocate on miss; update statistics."""
        block = address >> self.offset_bits
        result = self._access_block(block, is_write)
        self.stats.record(result.set_index, result.hit, is_write)
        if result.evicted is not None:
            self.stats.evictions += 1
            if result.evicted_dirty:
                self.stats.writebacks += 1
        if not result.hit:
            if result.pd_hit:
                self.stats.pd_hit_misses += 1
            else:
                self.stats.pd_miss_misses += 1
        return result

    def run(self, trace: Iterable[Access]) -> CacheStats:
        """Run a whole trace through the cache; returns the stats object."""
        access = self.access
        for ref in trace:
            access(ref.address, ref.kind == 1)
        return self.stats

    def contains(self, address: int) -> bool:
        """Non-mutating residency probe (no statistics side effects)."""
        return self._probe_block(address >> self.offset_bits)

    def flush(self) -> None:
        """Invalidate all contents and reset statistics."""
        self._flush_state()
        self.stats.reset()

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{self.name} size={self.size} line={self.line_size} "
            f"sets={self.num_sets} miss_rate={self.stats.miss_rate:.4f}>"
        )

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        """Resolve one block reference, mutating cache state."""

    @abc.abstractmethod
    def _probe_block(self, block: int) -> bool:
        """Return residency of ``block`` without mutating anything."""

    @abc.abstractmethod
    def _flush_state(self) -> None:
        """Drop all cached blocks."""
