"""Common cache interface shared by every organisation in the study.

All caches are byte-addressed, write-back, write-allocate, and operate
on whole cache blocks (the simulators are trace-driven miss-rate /
latency models, so block *contents* are never stored).  Concrete
subclasses implement :meth:`_access_block`; the base class handles
block-address extraction and statistics plumbing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs import instrument as _obs
from repro.stats.counters import CacheStats
from repro.trace.access import Access


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int, what: str) -> int:
    """Return log2 of ``value`` or raise if it is not a power of two."""
    if not _is_power_of_two(value):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of a single cache access.

    Attributes:
        hit: whether the reference hit in this cache.
        set_index: physical set (row) that resolved the access.
        evicted: block address evicted to make room, or None.
        evicted_dirty: whether the evicted block needed a writeback.
        pd_hit: for the B-Cache, whether the programmable decoder
            matched (always True for conventional caches — their fixed
            decoder always selects a set).
    """

    hit: bool
    set_index: int
    evicted: int | None = None
    evicted_dirty: bool = False
    pd_hit: bool = True


class Cache(abc.ABC):
    """Abstract trace-driven cache model."""

    def __init__(self, size: int, line_size: int, num_sets: int, name: str = "") -> None:
        self.size = size
        self.line_size = line_size
        self.offset_bits = log2_exact(line_size, "line_size")
        if size % line_size:
            raise ValueError(f"size {size} not a multiple of line_size {line_size}")
        self.num_blocks = size // line_size
        self.num_sets = num_sets
        self.name = name or type(self).__name__
        self.stats = CacheStats(num_sets=num_sets)
        #: Which kernel flavour the last access_trace batch ran on
        #: ("stdlib" or "numpy"); telemetry-only, never affects stats.
        self.last_kernel = "stdlib"

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Reference ``address``; allocate on miss; update statistics."""
        block = address >> self.offset_bits
        result = self._access_block(block, is_write)
        self.stats.record(result.set_index, result.hit, is_write)
        if result.evicted is not None:
            self.stats.evictions += 1
            if result.evicted_dirty:
                self.stats.writebacks += 1
        if not result.hit:
            if result.pd_hit:
                self.stats.pd_hit_misses += 1
            else:
                self.stats.pd_miss_misses += 1
        return result

    def run(self, trace: Iterable[Access]) -> CacheStats:
        """Run a whole trace through the cache; returns the stats object."""
        access = self.access
        for ref in trace:
            access(ref.address, ref.kind == 1)
        return self.stats

    def access_trace(
        self,
        addresses: Sequence[int],
        kinds: Sequence[int] | None = None,
    ) -> CacheStats:
        """Batch fast path: reference a whole address sequence at once.

        Produces statistics bit-identical to calling :meth:`access` per
        element, but drives the model through :meth:`_batch_trace`, a
        tight loop that accumulates counters in locals instead of
        allocating an :class:`AccessResult` per reference.

        Args:
            addresses: byte addresses, any sized sequence (``list``,
                ``tuple``, ``array('Q')``, ...).
            kinds: optional parallel sequence of access kinds using the
                :class:`~repro.trace.access.AccessType` encoding
                (``1`` = write, anything else is a non-writing access);
                ``None`` means every reference is a read.

        Subclasses must override :meth:`_batch_trace`, never this
        dispatcher, so wrappers (e.g. the runtime sanitizer) can
        intercept every batch access at a single point.
        """
        if not hasattr(addresses, "__len__"):
            addresses = list(addresses)
        if kinds is not None:
            if not hasattr(kinds, "__len__"):
                kinds = list(kinds)
            if len(kinds) != len(addresses):
                raise ValueError(
                    f"kinds length {len(kinds)} does not match "
                    f"addresses length {len(addresses)}"
                )
        self.last_kernel = "stdlib"
        start = _obs.kernel_clock()
        stats = self._batch_trace(addresses, kinds)
        _obs.observe_kernel(self.name, len(addresses), start, self.last_kernel)
        return stats

    def contains(self, address: int) -> bool:
        """Non-mutating residency probe (no statistics side effects)."""
        return self._probe_block(address >> self.offset_bits)

    def flush(self) -> None:
        """Invalidate all contents and reset statistics."""
        self._flush_state()
        self.stats.reset()

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{self.name} size={self.size} line={self.line_size} "
            f"sets={self.num_sets} miss_rate={self.stats.miss_rate:.4f}>"
        )

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    def _batch_trace(
        self,
        addresses: Sequence[int],
        kinds: Sequence[int] | None,
    ) -> CacheStats:
        """Generic batch kernel: drive :meth:`_access_block` directly.

        Still pays one :class:`AccessResult` per reference (produced by
        the subclass), but skips the per-access wrapper and
        ``stats.record`` call.  Organisations with a hot inner loop
        override this with an allocation-free kernel; overrides must
        update statistics exactly like :meth:`access` does.
        """
        stats = self.stats
        access_block = self._access_block
        offset_bits = self.offset_bits
        set_accesses = stats.set_accesses
        set_hits = stats.set_hits
        set_misses = stats.set_misses
        n = len(addresses)
        if kinds is None:
            kinds = bytes(n)  # all reads
        hits = misses = writes = 0
        evictions = writebacks = pd_hit = pd_miss = 0
        for address, kind in zip(addresses, kinds):
            is_write = kind == 1
            result = access_block(address >> offset_bits, is_write)
            set_index = result.set_index
            set_accesses[set_index] += 1
            if is_write:
                writes += 1
            if result.hit:
                hits += 1
                set_hits[set_index] += 1
            else:
                misses += 1
                set_misses[set_index] += 1
                if result.pd_hit:
                    pd_hit += 1
                else:
                    pd_miss += 1
            if result.evicted is not None:
                evictions += 1
                if result.evicted_dirty:
                    writebacks += 1
        stats.accesses += n
        stats.reads += n - writes
        stats.writes += writes
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        stats.pd_hit_misses += pd_hit
        stats.pd_miss_misses += pd_miss
        return stats

    @abc.abstractmethod
    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        """Resolve one block reference, mutating cache state."""

    @abc.abstractmethod
    def _probe_block(self, block: int) -> bool:
        """Return residency of ``block`` without mutating anything."""

    @abc.abstractmethod
    def _flush_state(self) -> None:
        """Drop all cached blocks."""
