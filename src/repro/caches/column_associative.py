"""Column-associative cache (Agarwal & Pudar).

Prior art discussed in Sections 2.1 and 7.1: a direct-mapped cache with
a *rehash bit* per set and an alternate hash function (flipping the
most significant index bit).  A first-probe miss triggers a second
probe at the alternate location; a second-probe hit swaps the two
blocks so the next reference hits in one cycle.  The cost the paper
highlights: part of the hits take two cycles, and the address
multiplexer sits on the critical path.

Miss-rate-wise it approaches a 2-way cache; the B-Cache beats it while
keeping all hits at one cycle.
"""

from __future__ import annotations

from repro.caches.base import AccessResult, Cache, log2_exact


class ColumnAssociativeCache(Cache):
    """Direct-mapped cache with rehash bits and an alternate index."""

    def __init__(self, size: int, line_size: int = 32, name: str = "") -> None:
        num_sets = size // line_size
        super().__init__(size, line_size, num_sets, name or f"CA-{size // 1024}kB")
        self.index_bits = log2_exact(num_sets, "number of sets")
        self._index_mask = num_sets - 1
        self._flip = 1 << (self.index_bits - 1)
        # Store whole block addresses: after swaps a block may live at
        # either of its two legal sets, so a bare tag is ambiguous.
        self._blocks = [-1] * num_sets
        self._dirty = [False] * num_sets
        self._rehash = [False] * num_sets
        self.first_probe_hits = 0
        self.second_probe_hits = 0

    def _primary_index(self, block: int) -> int:
        return block & self._index_mask

    def _secondary_index(self, block: int) -> int:
        return (block & self._index_mask) ^ self._flip

    def _evict(self, index: int) -> tuple[int | None, bool]:
        block = self._blocks[index]
        if block < 0:
            return None, False
        return block << self.offset_bits, self._dirty[index]

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        first = self._primary_index(block)
        second = self._secondary_index(block)

        if self._blocks[first] == block:
            self.first_probe_hits += 1
            if is_write:
                self._dirty[first] = True
            return AccessResult(hit=True, set_index=first)

        # First probe missed.  If the resident block is itself a
        # rehashed (second-choice) block, replace it immediately: its
        # owner valued this slot less than the incoming first-choice
        # block does (the classic rehash-bit optimisation).
        if self._rehash[first]:
            evicted, evicted_dirty = self._evict(first)
            self._blocks[first] = block
            self._dirty[first] = is_write
            self._rehash[first] = False
            return AccessResult(
                hit=False, set_index=first, evicted=evicted, evicted_dirty=evicted_dirty
            )

        if self._blocks[second] == block:
            # Second-probe hit: swap so the block is first-choice next time.
            self.second_probe_hits += 1
            if is_write:
                self._dirty[second] = True
            self._blocks[first], self._blocks[second] = (
                self._blocks[second],
                self._blocks[first],
            )
            self._dirty[first], self._dirty[second] = (
                self._dirty[second],
                self._dirty[first],
            )
            self._rehash[first] = False
            self._rehash[second] = self._blocks[second] >= 0
            return AccessResult(hit=True, set_index=first)

        # Full miss: new block settles at its first-choice slot, the
        # displaced first-choice block is rehashed into the alternate
        # slot, whose occupant leaves the cache.
        evicted, evicted_dirty = self._evict(second)
        displaced = self._blocks[first]
        displaced_dirty = self._dirty[first]
        self._blocks[first] = block
        self._dirty[first] = is_write
        self._rehash[first] = False
        self._blocks[second] = displaced
        self._dirty[second] = displaced_dirty
        self._rehash[second] = displaced >= 0
        return AccessResult(
            hit=False, set_index=first, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _probe_block(self, block: int) -> bool:
        return (
            self._blocks[self._primary_index(block)] == block
            or self._blocks[self._secondary_index(block)] == block
        )

    def _flush_state(self) -> None:
        self._blocks = [-1] * self.num_sets
        self._dirty = [False] * self.num_sets
        self._rehash = [False] * self.num_sets
        self.first_probe_hits = 0
        self.second_probe_hits = 0

    @property
    def slow_hit_fraction(self) -> float:
        """Fraction of hits that needed the second (extra-cycle) probe."""
        total = self.first_probe_hits + self.second_probe_hits
        if not total:
            return 0.0
        return self.second_probe_hits / total
