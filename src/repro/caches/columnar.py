"""Columnar helpers for the batch replay kernels.

The batch kernels in :mod:`repro.caches` operate on flat integer
columns: the ``array('Q')``/``memoryview`` address blob handed out by
the trace store flows straight into ``_batch_trace`` with no per-access
object materialised anywhere between disk and kernel.  This module adds
the optional **numpy fast path** on top of that representation:

* :func:`dm_batch` — a fully vectorised direct-mapped kernel
  (tag/index extraction, hit detection via a stable per-set sort,
  writeback algebra over residency segments, ``np.bincount`` per-set
  counters) that is bit-identical to the scalar replay;
* :func:`index_tag_columns` / :func:`row_pi_tag_columns` — column
  preparation for the set-associative and B-Cache kernels, whose
  replacement-policy state is inherently sequential: the address math
  and the static per-set access counters vectorise, the policy loop
  stays in pure Python.

The pure-stdlib path remains canonical: numpy is probed once per
process (:func:`get_numpy`), ``REPRO_NUMPY=off`` disables it, and every
vectorised kernel falls back to the stdlib loop whenever one of its
preconditions (sequence length, set count, address width) does not
hold.  Equivalence across all factory specs is property-tested in
``tests/test_columnar_kernels.py``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.caches.direct_mapped import DirectMappedCache

#: Environment switch: any of these values disables the numpy path.
ENV_NUMPY = "REPRO_NUMPY"
_OFF_VALUES = frozenset({"0", "off", "no", "false"})

#: Below this batch length the vectorisation setup costs more than the
#: stdlib loop saves.
MIN_VECTOR_LEN = 1024

#: The stable argsort is radix sort for 1- and 2-byte keys (fast) but
#: comparison sort for wider ones (slow); set indices are therefore
#: packed into uint16, which bounds the vectorised path to 2**16 sets.
MAX_VECTOR_SETS = 1 << 16

#: Tag sentinel for an invalid (empty) set in the vectorised kernel.
#: Safe because the kernel refuses addresses at or above 2**63: every
#: real tag is then strictly below the all-ones pattern.
_INVALID = (1 << 64) - 1

_numpy: Any = None
_numpy_probed = False


def _probe_numpy() -> Any:
    """Import numpy and sanity-check the operations the kernels rely on."""
    try:
        import numpy
    except ImportError:
        return None
    try:
        probe = numpy.frombuffer(
            (123).to_bytes(8, "little"), dtype=numpy.dtype("<u8")
        )
        if int(probe[0]) != 123:
            return None
        numpy.argsort(numpy.zeros(2, dtype=numpy.uint16), kind="stable")
        numpy.bincount(numpy.zeros(2, dtype=numpy.intp), minlength=4)
    except Exception:
        return None
    return numpy


def get_numpy() -> Any:
    """The numpy module, or ``None`` (absent, broken, or disabled).

    The import is probed once per process; the ``REPRO_NUMPY``
    environment gate is consulted on every call so tests can exercise
    both kernel paths in one process.
    """
    global _numpy, _numpy_probed
    if os.environ.get(ENV_NUMPY, "").strip().lower() in _OFF_VALUES:
        return None
    if not _numpy_probed:
        _numpy = _probe_numpy()
        _numpy_probed = True
    return _numpy


def numpy_enabled() -> bool:
    """Whether the vectorised kernels are available right now."""
    return get_numpy() is not None


def address_column(np: Any, addresses: Sequence[int]) -> Any:
    """``addresses`` as a uint64 ndarray — zero-copy for buffer-backed
    sequences (``array('Q')``, ``memoryview``), one copy for lists."""
    try:
        return np.frombuffer(addresses, dtype=np.uint64)  # type: ignore[arg-type]
    except TypeError:
        return np.asarray(addresses, dtype=np.uint64)


def kind_column(np: Any, kinds: Sequence[int]) -> Any:
    """``kinds`` as a uint8 ndarray (zero-copy where possible)."""
    try:
        return np.frombuffer(kinds, dtype=np.uint8)  # type: ignore[arg-type]
    except TypeError:
        return np.asarray(kinds, dtype=np.uint8)


def block_columns(
    addresses: Sequence[int],
    offset_bits: int,
    index_mask: int,
    num_sets: int,
) -> tuple[list[int], Any] | None:
    """Vectorised address math for the set-associative loop.

    Returns ``(block column, per-set access counts)`` — the block
    numbers as a plain Python list plus a bincount ndarray — or
    ``None`` when the numpy path is unavailable or not worthwhile.
    The caller's loop then consumes a pre-shifted column instead of
    shifting every address itself, and skips per-access set counting
    entirely.
    """
    np = get_numpy()
    if np is None or len(addresses) < MIN_VECTOR_LEN:
        return None
    blocks = address_column(np, addresses) >> np.uint64(offset_bits)
    counts = np.bincount(
        (blocks & np.uint64(index_mask)).astype(np.intp), minlength=num_sets
    )
    return blocks.tolist(), counts


def shifted_blocks(
    addresses: Sequence[int], offset_bits: int
) -> list[int] | None:
    """Vectorised block-number extraction for the B-Cache loop.

    The B-Cache's set index depends on the programmable-decoder state,
    so neither per-set counters nor hit detection vectorise; only the
    offset shift does.  Returns the block numbers as a plain Python
    list, or ``None`` when the numpy path is unavailable.
    """
    np = get_numpy()
    if np is None or len(addresses) < MIN_VECTOR_LEN:
        return None
    return (address_column(np, addresses) >> np.uint64(offset_bits)).tolist()


def add_set_counts(counters: list[int], counts: Any) -> None:
    """Accumulate a bincount ndarray into a per-set counter list."""
    np = get_numpy()
    if np is None:  # pragma: no cover - callers hold a counts array
        return
    for index in np.flatnonzero(counts).tolist():
        counters[index] += int(counts[index])


def dm_batch(
    cache: "DirectMappedCache",
    addresses: Sequence[int],
    kinds: Sequence[int] | None,
) -> bool:
    """Vectorised direct-mapped batch kernel.

    Returns ``True`` when the batch was fully applied (statistics and
    cache state updated bit-identically to the scalar replay), or
    ``False`` when a precondition fails and the caller must run the
    stdlib loop instead.

    The algorithm sorts references by set index (stable, so order
    within a set stays chronological), detects hits by comparing each
    reference's tag with its predecessor's in the same set (after a
    fill *or* a hit the resident tag equals the reference's tag), and
    resolves writebacks with prefix sums of the write flags over
    residency segments.
    """
    np = get_numpy()
    n = len(addresses)
    if np is None or n < MIN_VECTOR_LEN or cache.num_sets > MAX_VECTOR_SETS:
        return False
    column = address_column(np, addresses)
    if int(column.max()) >= 1 << 63:
        # Tags must stay clear of the all-ones invalid sentinel.
        return False

    blocks = column >> np.uint64(cache.offset_bits)
    index = (blocks & np.uint64(cache._index_mask)).astype(np.uint16)
    tag = blocks >> np.uint64(cache.index_bits)
    order = np.argsort(index, kind="stable")
    index_s = index[order]
    tag_s = tag[order]

    # Initial per-set state as uint64 columns (invalid -> sentinel).
    try:
        init = np.asarray(cache._tags, dtype=np.int64)
    except OverflowError:
        # A prior batch of >=2**63 addresses left wider-than-int64
        # resident tags; only the stdlib loop handles those.
        return False
    init_u = np.where(init < 0, np.uint64(_INVALID), init.astype(np.uint64))
    init_dirty = np.asarray(cache._dirty, dtype=bool)

    first = np.empty(n, dtype=bool)
    first[0] = True
    np.not_equal(index_s[1:], index_s[:-1], out=first[1:])

    # Resident tag before each reference: the previous reference's tag
    # within the set (hit or fill, the resident equals it afterwards),
    # or the pre-batch resident at each set's first reference.
    hit_s = np.empty(n, dtype=bool)
    np.equal(tag_s[1:], tag_s[:-1], out=hit_s[1:])
    hit_s[first] = tag_s[first] == init_u[index_s[first]]
    miss_s = ~hit_s

    if kinds is None:
        write_s = None
        prefix = None
        writes = 0
    else:
        write_flags = kind_column(np, kinds) == 1
        write_s = write_flags[order]
        prefix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(write_s, dtype=np.int64, out=prefix[1:])
        writes = int(prefix[n])

    # Residency segments: a segment starts at each fill (miss) and at
    # each set's first reference.  Segment starts are only queried at a
    # handful of positions, so a sorted start list + searchsorted beats
    # materialising a full per-position segment column.
    starts = np.flatnonzero(first | miss_s)

    def segment_start(queries: Any) -> Any:
        """Start position of the segment each query position lies in."""
        return starts[np.searchsorted(starts, queries, side="right") - 1]

    miss_pos = np.flatnonzero(miss_s)
    lead = first[miss_pos]  # misses at a set's first reference
    miss_lead = miss_pos[lead]
    miss_rest = miss_pos[~lead]

    # Evictions: every non-leading miss evicts (the set is resident by
    # then); a leading miss evicts only a valid pre-batch block.
    lead_valid = init_u[index_s[miss_lead]] != np.uint64(_INVALID)
    evictions = int(miss_rest.size) + int(np.count_nonzero(lead_valid))

    # Writebacks at leading misses: the pre-batch resident's dirty bit.
    writebacks = int(np.count_nonzero(lead_valid & init_dirty[index_s[miss_lead]]))
    # Writebacks at non-leading misses: the evicted block was dirtied
    # by a write since its segment start, or it is the pre-batch
    # resident (segment started with a hit at the set's first
    # reference) and was already dirty.
    if miss_rest.size:
        seg_start = segment_start(miss_rest - 1)
        inherited = first[seg_start] & hit_s[seg_start]
        dirty_before = inherited & init_dirty[index_s[miss_rest]]
        if prefix is not None:
            dirty_before = dirty_before | (
                (prefix[miss_rest] - prefix[seg_start]) > 0
            )
        writebacks += int(np.count_nonzero(dirty_before))

    misses = int(miss_pos.size)
    hits = n - misses

    # Per-set counters via bincount (BCL009-free by construction).
    # Misses are the minority; counting them and subtracting is cheaper
    # than boolean-masking the full hit column.
    stats = cache.stats
    counts = np.bincount(index_s, minlength=cache.num_sets)
    miss_counts = np.bincount(index_s[miss_pos], minlength=cache.num_sets)
    add_set_counts(stats.set_accesses, counts)
    add_set_counts(stats.set_hits, counts - miss_counts)
    add_set_counts(stats.set_misses, miss_counts)

    # Final per-set state: after its last reference a set's resident
    # tag equals that reference's tag; its dirty bit follows the same
    # segment algebra as the writeback computation.
    group_last = np.flatnonzero(np.concatenate((first[1:], [True])))
    final_sets = index_s[group_last]
    final_tags = tag_s[group_last]
    last_start = segment_start(group_last)
    final_inherited = first[last_start] & hit_s[last_start]
    final_dirty = final_inherited & init_dirty[final_sets]
    if prefix is not None:
        final_dirty = final_dirty | (
            (prefix[group_last + 1] - prefix[last_start]) > 0
        )
    tags_list = cache._tags
    dirty_list = cache._dirty
    for set_index, set_tag, set_dirty in zip(
        final_sets.tolist(), final_tags.tolist(), final_dirty.tolist()
    ):
        tags_list[set_index] = set_tag
        dirty_list[set_index] = set_dirty

    stats.accesses += n
    stats.reads += n - writes
    stats.writes += writes
    stats.hits += hits
    stats.misses += misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    # A fixed decoder always selects a set: every miss is a PD hit.
    stats.pd_hit_misses += misses
    return True
