"""Conventional direct-mapped cache — the paper's baseline.

The baseline of the study is a 16 kB direct-mapped L1 with 32-byte
lines (Section 4.1): 512 sets, a 9-bit index (``OI`` in the paper's
terminology) and an 18-bit tag out of a 32-bit address.
"""

from __future__ import annotations

from typing import Sequence

from repro.caches import columnar
from repro.caches.base import AccessResult, Cache, log2_exact
from repro.stats.counters import CacheStats


class DirectMappedCache(Cache):
    """One block per set; the index decoding is fixed."""

    def __init__(self, size: int, line_size: int = 32, name: str = "") -> None:
        num_sets = size // line_size
        super().__init__(size, line_size, num_sets, name or f"DM-{size // 1024}kB")
        self.index_bits = log2_exact(num_sets, "number of sets")
        self._index_mask = num_sets - 1
        # Per-set resident tag; -1 means invalid.
        self._tags = [-1] * num_sets
        self._dirty = [False] * num_sets

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        index = block & self._index_mask
        tag = block >> self.index_bits
        if self._tags[index] == tag:
            if is_write:
                self._dirty[index] = True
            return AccessResult(hit=True, set_index=index)
        evicted = None
        evicted_dirty = False
        if self._tags[index] >= 0:
            evicted = ((self._tags[index] << self.index_bits) | index) << self.offset_bits
            evicted_dirty = self._dirty[index]
        self._tags[index] = tag
        self._dirty[index] = is_write
        return AccessResult(
            hit=False, set_index=index, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _batch_trace(
        self,
        addresses: Sequence[int],
        kinds: Sequence[int] | None,
    ) -> CacheStats:
        """Allocation-free batch kernel (see :meth:`Cache.access_trace`)."""
        if type(self)._access_block is not DirectMappedCache._access_block:
            # A subclass customises per-access behaviour; let the generic
            # kernel drive its _access_block override instead of this one.
            return super()._batch_trace(addresses, kinds)
        if columnar.dm_batch(self, addresses, kinds):
            self.last_kernel = "numpy"
            return self.stats
        stats = self.stats
        tags = self._tags
        dirty = self._dirty
        index_mask = self._index_mask
        offset_bits = self.offset_bits
        tag_shift = offset_bits + self.index_bits
        set_accesses = stats.set_accesses
        set_hits = stats.set_hits
        set_misses = stats.set_misses
        # Hits dominate, so the hot loop only bumps the per-set access
        # and miss counters; per-set hits are reconstructed afterwards
        # from the deltas (final statistics stay bit-identical).
        accesses_before = set_accesses.copy()
        misses_before = set_misses.copy()
        n = len(addresses)
        if kinds is None:
            kinds = bytes(n)  # all reads
        misses = writes = evictions = writebacks = 0
        for address, kind in zip(addresses, kinds):
            index = (address >> offset_bits) & index_mask
            tag = address >> tag_shift
            set_accesses[index] += 1
            resident = tags[index]
            if resident == tag:
                if kind == 1:
                    writes += 1
                    dirty[index] = True
            else:
                misses += 1
                set_misses[index] += 1
                if resident >= 0:
                    evictions += 1
                    if dirty[index]:
                        writebacks += 1
                tags[index] = tag
                if kind == 1:
                    writes += 1
                    dirty[index] = True
                else:
                    dirty[index] = False
        for set_index, before in enumerate(accesses_before):
            delta = set_accesses[set_index] - before
            if delta:
                set_hits[set_index] += delta - (
                    set_misses[set_index] - misses_before[set_index]
                )
        hits = n - misses
        stats.accesses += n
        stats.reads += n - writes
        stats.writes += writes
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        # A fixed decoder always selects a set: every miss is a PD hit.
        stats.pd_hit_misses += misses
        return stats

    def _probe_block(self, block: int) -> bool:
        index = block & self._index_mask
        return self._tags[index] == block >> self.index_bits

    def _flush_state(self) -> None:
        self._tags = [-1] * self.num_sets
        self._dirty = [False] * self.num_sets
