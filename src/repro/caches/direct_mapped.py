"""Conventional direct-mapped cache — the paper's baseline.

The baseline of the study is a 16 kB direct-mapped L1 with 32-byte
lines (Section 4.1): 512 sets, a 9-bit index (``OI`` in the paper's
terminology) and an 18-bit tag out of a 32-bit address.
"""

from __future__ import annotations

from repro.caches.base import AccessResult, Cache, log2_exact


class DirectMappedCache(Cache):
    """One block per set; the index decoding is fixed."""

    def __init__(self, size: int, line_size: int = 32, name: str = "") -> None:
        num_sets = size // line_size
        super().__init__(size, line_size, num_sets, name or f"DM-{size // 1024}kB")
        self.index_bits = log2_exact(num_sets, "number of sets")
        self._index_mask = num_sets - 1
        # Per-set resident tag; -1 means invalid.
        self._tags = [-1] * num_sets
        self._dirty = [False] * num_sets

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        index = block & self._index_mask
        tag = block >> self.index_bits
        if self._tags[index] == tag:
            if is_write:
                self._dirty[index] = True
            return AccessResult(hit=True, set_index=index)
        evicted = None
        evicted_dirty = False
        if self._tags[index] >= 0:
            evicted = ((self._tags[index] << self.index_bits) | index) << self.offset_bits
            evicted_dirty = self._dirty[index]
        self._tags[index] = tag
        self._dirty[index] = is_write
        return AccessResult(
            hit=False, set_index=index, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _probe_block(self, block: int) -> bool:
        index = block & self._index_mask
        return self._tags[index] == block >> self.index_bits

    def _flush_state(self) -> None:
        self._tags = [-1] * self.num_sets
        self._dirty = [False] * self.num_sets
