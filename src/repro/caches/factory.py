"""Build any evaluated cache organisation from a compact spec string.

The experiment harnesses describe configurations the way the paper's
figure legends do — ``"dm"``, ``"2way"``, ``"8way"``, ``"victim16"``,
``"mf8_bas8"``, ``"column"``, ``"skew2"``, ``"hac"`` — and this factory
turns a spec plus a cache size into a ready simulator.
"""

from __future__ import annotations

import re

from repro.caches.base import Cache
from repro.caches.column_associative import ColumnAssociativeCache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.group_associative import GroupAssociativeCache
from repro.caches.hac import HighlyAssociativeCache
from repro.caches.page_coloring import PageColoringCache
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.skewed_associative import SkewedAssociativeCache
from repro.caches.victim import VictimBufferCache
from repro.caches.way_predicting import (
    PartialAddressMatchingCache,
    PredictiveSequentialCache,
)

_WAYS_RE = re.compile(r"^(\d+)way$")
_VICTIM_RE = re.compile(r"^victim(\d+)$")
_BCACHE_RE = re.compile(r"^mf(\d+)_bas(\d+)$")
_SKEW_RE = re.compile(r"^skew(\d+)$")
_PAM_RE = re.compile(r"^pam(\d+)$")
_PSA_RE = re.compile(r"^psa(\d+)$")


class UnknownCacheSpecError(ValueError):
    """Raised for a spec string the factory does not recognise."""


def make_cache(
    spec: str,
    size: int = 16 * 1024,
    line_size: int = 32,
    policy: str = "lru",
    seed: int = 0,
) -> Cache:
    """Instantiate a cache from a legend-style spec string.

    Recognised specs:
        ``dm``                  direct-mapped baseline
        ``<N>way``              N-way set-associative (LRU by default)
        ``fa``                  fully associative
        ``victim<N>``           direct-mapped + N-entry victim buffer
        ``mf<M>_bas<B>``        B-Cache with MF=M, BAS=B
        ``column``              column-associative
        ``skew<N>``             N-way skewed-associative
        ``hac``                 highly associative CAM-tag cache
        ``agac``                adaptive group-associative cache
        ``pagecolor``           direct-mapped + OS page recolouring
        ``pam<N>``              N-way with partial-address way prediction
        ``psa<N>``              N-way predictive sequential associative
    """
    spec = spec.strip().lower()
    if spec == "dm":
        return DirectMappedCache(size, line_size)
    if spec == "fa":
        return FullyAssociativeCache(size, line_size, policy=policy, seed=seed)
    if spec == "column":
        return ColumnAssociativeCache(size, line_size)
    if spec == "hac":
        return HighlyAssociativeCache(size, line_size, seed=seed)
    if spec == "agac":
        return GroupAssociativeCache(size, line_size)
    if spec == "pagecolor":
        return PageColoringCache(size, line_size)
    match = _PAM_RE.match(spec)
    if match:
        return PartialAddressMatchingCache(
            size, line_size, ways=int(match.group(1)), policy=policy, seed=seed
        )
    match = _PSA_RE.match(spec)
    if match:
        return PredictiveSequentialCache(
            size, line_size, ways=int(match.group(1)), policy=policy, seed=seed
        )
    match = _WAYS_RE.match(spec)
    if match:
        return SetAssociativeCache(
            size, line_size, ways=int(match.group(1)), policy=policy, seed=seed
        )
    match = _VICTIM_RE.match(spec)
    if match:
        return VictimBufferCache(size, line_size, victim_entries=int(match.group(1)))
    match = _BCACHE_RE.match(spec)
    if match:
        # Imported lazily: repro.core depends on repro.caches.base, so a
        # module-level import here would be circular.
        from repro.core.bcache import BCache
        from repro.core.config import BCacheGeometry

        geometry = BCacheGeometry(
            size,
            line_size,
            mapping_factor=int(match.group(1)),
            associativity=int(match.group(2)),
        )
        return BCache(geometry, policy=policy, seed=seed)
    match = _SKEW_RE.match(spec)
    if match:
        return SkewedAssociativeCache(
            size, line_size, ways=int(match.group(1)), seed=seed
        )
    raise UnknownCacheSpecError(f"unrecognised cache spec {spec!r}")


#: Configurations plotted in Figures 4 and 5 (in legend order).
FIGURE45_SPECS = (
    "2way",
    "4way",
    "8way",
    "32way",
    "victim16",
    "mf2_bas8",
    "mf4_bas8",
    "mf8_bas8",
    "mf16_bas8",
)

#: Configurations plotted in Figure 12 (8 kB and 32 kB study).
FIGURE12_SPECS = (
    "2way",
    "4way",
    "8way",
    "victim16",
    "mf2_bas4",
    "mf4_bas4",
    "mf8_bas4",
    "mf16_bas4",
    "mf2_bas8",
    "mf4_bas8",
    "mf8_bas8",
    "mf16_bas8",
)

#: Configurations compared in Figures 8 and 9 (IPC / energy).
FIGURE89_SPECS = ("2way", "4way", "8way", "mf8_bas8", "victim16")
