"""Fully associative cache.

Used directly as the victim buffer's storage (Section 2.1 / 6.6) and as
the limiting case of the B-Cache: a fully associative cache "uses the
whole tag as the decoding index" (Section 2.3), i.e. its decoder is
entirely programmable (the HAC of Section 6.7 is the subarray-
partitioned version of the same idea).
"""

from __future__ import annotations

from repro.caches.base import AccessResult, Cache
from repro.replacement import ReplacementPolicy, make_policy


class FullyAssociativeCache(Cache):
    """A single set holding every block; any block can live anywhere."""

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        policy: str = "lru",
        seed: int = 0,
        name: str = "",
    ) -> None:
        num_blocks = size // line_size
        super().__init__(size, line_size, 1, name or f"FA-{num_blocks}entry")
        self.ways = num_blocks
        self.policy_name = policy
        self._seed = seed
        self._tags: list[int] = [-1] * num_blocks
        self._dirty: list[bool] = [False] * num_blocks
        self._where: dict[int, int] = {}
        self._policy: ReplacementPolicy = make_policy(policy, num_blocks, seed=seed)

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        way = self._where.get(block)
        if way is not None:
            self._policy.touch(way)
            if is_write:
                self._dirty[way] = True
            return AccessResult(hit=True, set_index=0)
        way = self._policy.victim()
        evicted = None
        evicted_dirty = False
        old = self._tags[way]
        if old >= 0:
            evicted = old << self.offset_bits
            evicted_dirty = self._dirty[way]
            del self._where[old]
        self._tags[way] = block
        self._dirty[way] = is_write
        self._where[block] = way
        self._policy.touch(way)
        return AccessResult(
            hit=False, set_index=0, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _probe_block(self, block: int) -> bool:
        return block in self._where

    def invalidate_block_address(self, address: int) -> bool:
        """Remove the block containing ``address``; True if it was present.

        Needed by the victim-buffer combination, which swaps blocks
        between the main cache and the buffer.
        """
        block = address >> self.offset_bits
        way = self._where.pop(block, None)
        if way is None:
            return False
        self._tags[way] = -1
        self._dirty[way] = False
        self._policy.invalidate(way)
        return True

    def _flush_state(self) -> None:
        self._tags = [-1] * self.ways
        self._dirty = [False] * self.ways
        self._where.clear()
        self._policy = make_policy(self.policy_name, self.ways, seed=self._seed)
