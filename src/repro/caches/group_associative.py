"""Adaptive group-associative cache (AGAC, Peir / Lee / Hsu).

Prior art from Section 7.1: a direct-mapped cache that tracks which
sets are "holes" (underutilised) and relocates would-be victims into
them, reaching the miss rate of a 4-way cache.  Its cost, which the
paper contrasts with the B-Cache: relocated lines take extra cycles to
reach — "the AGAC needs three cycles to access those relocated cache
lines which account for 5.24% of the total cache hits, while the
B-Cache needs one cycle for all cache hits."

Model
-----
* A *set-reference history table* (SHT) tracks the most recently used
  sets; sets absent from the SHT are considered holes.
* An *out-of-position directory* (OPD) maps a block's home set to the
  hole currently holding it, bounded in size like the hardware table.
* On a home-set hit: one-cycle hit.
* On a home miss but OPD hit: multi-cycle (relocated) hit; the block
  is promoted back to its home set, displacing the occupant into a
  hole when one exists.
* On a full miss: the displaced home occupant is relocated into the
  least recently used hole instead of being evicted, when a hole is
  available.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.caches.base import AccessResult, Cache, log2_exact


class GroupAssociativeCache(Cache):
    """Adaptive group-associative cache (direct-mapped + hole reuse)."""

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        sht_fraction: float = 0.5,
        opd_entries: int | None = None,
        name: str = "",
    ) -> None:
        num_sets = size // line_size
        super().__init__(size, line_size, num_sets, name or f"AGAC-{size // 1024}kB")
        if not 0.0 < sht_fraction < 1.0:
            raise ValueError("sht_fraction must be in (0, 1)")
        self.index_bits = log2_exact(num_sets, "number of sets")
        self._index_mask = num_sets - 1
        #: Sets considered "recently used"; the rest are hole candidates.
        self.sht_capacity = max(1, int(num_sets * sht_fraction))
        self.opd_capacity = opd_entries if opd_entries is not None else num_sets // 8
        # Physical frames: one block per set; blocks stored as full
        # block addresses since relocation breaks the index mapping.
        self._blocks = [-1] * num_sets
        self._dirty = [False] * num_sets
        # SHT: set index -> None, LRU-ordered (most recent last).
        self._sht: OrderedDict[int, None] = OrderedDict()
        # OPD: block address -> frame currently holding it.
        self._opd: OrderedDict[int, int] = OrderedDict()
        self.direct_hits = 0
        self.relocated_hits = 0

    # ------------------------------------------------------------------
    def _touch_sht(self, index: int) -> None:
        if index in self._sht:
            self._sht.move_to_end(index)
        else:
            self._sht[index] = None
            if len(self._sht) > self.sht_capacity:
                self._sht.popitem(last=False)

    def _find_hole(self) -> int | None:
        """A frame whose set is not recently referenced and which does
        not currently hold a relocated block that was recently used."""
        relocated_frames = set(self._opd.values())
        for index in range(self.num_sets):
            if index in self._sht:
                continue
            if index in relocated_frames:
                continue
            return index
        return None

    def _evict_frame(self, frame: int) -> tuple[int | None, bool]:
        block = self._blocks[frame]
        if block < 0:
            return None, False
        self._opd.pop(block, None)
        return block << self.offset_bits, self._dirty[frame]

    def _relocate(self, block: int, dirty: bool) -> tuple[int | None, bool]:
        """Move a displaced block into a hole; evict only without holes."""
        hole = self._find_hole()
        if hole is None:
            return block << self.offset_bits, dirty
        evicted = self._evict_frame(hole)
        self._blocks[hole] = block
        self._dirty[hole] = dirty
        self._opd[block] = hole
        if len(self._opd) > self.opd_capacity:
            old_block, old_frame = self._opd.popitem(last=False)
            # Dropping the directory entry makes the line unreachable:
            # invalidate it, writing dirty data back.  The writeback is
            # accounted directly in the statistics because AccessResult
            # carries at most one eviction per access.
            if self._blocks[old_frame] == old_block:
                if self._dirty[old_frame]:
                    self.stats.writebacks += 1
                    self.stats.evictions += 1
                self._blocks[old_frame] = -1
                self._dirty[old_frame] = False
        return evicted

    # ------------------------------------------------------------------
    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        home = block & self._index_mask
        self._touch_sht(home)

        if self._blocks[home] == block:
            self.direct_hits += 1
            if is_write:
                self._dirty[home] = True
            return AccessResult(hit=True, set_index=home)

        frame = self._opd.get(block)
        if frame is not None and self._blocks[frame] == block:
            # Relocated (multi-cycle) hit: promote back to the home set.
            self.relocated_hits += 1
            del self._opd[block]
            promoted_dirty = self._dirty[frame] or is_write
            displaced = self._blocks[home]
            displaced_dirty = self._dirty[home]
            self._blocks[frame] = -1
            self._dirty[frame] = False
            evicted = None
            evicted_dirty = False
            if displaced >= 0:
                evicted, evicted_dirty = self._relocate(displaced, displaced_dirty)
            self._blocks[home] = block
            self._dirty[home] = promoted_dirty
            if evicted == block << self.offset_bits:
                evicted, evicted_dirty = None, False
            return AccessResult(
                hit=True, set_index=home, evicted=evicted, evicted_dirty=evicted_dirty
            )

        # Full miss: fill the home set; relocate the displaced block.
        displaced = self._blocks[home]
        displaced_dirty = self._dirty[home]
        evicted = None
        evicted_dirty = False
        if displaced >= 0:
            evicted, evicted_dirty = self._relocate(displaced, displaced_dirty)
        self._blocks[home] = block
        self._dirty[home] = is_write
        return AccessResult(
            hit=False, set_index=home, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _probe_block(self, block: int) -> bool:
        home = block & self._index_mask
        if self._blocks[home] == block:
            return True
        frame = self._opd.get(block)
        return frame is not None and self._blocks[frame] == block

    def _flush_state(self) -> None:
        self._blocks = [-1] * self.num_sets
        self._dirty = [False] * self.num_sets
        self._sht.clear()
        self._opd.clear()
        self.direct_hits = 0
        self.relocated_hits = 0

    # ------------------------------------------------------------------
    @property
    def relocated_hit_fraction(self) -> float:
        """Fraction of hits served out of position (the 3-cycle hits the
        paper charges against the AGAC; 5.24% in its evaluation)."""
        total = self.direct_hits + self.relocated_hits
        if not total:
            return 0.0
        return self.relocated_hits / total
