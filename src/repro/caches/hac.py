"""Highly associative cache (HAC) — Section 6.7's comparison point.

The HAC is an aggressively partitioned CAM-tag cache for low-power
embedded systems: the cache is split into small (1 kB) subarrays, a
global decoder selects one subarray, and a CAM holding the *entire*
remaining tag resolves the block within it.  As the paper observes,
"the HAC is an extreme case of the B-Cache, where the decoder of the
HAC is fully programmable" — so behaviourally it is a set-associative
cache whose set is the subarray, with full-tag CAM width (26 bits for
the 16 kB, 32-way example, vs the B-Cache's 6-bit PD).

The class exposes the CAM width so the energy model can quantify the
claim that the B-Cache achieves similar miss-rate reductions with a
far narrower CAM.
"""

from __future__ import annotations

from repro.caches.base import log2_exact
from repro.caches.set_associative import SetAssociativeCache
from repro.trace.access import ADDRESS_BITS


class HighlyAssociativeCache(SetAssociativeCache):
    """CAM-tag cache partitioned into fully associative subarrays."""

    #: Status bits stored alongside each CAM tag (valid + dirty + lock),
    #: matching the paper's "23 + 3(status) = 26 bits" accounting.
    STATUS_BITS = 3

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        subarray_size: int = 1024,
        policy: str = "fifo",
        seed: int = 0,
        name: str = "",
    ) -> None:
        if size % subarray_size:
            raise ValueError(
                f"size {size} is not a multiple of subarray_size {subarray_size}"
            )
        ways = subarray_size // line_size
        super().__init__(
            size,
            line_size,
            ways=ways,
            policy=policy,
            seed=seed,
            name=name or f"HAC-{size // 1024}kB-{ways}way",
        )
        self.subarray_size = subarray_size
        self.num_subarrays = size // subarray_size

    @property
    def cam_tag_bits(self) -> int:
        """Width of each CAM tag entry, excluding status bits.

        Everything above the subarray-select and block-offset bits must
        be matched in the CAM.
        """
        subarray_bits = log2_exact(self.num_subarrays, "number of subarrays")
        return ADDRESS_BITS - self.offset_bits - subarray_bits

    @property
    def cam_entry_bits(self) -> int:
        """CAM width including status bits (the paper's 26 for 16 kB)."""
        return self.cam_tag_bits + self.STATUS_BITS
