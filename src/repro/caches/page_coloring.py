"""OS page-colouring with a Cache Miss Lookaside buffer — Section 7.1.

The first prior-art family the paper discusses (Bershad et al. [7]):
the operating system detects conflict misses with a **Cache Miss
Lookaside (CML) buffer** — a small table counting misses per page —
and dynamically **recolours** pages that miss heavily, i.e. remaps
them to a different cache-colour (the index bits above the page
offset).  The paper's summary: "their technique enables a direct-mapped
cache to perform nearly as well as a two-way set associative cache",
against the B-Cache's 4-way-class reductions in pure hardware.

Model
-----
The cache is direct-mapped, but the index's colour bits come from a
per-page colour table rather than from the address, which is exactly
what physical page placement achieves.  Stored blocks keep their full
block address (recolouring changes where a page's blocks index).  The
CML buffer counts misses per virtual page; crossing ``threshold``
triggers a recolour to the currently least-missed colour, invalidating
the page's resident blocks (the OS copy cost is tracked as
``recolored_pages``).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.caches.base import AccessResult, Cache, log2_exact


class PageColoringCache(Cache):
    """Direct-mapped cache under OS dynamic page recolouring."""

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        page_size: int = 4096,
        cml_entries: int = 64,
        threshold: int = 32,
        cooldown: int = 512,
        max_recolors_per_page: int = 4,
        name: str = "",
    ) -> None:
        num_sets = size // line_size
        super().__init__(size, line_size, num_sets, name or f"PageColor-{size // 1024}kB")
        if page_size % line_size:
            raise ValueError("page_size must be a multiple of line_size")
        if size % page_size:
            raise ValueError("cache size must be a multiple of page_size")
        self.page_size = page_size
        self.page_bits = log2_exact(page_size, "page_size")
        self.index_bits = log2_exact(num_sets, "number of sets")
        self._index_mask = num_sets - 1
        self.num_colors = size // page_size
        self.color_bits = log2_exact(self.num_colors, "number of colors")
        # Blocks-per-page worth of low index bits come from the page
        # offset; the top color_bits of the index are programmable.
        self._page_index_bits = self.index_bits - self.color_bits
        self._page_index_mask = (1 << self._page_index_bits) - 1
        self.cml_entries = cml_entries
        self.threshold = threshold
        #: OS damping: minimum misses between successive recolours and a
        #: lifetime recolour cap per page, preventing remap storms when
        #: misses are capacity-driven (recolouring cannot fix those).
        self.cooldown = cooldown
        self.max_recolors_per_page = max_recolors_per_page
        self._miss_counter = 0
        self._last_recolor_at = -(10**9)
        self._page_recolors: dict[int, int] = {}
        self._blocks = [-1] * num_sets
        self._dirty = [False] * num_sets
        # page -> assigned color (default: the address's own bits).
        self._colors: dict[int, int] = {}
        # CML buffer: page -> miss count (bounded, LRU).
        self._cml: OrderedDict[int, int] = OrderedDict()
        # Per-color conflict pressure, for choosing recolour targets.
        self._color_pressure = [0] * self.num_colors
        self.recolored_pages = 0

    # ------------------------------------------------------------------
    def _page_of_block(self, block: int) -> int:
        return block >> (self.page_bits - self.offset_bits)

    def _default_color(self, page: int) -> int:
        return page & (self.num_colors - 1)

    def _index_of(self, block: int) -> int:
        page = self._page_of_block(block)
        color = self._colors.get(page)
        if color is None:
            color = self._default_color(page)
        return (color << self._page_index_bits) | (block & self._page_index_mask)

    def _record_miss(self, block: int) -> None:
        self._miss_counter += 1
        page = self._page_of_block(block)
        color = self._colors.get(page, self._default_color(page))
        self._color_pressure[color] += 1
        count = self._cml.get(page, 0) + 1
        self._cml[page] = count
        self._cml.move_to_end(page)
        if len(self._cml) > self.cml_entries:
            self._cml.popitem(last=False)
        if (
            count >= self.threshold
            and self._miss_counter - self._last_recolor_at >= self.cooldown
            and self._page_recolors.get(page, 0) < self.max_recolors_per_page
        ):
            self._recolor(page)

    def _recolor(self, page: int) -> None:
        """OS policy: move the page to the least-pressured colour."""
        current = self._colors.get(page, self._default_color(page))
        target = min(range(self.num_colors), key=lambda c: self._color_pressure[c])
        self._cml[page] = 0
        self._last_recolor_at = self._miss_counter
        self._page_recolors[page] = self._page_recolors.get(page, 0) + 1
        # Age the pressure history so old hot spots do not pin the
        # colour choice forever.
        self._color_pressure = [p // 2 for p in self._color_pressure]
        if target == current:
            return
        # Invalidate the page's resident blocks (the OS copies the page
        # to a new frame; cached lines of the old frame die).
        low = page << (self.page_bits - self.offset_bits)
        high = low + (self.page_size // self.line_size)
        for index in range(self.num_sets):
            if low <= self._blocks[index] < high:
                self._blocks[index] = -1
                self._dirty[index] = False
        self._colors[page] = target
        self.recolored_pages += 1

    # ------------------------------------------------------------------
    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        index = self._index_of(block)
        if self._blocks[index] == block:
            if is_write:
                self._dirty[index] = True
            return AccessResult(hit=True, set_index=index)
        # Record the miss first: it may recolour the page, which both
        # invalidates the page's stale lines and moves its index — the
        # fill below must land at the *new* location.
        self._record_miss(block)
        index = self._index_of(block)
        evicted = None
        evicted_dirty = False
        if self._blocks[index] >= 0:
            evicted = self._blocks[index] << self.offset_bits
            evicted_dirty = self._dirty[index]
        self._blocks[index] = block
        self._dirty[index] = is_write
        return AccessResult(
            hit=False, set_index=index, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _probe_block(self, block: int) -> bool:
        return self._blocks[self._index_of(block)] == block

    def _flush_state(self) -> None:
        self._blocks = [-1] * self.num_sets
        self._dirty = [False] * self.num_sets
        self._colors.clear()
        self._cml.clear()
        self._color_pressure = [0] * self.num_colors
        self.recolored_pages = 0
        self._miss_counter = 0
        self._last_recolor_at = -(10**9)
        self._page_recolors.clear()
