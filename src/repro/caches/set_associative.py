"""Conventional N-way set-associative cache.

The paper compares the baseline against 2-, 4-, 8- and 32-way caches of
the same size with LRU replacement (Figures 4, 5, 8, 9, 12).  An N-way
cache shortens the index by log2(N) bits relative to the direct-mapped
baseline and chooses a victim among N blocks per set.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.caches import columnar
from repro.caches.base import AccessResult, Cache, log2_exact
from repro.replacement import ReplacementPolicy, make_policy
from repro.replacement.lru import LRUPolicy
from repro.stats.counters import CacheStats


class SetAssociativeCache(Cache):
    """N-way set-associative cache with a pluggable replacement policy."""

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        ways: int = 2,
        policy: str = "lru",
        seed: int = 0,
        name: str = "",
    ) -> None:
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        num_blocks = size // line_size
        if num_blocks % ways:
            raise ValueError(f"{size}B/{line_size}B cache cannot be {ways}-way")
        num_sets = num_blocks // ways
        super().__init__(
            size, line_size, num_sets, name or f"{size // 1024}kB-{ways}way"
        )
        self.ways = ways
        self.index_bits = log2_exact(num_sets, "number of sets")
        self._index_mask = num_sets - 1
        self.policy_name = policy
        self._seed = seed
        self._tags: list[list[int]] = [[-1] * ways for _ in range(num_sets)]
        self._dirty: list[list[bool]] = [[False] * ways for _ in range(num_sets)]
        self._policies: list[ReplacementPolicy] = [
            make_policy(policy, ways, seed=seed + i) for i in range(num_sets)
        ]

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        index = block & self._index_mask
        tag = block >> self.index_bits
        tags = self._tags[index]
        policy = self._policies[index]
        for way in range(self.ways):
            if tags[way] == tag:
                policy.touch(way)
                if is_write:
                    self._dirty[index][way] = True
                return AccessResult(hit=True, set_index=index)
        way = policy.victim()
        evicted = None
        evicted_dirty = False
        if tags[way] >= 0:
            evicted = ((tags[way] << self.index_bits) | index) << self.offset_bits
            evicted_dirty = self._dirty[index][way]
        tags[way] = tag
        self._dirty[index][way] = is_write
        policy.touch(way)
        return AccessResult(
            hit=False, set_index=index, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _batch_trace(
        self,
        addresses: Sequence[int],
        kinds: Sequence[int] | None,
    ) -> CacheStats:
        """Allocation-free batch kernel (see :meth:`Cache.access_trace`)."""
        if type(self)._access_block is not SetAssociativeCache._access_block:
            # A subclass customises per-access behaviour (way-prediction
            # bookkeeping, partial-tag probes, ...); the generic kernel
            # drives its _access_block override instead of this one.
            return super()._batch_trace(addresses, kinds)
        stats = self.stats
        tags_by_set = self._tags
        dirty_by_set = self._dirty
        policies = self._policies
        index_mask = self._index_mask
        index_bits = self.index_bits
        offset_bits = self.offset_bits
        set_accesses = stats.set_accesses
        set_hits = stats.set_hits
        set_misses = stats.set_misses
        num_sets = self.num_sets
        n = len(addresses)
        if kinds is None:
            kinds = bytes(n)  # all reads
        ways = self.ways
        num_blocks = self.num_blocks
        # Hits dominate: the hot loop only bumps per-set misses; per-set
        # hits are reconstructed from the deltas afterwards (final
        # statistics stay bit-identical to per-access replay).
        accesses_before = set_accesses.copy()
        misses_before = set_misses.copy()
        # Column preparation: the address math vectorises even though
        # the replacement-policy state is inherently sequential.  The
        # stdlib fallback builds the same column with a comprehension.
        columns = columnar.block_columns(
            addresses, offset_bits, index_mask, num_sets
        )
        lru_fast = all(type(p) is LRUPolicy for p in policies)
        hit_way_counts: list[int] | None = None
        if columns is not None:
            block_column, counts = columns
            columnar.add_set_counts(set_accesses, counts)
        else:
            block_column = [a >> offset_bits for a in addresses]
            if lru_fast:
                # The LRU loop below counts hits per way slot; together
                # with the per-set miss counts that recovers per-set
                # accesses without a separate whole-column masking pass
                # (which costs ~25% of the stdlib kernel).
                hit_way_counts = [0] * num_blocks
            else:
                for set_index, count in Counter(
                    b & index_mask for b in block_column
                ).items():
                    set_accesses[set_index] += count
        # Flattened state, indexed by global way id ``set * ways + way``:
        # one {block: global way} map resolves a reference with a single
        # hash probe, so the hit path never derives index or tag at all.
        lookup: dict[int, int] = {}
        resident_blocks = [-1] * num_blocks
        dirty_flat = [False] * num_blocks
        for index in range(num_sets):
            base = index * ways
            row_tags = tags_by_set[index]
            row_dirty = dirty_by_set[index]
            for way in range(ways):
                resident_tag = row_tags[way]
                if resident_tag >= 0:
                    resident = (resident_tag << index_bits) | index
                    lookup[resident] = base + way
                    resident_blocks[base + way] = resident
                dirty_flat[base + way] = row_dirty[way]
        # Exact LRU is the common case; its touch() is pure recency
        # maintenance with no RNG, so it runs on a flat timestamp
        # column: a hit is one list store, the victim scan (min of N)
        # only runs on misses, and the policies' recency lists are
        # rebuilt bit-identically from the stamps after the loop.
        ts_flat: list[int] | None = None
        if lru_fast:
            ts_flat = [0] * num_blocks
            for index, policy in enumerate(policies):
                base = index * ways
                for position, way in enumerate(policy._order):
                    ts_flat[base + way] = -position
        stamp = 0
        misses = writes = evictions = writebacks = 0
        if ts_flat is not None and hit_way_counts is not None:
            # Same loop as below plus the one-store hit count; kept as
            # a separate variant so the numpy-assisted path (whose
            # per-set counts already came from bincount) pays nothing.
            for block, kind in zip(block_column, kinds):
                try:
                    way = lookup[block]
                    hit_way_counts[way] += 1
                    stamp += 1
                    ts_flat[way] = stamp
                    if kind == 1:
                        writes += 1
                        dirty_flat[way] = True
                except KeyError:
                    index = block & index_mask
                    misses += 1
                    set_misses[index] += 1
                    base = index * ways
                    segment = ts_flat[base:base + ways]
                    way = base + segment.index(min(segment))
                    stamp += 1
                    ts_flat[way] = stamp
                    resident = resident_blocks[way]
                    if resident >= 0:
                        evictions += 1
                        if dirty_flat[way]:
                            writebacks += 1
                        del lookup[resident]
                    lookup[block] = way
                    resident_blocks[way] = block
                    is_write = kind == 1
                    if is_write:
                        writes += 1
                    dirty_flat[way] = is_write
        elif ts_flat is not None:
            for block, kind in zip(block_column, kinds):
                try:
                    way = lookup[block]
                    stamp += 1
                    ts_flat[way] = stamp
                    if kind == 1:
                        writes += 1
                        dirty_flat[way] = True
                except KeyError:
                    index = block & index_mask
                    misses += 1
                    set_misses[index] += 1
                    base = index * ways
                    segment = ts_flat[base:base + ways]
                    way = base + segment.index(min(segment))
                    stamp += 1
                    ts_flat[way] = stamp
                    resident = resident_blocks[way]
                    if resident >= 0:
                        evictions += 1
                        if dirty_flat[way]:
                            writebacks += 1
                        del lookup[resident]
                    lookup[block] = way
                    resident_blocks[way] = block
                    is_write = kind == 1
                    if is_write:
                        writes += 1
                    dirty_flat[way] = is_write
        else:
            for block, kind in zip(block_column, kinds):
                try:
                    way = lookup[block]
                    policies[way // ways].touch(way % ways)
                    if kind == 1:
                        writes += 1
                        dirty_flat[way] = True
                except KeyError:
                    index = block & index_mask
                    misses += 1
                    set_misses[index] += 1
                    policy = policies[index]
                    victim = policy.victim()
                    policy.touch(victim)
                    way = index * ways + victim
                    resident = resident_blocks[way]
                    if resident >= 0:
                        evictions += 1
                        if dirty_flat[way]:
                            writebacks += 1
                        del lookup[resident]
                    lookup[block] = way
                    resident_blocks[way] = block
                    is_write = kind == 1
                    if is_write:
                        writes += 1
                    dirty_flat[way] = is_write
        # Write the flattened state back into the per-set structures.
        for index in range(num_sets):
            base = index * ways
            row_tags = tags_by_set[index]
            row_dirty = dirty_by_set[index]
            for way in range(ways):
                resident = resident_blocks[base + way]
                row_tags[way] = resident >> index_bits if resident >= 0 else -1
                row_dirty[way] = dirty_flat[base + way]
        if ts_flat is not None:
            for index, policy in enumerate(policies):
                base = index * ways
                segment = ts_flat[base:base + ways]
                policy._order.sort(key=segment.__getitem__, reverse=True)
        if hit_way_counts is not None:
            # accesses = hits (counted per way slot) + misses (counted
            # per set); folding both in here keeps the set_hits
            # reconstruction below oblivious to how counting happened.
            for slot, count in enumerate(hit_way_counts):
                if count:
                    set_accesses[slot // ways] += count
            for set_index, before in enumerate(misses_before):
                miss_delta = set_misses[set_index] - before
                if miss_delta:
                    set_accesses[set_index] += miss_delta
        for set_index, before in enumerate(accesses_before):
            delta = set_accesses[set_index] - before
            if delta:
                set_hits[set_index] += delta - (
                    set_misses[set_index] - misses_before[set_index]
                )
        hits = n - misses
        stats.accesses += n
        stats.reads += n - writes
        stats.writes += writes
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        # A fixed decoder always selects a set: every miss is a PD hit.
        stats.pd_hit_misses += misses
        return stats

    def _probe_block(self, block: int) -> bool:
        index = block & self._index_mask
        tag = block >> self.index_bits
        return tag in self._tags[index]

    def _flush_state(self) -> None:
        for index in range(self.num_sets):
            self._tags[index] = [-1] * self.ways
            self._dirty[index] = [False] * self.ways
            self._policies[index] = make_policy(
                self.policy_name, self.ways, seed=self._seed + index
            )
