"""Conventional N-way set-associative cache.

The paper compares the baseline against 2-, 4-, 8- and 32-way caches of
the same size with LRU replacement (Figures 4, 5, 8, 9, 12).  An N-way
cache shortens the index by log2(N) bits relative to the direct-mapped
baseline and chooses a victim among N blocks per set.
"""

from __future__ import annotations

from typing import Sequence

from repro.caches.base import AccessResult, Cache, log2_exact
from repro.replacement import ReplacementPolicy, make_policy
from repro.replacement.lru import LRUPolicy
from repro.stats.counters import CacheStats


class SetAssociativeCache(Cache):
    """N-way set-associative cache with a pluggable replacement policy."""

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        ways: int = 2,
        policy: str = "lru",
        seed: int = 0,
        name: str = "",
    ) -> None:
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        num_blocks = size // line_size
        if num_blocks % ways:
            raise ValueError(f"{size}B/{line_size}B cache cannot be {ways}-way")
        num_sets = num_blocks // ways
        super().__init__(
            size, line_size, num_sets, name or f"{size // 1024}kB-{ways}way"
        )
        self.ways = ways
        self.index_bits = log2_exact(num_sets, "number of sets")
        self._index_mask = num_sets - 1
        self.policy_name = policy
        self._seed = seed
        self._tags: list[list[int]] = [[-1] * ways for _ in range(num_sets)]
        self._dirty: list[list[bool]] = [[False] * ways for _ in range(num_sets)]
        self._policies: list[ReplacementPolicy] = [
            make_policy(policy, ways, seed=seed + i) for i in range(num_sets)
        ]

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        index = block & self._index_mask
        tag = block >> self.index_bits
        tags = self._tags[index]
        policy = self._policies[index]
        for way in range(self.ways):
            if tags[way] == tag:
                policy.touch(way)
                if is_write:
                    self._dirty[index][way] = True
                return AccessResult(hit=True, set_index=index)
        way = policy.victim()
        evicted = None
        evicted_dirty = False
        if tags[way] >= 0:
            evicted = ((tags[way] << self.index_bits) | index) << self.offset_bits
            evicted_dirty = self._dirty[index][way]
        tags[way] = tag
        self._dirty[index][way] = is_write
        policy.touch(way)
        return AccessResult(
            hit=False, set_index=index, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _batch_trace(
        self,
        addresses: Sequence[int],
        kinds: Sequence[int] | None,
    ) -> CacheStats:
        """Allocation-free batch kernel (see :meth:`Cache.access_trace`)."""
        if type(self)._access_block is not SetAssociativeCache._access_block:
            # A subclass customises per-access behaviour (way-prediction
            # bookkeeping, partial-tag probes, ...); the generic kernel
            # drives its _access_block override instead of this one.
            return super()._batch_trace(addresses, kinds)
        stats = self.stats
        tags_by_set = self._tags
        dirty_by_set = self._dirty
        policies = self._policies
        index_mask = self._index_mask
        index_bits = self.index_bits
        offset_bits = self.offset_bits
        set_accesses = stats.set_accesses
        set_hits = stats.set_hits
        set_misses = stats.set_misses
        # Exact LRU is the common case; its touch() is pure recency-list
        # maintenance with no RNG, so it can be inlined verbatim.
        lru_fast = all(type(p) is LRUPolicy for p in policies)
        n = len(addresses)
        if kinds is None:
            kinds = bytes(n)  # all reads
        hits = misses = writes = evictions = writebacks = 0
        for address, kind in zip(addresses, kinds):
            block = address >> offset_bits
            index = block & index_mask
            tag = block >> index_bits
            tags = tags_by_set[index]
            set_accesses[index] += 1
            try:
                way = tags.index(tag)
            except ValueError:
                way = -1
            if way >= 0:
                hits += 1
                set_hits[index] += 1
                policy = policies[index]
                if lru_fast:
                    order = policy._order
                    if order[0] != way:
                        order.remove(way)
                        order.insert(0, way)
                else:
                    policy.touch(way)
                if kind == 1:
                    writes += 1
                    dirty_by_set[index][way] = True
            else:
                misses += 1
                set_misses[index] += 1
                policy = policies[index]
                way = policy.victim()
                if tags[way] >= 0:
                    evictions += 1
                    if dirty_by_set[index][way]:
                        writebacks += 1
                tags[way] = tag
                is_write = kind == 1
                if is_write:
                    writes += 1
                dirty_by_set[index][way] = is_write
                policy.touch(way)
        stats.accesses += n
        stats.reads += n - writes
        stats.writes += writes
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        # A fixed decoder always selects a set: every miss is a PD hit.
        stats.pd_hit_misses += misses
        return stats

    def _probe_block(self, block: int) -> bool:
        index = block & self._index_mask
        tag = block >> self.index_bits
        return tag in self._tags[index]

    def _flush_state(self) -> None:
        for index in range(self.num_sets):
            self._tags[index] = [-1] * self.ways
            self._dirty[index] = [False] * self.ways
            self._policies[index] = make_policy(
                self.policy_name, self.ways, seed=self._seed + index
            )
