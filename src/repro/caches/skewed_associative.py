"""Skewed-associative cache (Seznec).

Prior art from Section 7.1: a 2-way cache where each way is indexed by
a different XOR-based hash of the address, so two blocks conflicting in
one way rarely conflict in the other.  The paper reports it reaches the
miss rate of a same-sized 4-way cache; the B-Cache matches that while
remaining direct-mapped (single array probe, faster access).

Blocks store their full block address because the skewing functions
are not invertible from (way, set, tag) alone in a uniform way.
"""

from __future__ import annotations

from repro.caches.base import AccessResult, Cache, log2_exact
from repro.replacement import make_policy


def _rotate_left(value: int, amount: int, width: int) -> int:
    amount %= width
    mask = (1 << width) - 1
    return ((value << amount) | (value >> (width - amount))) & mask


class SkewedAssociativeCache(Cache):
    """N-way skewed-associative cache with per-way XOR hashing."""

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        ways: int = 2,
        policy: str = "random",
        seed: int = 0,
        name: str = "",
    ) -> None:
        num_blocks = size // line_size
        if num_blocks % ways:
            raise ValueError(f"{size}B/{line_size}B cache cannot be {ways}-way skewed")
        sets_per_way = num_blocks // ways
        super().__init__(
            size, line_size, sets_per_way, name or f"Skew-{size // 1024}kB-{ways}way"
        )
        self.ways = ways
        self.sets_per_way = sets_per_way
        self.index_bits = log2_exact(sets_per_way, "sets per way")
        self._mask = sets_per_way - 1
        self.policy_name = policy
        self._seed = seed
        self._blocks = [[-1] * sets_per_way for _ in range(ways)]
        self._dirty = [[False] * sets_per_way for _ in range(ways)]
        # Per (way, set) pseudo-time of last touch, for an NRU-flavoured
        # choice between candidate frames; random policy breaks ties.
        self._policy = make_policy(policy, ways, seed=seed)
        self._last_touch = [[-1] * sets_per_way for _ in range(ways)]
        self._clock = 0

    def skew_index(self, block: int, way: int) -> int:
        """Seznec-style skewing.

        Way 0 keeps the conventional index; each further way XORs the
        index with a differently rotated slice of the tag, so blocks
        conflicting in one way scatter in the others.
        """
        a1 = block & self._mask
        if way == 0:
            return a1
        a2 = (block >> self.index_bits) & self._mask
        return a1 ^ _rotate_left(a2, way - 1, self.index_bits)

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        self._clock += 1
        indices = [self.skew_index(block, way) for way in range(self.ways)]
        for way, index in enumerate(indices):
            if self._blocks[way][index] == block:
                if is_write:
                    self._dirty[way][index] = True
                self._last_touch[way][index] = self._clock
                return AccessResult(hit=True, set_index=index)

        # Miss: prefer an empty frame, otherwise evict the least
        # recently touched candidate frame.
        empty = [w for w, i in enumerate(indices) if self._blocks[w][i] < 0]
        if empty:
            way = empty[0]
        else:
            way = min(range(self.ways), key=lambda w: self._last_touch[w][indices[w]])
        index = indices[way]
        evicted = None
        evicted_dirty = False
        if self._blocks[way][index] >= 0:
            evicted = self._blocks[way][index] << self.offset_bits
            evicted_dirty = self._dirty[way][index]
        self._blocks[way][index] = block
        self._dirty[way][index] = is_write
        self._last_touch[way][index] = self._clock
        return AccessResult(
            hit=False, set_index=index, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _probe_block(self, block: int) -> bool:
        for way in range(self.ways):
            if self._blocks[way][self.skew_index(block, way)] == block:
                return True
        return False

    def _flush_state(self) -> None:
        self._blocks = [[-1] * self.sets_per_way for _ in range(self.ways)]
        self._dirty = [[False] * self.sets_per_way for _ in range(self.ways)]
        self._last_touch = [[-1] * self.sets_per_way for _ in range(self.ways)]
        self._clock = 0
