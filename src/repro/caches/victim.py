"""Direct-mapped cache with a victim buffer (Jouppi).

The paper's main prior-art comparison point (Sections 2.1 and 6.6): a
small fully associative buffer catches blocks recently evicted from a
direct-mapped cache.  A buffer hit swaps the block back into the main
cache and costs one extra cycle when the buffer is probed sequentially
after the main cache — the latency penalty the B-Cache avoids.

The evaluated configuration is 16 entries with 32-byte lines.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.caches.base import AccessResult, Cache, log2_exact


class VictimBufferCache(Cache):
    """Direct-mapped main cache backed by a small fully associative buffer."""

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        victim_entries: int = 16,
        name: str = "",
    ) -> None:
        num_sets = size // line_size
        super().__init__(
            size, line_size, num_sets, name or f"DM-{size // 1024}kB+victim{victim_entries}"
        )
        if victim_entries < 1:
            raise ValueError(f"victim_entries must be >= 1, got {victim_entries}")
        self.victim_entries = victim_entries
        self.index_bits = log2_exact(num_sets, "number of sets")
        self._index_mask = num_sets - 1
        self._tags = [-1] * num_sets
        self._dirty = [False] * num_sets
        # Victim buffer: block -> dirty flag, insertion-ordered (LRU via
        # move-to-end on hit).
        self._buffer: OrderedDict[int, bool] = OrderedDict()
        self.victim_hits = 0
        self.main_hits = 0

    # ------------------------------------------------------------------
    def _buffer_insert(self, block: int, dirty: bool) -> tuple[int | None, bool]:
        """Insert a block into the buffer; return any evicted (block, dirty)."""
        evicted: tuple[int | None, bool] = (None, False)
        if block in self._buffer:
            self._buffer[block] = self._buffer[block] or dirty
            self._buffer.move_to_end(block)
            return evicted
        if len(self._buffer) >= self.victim_entries:
            old_block, old_dirty = next(iter(self._buffer.items()))
            del self._buffer[old_block]
            evicted = (old_block, old_dirty)
        self._buffer[block] = dirty
        return evicted

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        index = block & self._index_mask
        tag = block >> self.index_bits
        if self._tags[index] == tag:
            self.main_hits += 1
            if is_write:
                self._dirty[index] = True
            return AccessResult(hit=True, set_index=index)

        displaced_block = None
        displaced_dirty = False
        if self._tags[index] >= 0:
            displaced_block = (self._tags[index] << self.index_bits) | index
            displaced_dirty = self._dirty[index]

        if block in self._buffer:
            # Victim-buffer hit: swap the block into the main cache.
            self.victim_hits += 1
            buffered_dirty = self._buffer.pop(block)
            self._tags[index] = tag
            self._dirty[index] = buffered_dirty or is_write
            if displaced_block is not None:
                self._buffer_insert(displaced_block, displaced_dirty)
            # Swaps never write anything back to the next level.
            return AccessResult(hit=True, set_index=index)

        # Full miss: refill the main cache, displaced block enters the
        # buffer, and the buffer's LRU block (if any) leaves the system.
        self._tags[index] = tag
        self._dirty[index] = is_write
        evicted = None
        evicted_dirty = False
        if displaced_block is not None:
            out_block, out_dirty = self._buffer_insert(displaced_block, displaced_dirty)
            if out_block is not None:
                evicted = out_block << self.offset_bits
                evicted_dirty = out_dirty
        return AccessResult(
            hit=False, set_index=index, evicted=evicted, evicted_dirty=evicted_dirty
        )

    def _probe_block(self, block: int) -> bool:
        index = block & self._index_mask
        if self._tags[index] == block >> self.index_bits:
            return True
        return block in self._buffer

    def _flush_state(self) -> None:
        self._tags = [-1] * self.num_sets
        self._dirty = [False] * self.num_sets
        self._buffer.clear()
        self.victim_hits = 0
        self.main_hits = 0

    @property
    def victim_hit_fraction(self) -> float:
        """Fraction of all hits served by the buffer (extra-cycle hits)."""
        total = self.stats.hits
        if not total:
            return 0.0
        return self.victim_hits / total
