"""Way-predicting set-associative caches — Section 7.2's prior art.

Two latency-reduction techniques for set-associative caches that the
paper contrasts with the B-Cache:

* **Partial address matching** (Liu): the tag store is split into a
  Partial Address Directory (a few low tag bits) and a Main Directory.
  The PAD picks the predicted way fast; the MD verifies.  A wrong
  prediction costs a second cycle.
* **Predictive sequential associative cache** (Calder et al.): probe
  the MRU-predicted way first; on a first-probe miss, probe the rest
  sequentially — hits in a non-predicted way take extra cycles.

Both reach a set-associative miss rate but with *variable hit
latency*, which "disrupts the datapath pipeline" (Section 2.1) — the
property the B-Cache's constant one-cycle hit avoids.  The models here
track first-probe and slow hits so the latency comparison experiment
can quantify that argument.
"""

from __future__ import annotations

from repro.caches.base import AccessResult
from repro.caches.set_associative import SetAssociativeCache


class PartialAddressMatchingCache(SetAssociativeCache):
    """Set-associative cache with PAD-based way prediction.

    The PAD holds ``pad_bits`` low tag bits per way.  A lookup compares
    the address's partial tag against every way's PAD entry; if exactly
    one way matches it is predicted and, when the full tag verifies,
    the access completes in one cycle.  Multiple PAD matches or a
    mispredicted way cost a second cycle.
    """

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        ways: int = 2,
        pad_bits: int = 5,
        policy: str = "lru",
        seed: int = 0,
        name: str = "",
    ) -> None:
        super().__init__(
            size, line_size, ways=ways, policy=policy, seed=seed,
            name=name or f"PAM-{size // 1024}kB-{ways}way",
        )
        if pad_bits < 1:
            raise ValueError("pad_bits must be >= 1")
        self.pad_bits = pad_bits
        self._pad_mask = (1 << pad_bits) - 1
        self.fast_hits = 0
        self.slow_hits = 0

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        index = block & self._index_mask
        tag = block >> self.index_bits
        partial = tag & self._pad_mask
        tags = self._tags[index]
        pad_matches = [
            way
            for way in range(self.ways)
            if tags[way] >= 0 and (tags[way] & self._pad_mask) == partial
        ]
        result = super()._access_block(block, is_write)
        if result.hit:
            # Unique PAD match that is also the right way: fast hit.
            if len(pad_matches) == 1 and tags[pad_matches[0]] == tag:
                self.fast_hits += 1
            else:
                self.slow_hits += 1
        return result

    @property
    def slow_hit_fraction(self) -> float:
        total = self.fast_hits + self.slow_hits
        if not total:
            return 0.0
        return self.slow_hits / total

    def _flush_state(self) -> None:
        super()._flush_state()
        self.fast_hits = 0
        self.slow_hits = 0


class PredictiveSequentialCache(SetAssociativeCache):
    """MRU way prediction with sequential fallback probes.

    Tracks, per set, the most recently used way; a hit there is fast,
    a hit anywhere else charges one extra probe per way tried (the
    model reports the average via ``extra_probe_count``).
    """

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        ways: int = 2,
        policy: str = "lru",
        seed: int = 0,
        name: str = "",
    ) -> None:
        super().__init__(
            size, line_size, ways=ways, policy=policy, seed=seed,
            name=name or f"PSA-{size // 1024}kB-{ways}way",
        )
        self._mru = [0] * self.num_sets
        self.fast_hits = 0
        self.slow_hits = 0
        self.extra_probe_count = 0

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        index = block & self._index_mask
        tag = block >> self.index_bits
        predicted = self._mru[index]
        tags = self._tags[index]
        hit_way = None
        for way in range(self.ways):
            if tags[way] == tag:
                hit_way = way
                break
        result = super()._access_block(block, is_write)
        if result.hit:
            assert hit_way is not None
            if hit_way == predicted:
                self.fast_hits += 1
            else:
                self.slow_hits += 1
                # Probe order: predicted way first, then the others in
                # way order — count the extra probes needed.
                order = [predicted] + [w for w in range(self.ways) if w != predicted]
                self.extra_probe_count += order.index(hit_way)
            self._mru[index] = hit_way
        else:
            # Refill goes to whichever way the base class chose; it is
            # now the MRU way.
            for way in range(self.ways):
                if tags[way] == tag:
                    self._mru[index] = way
                    break
        return result

    @property
    def slow_hit_fraction(self) -> float:
        total = self.fast_hits + self.slow_hits
        if not total:
            return 0.0
        return self.slow_hits / total

    def _flush_state(self) -> None:
        super()._flush_state()
        self._mru = [0] * self.num_sets
        self.fast_hits = 0
        self.slow_hits = 0
        self.extra_probe_count = 0
