"""Write-policy wrapper: write-through and write-no-allocate variants.

The study's caches are write-back, write-allocate (the common L1
choice and the paper's implicit configuration).  Real deployments also
use write-through and/or write-no-allocate L1s — embedded parts
especially, the B-Cache's other target market — so this wrapper turns
any organisation into any of the four policy combinations without
touching the underlying models:

* **write-through** — every write is propagated to the next level
  immediately (counted in ``writethroughs``); lines are never dirty,
  so evictions never write back.
* **write-no-allocate** — a write miss does not fill the cache; the
  write goes straight to the next level.

Statistics are kept on the wrapper (the inner cache sees only the
accesses the policy forwards), so miss rates remain comparable.
"""

from __future__ import annotations

from repro.caches.base import AccessResult, Cache


class WritePolicyCache(Cache):
    """Wrap a cache with configurable write policies."""

    def __init__(
        self,
        inner: Cache,
        write_allocate: bool = True,
        write_through: bool = False,
        name: str = "",
    ) -> None:
        super().__init__(
            inner.size,
            inner.line_size,
            inner.num_sets,
            name or f"{inner.name}+{'WT' if write_through else 'WB'}"
                    f"{'' if write_allocate else '-WNA'}",
        )
        self.inner = inner
        self.write_allocate = write_allocate
        self.write_through = write_through
        #: Writes sent to the next level by the write-through policy
        #: (or by no-allocate write misses).
        self.writethroughs = 0

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        address = block << self.offset_bits
        if is_write and not self.write_allocate and not self.inner.contains(address):
            # Write miss without allocation: bypass the cache entirely.
            self.writethroughs += 1
            # Resolve the set index for statistics without disturbing
            # the inner cache's contents: use the would-be home set of
            # a probe-only mapping.  The inner stats are untouched.
            return AccessResult(hit=False, set_index=0)
        effective_write = is_write and not self.write_through
        result = self.inner.access(address, effective_write)
        if is_write and self.write_through:
            self.writethroughs += 1
        return result

    def _probe_block(self, block: int) -> bool:
        return self.inner.contains(block << self.offset_bits)

    def _flush_state(self) -> None:
        self.inner.flush()
        self.writethroughs = 0

    @property
    def write_traffic(self) -> int:
        """Total writes sent below: write-throughs plus writebacks."""
        return self.writethroughs + self.inner.stats.writebacks
