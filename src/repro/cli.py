"""Command-line runner: regenerate any paper figure or table.

Usage::

    bcache-repro list
    bcache-repro fig3 [--scale smoke|default|full]
    bcache-repro fig4
    bcache-repro fig5
    bcache-repro fig8
    bcache-repro fig9
    bcache-repro fig12
    bcache-repro tab1 tab2 tab3 tab56 tab7
    bcache-repro hac prior-art replacement
    bcache-repro all
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable

from repro.experiments import DEFAULT, FULL, SMOKE, ExperimentScale
from repro.experiments import circuit_tables, comparisons, extensions
from repro.experiments import fig3_mf_sweep, latency_study, miss_decomposition
from repro.experiments import missrate_figures, perf_energy
from repro.experiments import sensitivity, tab56_tradeoff, tab7_balance

_SCALES = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}


@dataclass(frozen=True)
class RunOptions:
    """Engine options shared by the sweep-backed experiments.

    ``run_id`` opts into the crash-safe journal: the id is namespaced
    per experiment (``<run_id>-fig4`` etc.) so one ``bcache-repro all
    --run-id nightly`` invocation resumes each experiment independently
    after a kill.
    """

    jobs: int | None = None
    run_id: str | None = None

    def sub_id(self, name: str) -> str | None:
        return f"{self.run_id}-{name}" if self.run_id else None


def _render_fig3(scale: ExperimentScale, opts: "RunOptions") -> str:
    return fig3_mf_sweep.run(
        scale, jobs=opts.jobs, run_id=opts.sub_id("fig3")
    ).render()


def _render_fig4(scale: ExperimentScale, opts: "RunOptions") -> str:
    return missrate_figures.run_fig4(
        scale, jobs=opts.jobs, run_id=opts.sub_id("fig4")
    ).render()


def _render_fig5(scale: ExperimentScale, opts: "RunOptions") -> str:
    return missrate_figures.run_fig5(
        scale, jobs=opts.jobs, run_id=opts.sub_id("fig5")
    ).render()


def _render_fig12(scale: ExperimentScale, opts: "RunOptions") -> str:
    return missrate_figures.run_fig12(
        scale, jobs=opts.jobs, run_id=opts.sub_id("fig12")
    ).render()


def _render_fig8(scale: ExperimentScale, opts: "RunOptions") -> str:
    return perf_energy.run(scale).render_fig8()


def _render_fig9(scale: ExperimentScale, opts: "RunOptions") -> str:
    return perf_energy.run(scale).render_fig9()


def _render_tab1(scale: ExperimentScale, opts: "RunOptions") -> str:
    return circuit_tables.run_tab1().render()


def _render_tab2(scale: ExperimentScale, opts: "RunOptions") -> str:
    return circuit_tables.run_tab2().render()


def _render_tab3(scale: ExperimentScale, opts: "RunOptions") -> str:
    return circuit_tables.run_tab3().render()


def _render_tab56(scale: ExperimentScale, opts: "RunOptions") -> str:
    return tab56_tradeoff.run(scale).render()


def _render_tab7(scale: ExperimentScale, opts: "RunOptions") -> str:
    return tab7_balance.run(scale).render()


def _render_hac(scale: ExperimentScale, opts: "RunOptions") -> str:
    return comparisons.run_hac(scale).render()


def _render_prior_art(scale: ExperimentScale, opts: "RunOptions") -> str:
    return comparisons.run_prior_art(scale).render(
        "Section 7.1 prior art comparison"
    )


def _render_replacement(scale: ExperimentScale, opts: "RunOptions") -> str:
    return comparisons.run_replacement_ablation(scale).render()


def _render_sensitivity(scale: ExperimentScale, opts: "RunOptions") -> str:
    return (
        sensitivity.run_line_size(scale).render()
        + "\n\n"
        + sensitivity.run_cache_size(scale).render()
    )


def _render_3c(scale: ExperimentScale, opts: "RunOptions") -> str:
    return miss_decomposition.run(scale).render()


def _render_latency(scale: ExperimentScale, opts: "RunOptions") -> str:
    return latency_study.run(scale).render()


def _render_addressing(scale: ExperimentScale, opts: "RunOptions") -> str:
    return extensions.run_addressing().render()


def _render_drowsy(scale: ExperimentScale, opts: "RunOptions") -> str:
    return extensions.run_drowsy(scale).render()


EXPERIMENTS: dict[str, Callable[[ExperimentScale, RunOptions], str]] = {
    "fig3": _render_fig3,
    "fig4": _render_fig4,
    "fig5": _render_fig5,
    "fig8": _render_fig8,
    "fig9": _render_fig9,
    "fig12": _render_fig12,
    "tab1": _render_tab1,
    "tab2": _render_tab2,
    "tab3": _render_tab3,
    "tab56": _render_tab56,
    "tab7": _render_tab7,
    "hac": _render_hac,
    "prior-art": _render_prior_art,
    "replacement": _render_replacement,
    "latency": _render_latency,
    "3c": _render_3c,
    "sensitivity": _render_sensitivity,
    "addressing": _render_addressing,
    "drowsy": _render_drowsy,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-repro``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="bcache-repro",
        description="Regenerate tables/figures from the B-Cache paper (ISCA 2006).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list'), or 'all' / 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="trace-length preset (default: default)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="additionally write the selected experiments into one "
        "markdown report file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep-backed experiments "
        "(default: $REPRO_JOBS or serial); results are bit-identical "
        "to serial runs",
    )
    parser.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="journal sweep results under this id and resume a "
        "previously killed run bit-identically (stored in "
        "$REPRO_RUN_ROOT or ~/.cache/bcache-repro/runs)",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    scale = _SCALES[args.scale]
    opts = RunOptions(jobs=args.jobs, run_id=args.run_id)
    status = 0
    try:
        for name in names:
            runner = EXPERIMENTS.get(name)
            if runner is None:
                print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
                status = 2
                continue
            started = time.time()
            print(f"== {name} (scale={args.scale}) ==")
            print(runner(scale, opts))
            print(f"[{time.time() - started:.1f}s]\n")
    except KeyboardInterrupt:
        print(
            "\nbcache-repro: interrupted — workers terminated"
            + (
                f"; completed jobs are journaled under run id {args.run_id!r} "
                "(rerun with the same --run-id to resume)"
                if args.run_id
                else ""
            ),
            file=sys.stderr,
        )
        return 130

    if args.report and status == 0:
        from repro.experiments.report import write_report

        valid = tuple(name for name in names if name in EXPERIMENTS)
        # Bind this invocation's engine options; with --run-id the
        # report replays journaled results instead of recomputing.
        registry = {
            name: (lambda s, _fn=fn: _fn(s, opts))
            for name, fn in EXPERIMENTS.items()
        }
        path = write_report(args.report, scale, experiments=registry, ids=valid)
        print(f"report written to {path}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
