"""The paper's primary contribution: the Balanced Cache."""

from repro.core.addressing import (
    AddressingReport,
    PDBit,
    analyze_addressing,
)
from repro.core.bcache import BCache
from repro.core.config import BCacheGeometry
from repro.core.decoder import (
    DecoderIntegrityError,
    PDMatch,
    ProgrammableDecoderBank,
)

__all__ = [
    "AddressingReport",
    "BCache",
    "BCacheGeometry",
    "DecoderIntegrityError",
    "PDBit",
    "PDMatch",
    "ProgrammableDecoderBank",
    "analyze_addressing",
]
