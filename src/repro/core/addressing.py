"""Virtual/physical addressing analysis — Section 6.8 of the paper.

The B-Cache's programmable decoder consumes ``log2(MF)`` *tag* bits no
later than the set index.  In a virtually-indexed, physically-tagged
(V/P) cache those tag bits normally come out of the TLB too late, so
the paper analyses which bits the PD needs and when they are available:

* bits inside the **page offset** are identical in virtual and physical
  addresses — always safe;
* bits above the page offset that the PD borrows from the tag must
  either be translated early or "treated as virtual index", i.e. the
  OS/page-colouring must keep them consistent (the same constraint
  skewed-associative and way-halting caches impose, per the paper).

This module classifies every PD input bit for a given geometry and
page size, reproducing the paper's conclusion: for the headline 16 kB
design with 4 kB pages, the three borrowed tag bits (address bits
14-16) lie above the page offset, so a V/P B-Cache must treat them as
virtual index bits; pure virtually- or physically-addressed caches
need no care at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.base import log2_exact
from repro.core.config import BCacheGeometry


@dataclass(frozen=True, slots=True)
class PDBit:
    """One programmable-decoder input bit and its translation status."""

    address_bit: int
    source: str  # "index" or "tag"
    within_page_offset: bool


@dataclass(frozen=True, slots=True)
class AddressingReport:
    """Section 6.8 analysis for one (geometry, page size) pair."""

    geometry: BCacheGeometry
    page_size: int
    pd_bits: tuple[PDBit, ...]

    @property
    def untranslated_tag_bits(self) -> tuple[PDBit, ...]:
        """Borrowed tag bits needing early translation in a V/P cache."""
        return tuple(
            b for b in self.pd_bits
            if b.source == "tag" and not b.within_page_offset
        )

    @property
    def vp_compatible_without_care(self) -> bool:
        """True when every PD input is available pre-translation."""
        return not self.untranslated_tag_bits

    def describe(self) -> str:
        lines = [
            f"{self.geometry.describe()}",
            f"page size {self.page_size} B "
            f"(offset bits 0..{log2_exact(self.page_size, 'page_size') - 1})",
        ]
        for bit in self.pd_bits:
            where = "page offset" if bit.within_page_offset else "translated"
            lines.append(
                f"  PD input A{bit.address_bit} ({bit.source} bit): {where}"
            )
        if self.vp_compatible_without_care:
            lines.append(
                "V/P compatible as-is: all PD inputs precede translation."
            )
        else:
            bits = ", ".join(
                f"A{b.address_bit}" for b in self.untranslated_tag_bits
            )
            lines.append(
                f"V/P caches must treat {bits} as virtual index bits "
                "(Section 6.8), or translate them early; virtually- or "
                "physically-addressed caches need no change."
            )
        return "\n".join(lines)


def analyze_addressing(
    geometry: BCacheGeometry, page_size: int = 4096
) -> AddressingReport:
    """Classify every PD input bit for a V/P-tagged implementation."""
    page_offset_bits = log2_exact(page_size, "page_size")
    pd_bits = []
    # PD inputs are the PI field: bas_bits index bits then mf_bits tag
    # bits, at block-address positions npi..npi+pi-1, i.e. byte-address
    # positions offset+npi .. offset+npi+pi-1.
    first = geometry.offset_bits + geometry.npi_bits
    for i in range(geometry.pi_bits):
        address_bit = first + i
        source = "index" if i < geometry.bas_bits else "tag"
        pd_bits.append(
            PDBit(
                address_bit=address_bit,
                source=source,
                within_page_offset=address_bit < page_offset_bits,
            )
        )
    return AddressingReport(
        geometry=geometry, page_size=page_size, pd_bits=tuple(pd_bits)
    )
