"""The Balanced Cache (B-Cache) — the paper's primary contribution.

A direct-mapped cache whose local decoders are partially programmable.
Exactly one data/tag array is probed per access (one-cycle hits, same
access time as the baseline), but a replacement policy chooses among
``BAS`` candidate sets whenever the programmable decoder misses.

The three PD scenarios of Section 2.3 are implemented faithfully:

1. **Cold start** — invalid PD entries are programmed with the
   incoming address's PI; among clusters the victim is chosen by the
   replacement policy.
2. **Cache miss, PD hit** — the matching set *must* be the victim
   (replacing any other set would require evicting two blocks to keep
   decoding unique), so the replacement policy cannot help.  These
   forced replacements are counted as ``pd_hit_misses``.
3. **Cache miss, PD miss** — the miss is predetermined before any
   array read (tag/data arrays stay quiet, which the energy model
   credits); the victim is chosen from all ``BAS`` clusters and its PD
   entry is reprogrammed with the new PI.
"""

from __future__ import annotations

from typing import Sequence

from repro.caches import columnar
from repro.caches.base import AccessResult, Cache
from repro.core.config import BCacheGeometry
from repro.core.decoder import ProgrammableDecoderBank
from repro.replacement import ReplacementPolicy, make_policy
from repro.replacement.lru import LRUPolicy
from repro.stats.counters import CacheStats


class BCache(Cache):
    """Balanced cache with programmable decoders.

    Args:
        geometry: validated design point (size, line, MF, BAS).
        policy: replacement policy name (``lru`` or ``random`` in the
            paper; ``fifo``/``plru`` also accepted for ablations).
        seed: seed for stochastic policies.
    """

    def __init__(
        self,
        geometry: BCacheGeometry,
        policy: str = "lru",
        seed: int = 0,
        name: str = "",
    ) -> None:
        super().__init__(
            geometry.size,
            geometry.line_size,
            geometry.num_sets,
            name
            or (
                f"BCache-{geometry.size // 1024}kB-"
                f"MF{geometry.mapping_factor}-BAS{geometry.associativity}"
            ),
        )
        self.geometry = geometry
        self.policy_name = policy
        self._seed = seed
        self.decoder = ProgrammableDecoderBank(
            geometry.num_rows, geometry.num_clusters, geometry.pi_bits
        )
        # Stored tag per physical set (reduced by log2(MF) bits vs the
        # baseline); -1 = invalid block.
        self._tags = [-1] * geometry.num_sets
        self._dirty = [False] * geometry.num_sets
        # One replacement domain per row, across the BAS clusters.
        self._policies: list[ReplacementPolicy] = [
            make_policy(policy, geometry.num_clusters, seed=seed + row)
            for row in range(geometry.num_rows)
        ]

    # ------------------------------------------------------------------
    def _evicted_address(self, row: int, cluster: int) -> tuple[int | None, bool]:
        """Reconstruct the (address, dirty) of the block in (row, cluster)."""
        set_index = self.geometry.set_index(row, cluster)
        tag = self._tags[set_index]
        if tag < 0:
            return None, False
        pd_value = self.decoder.value_at(row, cluster)
        assert pd_value is not None, "valid block without a programmed PD entry"
        block = self.geometry.compose_block(row, pd_value, tag)
        return block << self.offset_bits, self._dirty[set_index]

    def _fill(
        self, row: int, cluster: int, pi: int, tag: int, is_write: bool
    ) -> None:
        set_index = self.geometry.set_index(row, cluster)
        self._tags[set_index] = tag
        self._dirty[set_index] = is_write
        if self.decoder.value_at(row, cluster) != pi:
            self.decoder.program(row, cluster, pi)
        self._policies[row].touch(cluster)

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        geometry = self.geometry
        row, pi, tag = geometry.decompose_block(block)
        match = self.decoder.search(row, pi)

        if match.hit:
            cluster = match.cluster
            assert cluster is not None
            set_index = geometry.set_index(row, cluster)
            if self._tags[set_index] == tag:
                # One-cycle hit: exactly one word line fired.
                self._policies[row].touch(cluster)
                if is_write:
                    self._dirty[set_index] = True
                return AccessResult(hit=True, set_index=set_index)
            # Scenario 2: PD hit but tag mismatch.  The matching set is
            # the only legal victim (Section 2.3: replacing elsewhere
            # would force a double eviction to keep decoding unique).
            evicted, evicted_dirty = self._evicted_address(row, cluster)
            self._fill(row, cluster, pi, tag, is_write)
            return AccessResult(
                hit=False,
                set_index=set_index,
                evicted=evicted,
                evicted_dirty=evicted_dirty,
                pd_hit=True,
            )

        # Scenario 1/3: PD miss — the miss is predetermined; choose the
        # victim from all BAS clusters (invalid PD entries first, then
        # the replacement policy).
        invalid = self.decoder.invalid_clusters(row)
        if invalid:
            cluster = self._policies[row].victim_among(invalid)
        else:
            cluster = self._policies[row].victim()
        set_index = geometry.set_index(row, cluster)
        evicted, evicted_dirty = self._evicted_address(row, cluster)
        self._fill(row, cluster, pi, tag, is_write)
        return AccessResult(
            hit=False,
            set_index=set_index,
            evicted=evicted,
            evicted_dirty=evicted_dirty,
            pd_hit=False,
        )

    def _batch_trace(
        self,
        addresses: Sequence[int],
        kinds: Sequence[int] | None,
    ) -> CacheStats:
        """Allocation-free batch kernel (see :meth:`Cache.access_trace`).

        The one-cycle-hit path (Scenario: PD hit + tag match) is fully
        inlined — no ``PDMatch``, no ``AccessResult``, no tuple from
        ``decompose_block``.  The three miss scenarios of Section 2.3
        reuse :meth:`_evicted_address` / :meth:`_fill` so their decoder
        bookkeeping stays byte-for-byte the per-access path's.
        """
        if type(self)._access_block is not BCache._access_block:
            # A subclass customises per-access behaviour; let the generic
            # kernel drive its _access_block override instead of this one.
            return super()._batch_trace(addresses, kinds)
        geometry = self.geometry
        stats = self.stats
        decoder = self.decoder
        lookup = decoder._lookup  # per-row CAM reverse maps
        tags = self._tags
        dirty = self._dirty
        policies = self._policies
        num_rows = geometry.num_rows
        num_sets = geometry.num_sets
        row_mask = num_rows - 1
        row_bits = num_rows.bit_length() - 1
        npi_bits = geometry.npi_bits
        pi_mask = (1 << geometry.pi_bits) - 1
        tag_shift = npi_bits + geometry.pi_bits
        offset_bits = self.offset_bits
        set_accesses = stats.set_accesses
        set_hits = stats.set_hits
        set_misses = stats.set_misses
        n = len(addresses)
        if kinds is None:
            kinds = bytes(n)  # all reads
        # Column preparation: only the offset shift vectorises — the
        # set index depends on decoder state, so hit detection and the
        # per-set counters stay sequential.
        block_column = columnar.shifted_blocks(addresses, offset_bits)
        if block_column is None:
            block_column = [a >> offset_bits for a in addresses]
        # One-cycle hits (PD hit + tag match) resolve with a single
        # probe of a {block: set index} map built from the decoder and
        # tag state; row and cluster fall out of the set index
        # (``set_index = cluster * num_rows + row``).
        hit_map: dict[int, int] = {}
        resident_blocks = [-1] * num_sets
        for row in range(num_rows):
            for pi_value, cluster in lookup[row].items():
                set_index = cluster * num_rows + row
                resident_tag = tags[set_index]
                if resident_tag >= 0:
                    resident = geometry.compose_block(row, pi_value, resident_tag)
                    hit_map[resident] = set_index
                    resident_blocks[set_index] = resident
        # Exact LRU is the paper's default policy; its touch() is pure
        # recency maintenance with no RNG, so it runs on a flat
        # timestamp column indexed by set (the recency lists are
        # rebuilt bit-identically from the stamps after the loop).
        lru_fast = all(type(p) is LRUPolicy for p in policies)
        ts_flat: list[int] | None = None
        if lru_fast:
            ts_flat = [0] * num_sets
            for row, policy in enumerate(policies):
                for position, cluster in enumerate(policy._order):
                    ts_flat[cluster * num_rows + row] = -position
        # Hits dominate: the hot loop only bumps per-set accesses and
        # misses; per-set hits are reconstructed from the deltas
        # afterwards (final statistics stay bit-identical).
        accesses_before = set_accesses.copy()
        misses_before = set_misses.copy()
        stamp = 0
        misses = writes = 0
        pd_hit = pd_miss = evictions = writebacks = 0
        for block, kind in zip(block_column, kinds):
            try:
                set_index = hit_map[block]
                # One-cycle hit: exactly one word line fired.
                set_accesses[set_index] += 1
                if ts_flat is not None:
                    stamp += 1
                    ts_flat[set_index] = stamp
                else:
                    policies[set_index & row_mask].touch(set_index >> row_bits)
                if kind == 1:
                    writes += 1
                    dirty[set_index] = True
            except KeyError:
                row = block & row_mask
                pi = (block >> npi_bits) & pi_mask
                tag = block >> tag_shift
                cluster = lookup[row].get(pi)
                if cluster is not None:
                    # Scenario 2: PD hit, tag mismatch — forced victim.
                    pd_hit += 1
                else:
                    # Scenario 1/3: PD miss — victim from all BAS
                    # clusters (invalid PD entries first, then LRU).
                    pd_miss += 1
                    invalid = decoder.invalid_clusters(row)
                    if ts_flat is None:
                        policy = policies[row]
                        cluster = (
                            policy.victim_among(invalid)
                            if invalid
                            else policy.victim()
                        )
                    elif invalid:
                        cluster = invalid[0]
                        best = ts_flat[cluster * num_rows + row]
                        for position in range(1, len(invalid)):
                            candidate = invalid[position]
                            candidate_ts = ts_flat[candidate * num_rows + row]
                            if candidate_ts < best:
                                best = candidate_ts
                                cluster = candidate
                    else:
                        segment = ts_flat[row::num_rows]
                        cluster = segment.index(min(segment))
                set_index = cluster * num_rows + row
                misses += 1
                set_accesses[set_index] += 1
                set_misses[set_index] += 1
                is_write = kind == 1
                if is_write:
                    writes += 1
                resident = resident_blocks[set_index]
                if resident >= 0:
                    evictions += 1
                    if dirty[set_index]:
                        writebacks += 1
                    del hit_map[resident]
                self._fill(row, cluster, pi, tag, is_write)
                if ts_flat is not None:
                    stamp += 1
                    ts_flat[set_index] = stamp
                hit_map[block] = set_index
                resident_blocks[set_index] = block
        if ts_flat is not None:
            for row, policy in enumerate(policies):
                segment = ts_flat[row::num_rows]
                policy._order.sort(key=segment.__getitem__, reverse=True)
        for set_index, before in enumerate(accesses_before):
            delta = set_accesses[set_index] - before
            if delta:
                set_hits[set_index] += delta - (
                    set_misses[set_index] - misses_before[set_index]
                )
        hits = n - misses
        # The per-access path performs one CAM search per reference.
        decoder.searches += n
        stats.accesses += n
        stats.reads += n - writes
        stats.writes += writes
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        stats.pd_hit_misses += pd_hit
        stats.pd_miss_misses += pd_miss
        return stats

    # ------------------------------------------------------------------
    def _probe_block(self, block: int) -> bool:
        row, pi, tag = self.geometry.decompose_block(block)
        cluster = self.decoder._lookup[row].get(pi)
        if cluster is None:
            return False
        return self._tags[self.geometry.set_index(row, cluster)] == tag

    def _flush_state(self) -> None:
        geometry = self.geometry
        self._tags = [-1] * geometry.num_sets
        self._dirty = [False] * geometry.num_sets
        self.decoder.flush()
        self._policies = [
            make_policy(self.policy_name, geometry.num_clusters, seed=self._seed + row)
            for row in range(geometry.num_rows)
        ]

    # ------------------------------------------------------------------
    @property
    def pd_hit_rate_during_miss(self) -> float:
        """Fraction of misses where the PD hit (Figure 3 / Table 6)."""
        return self.stats.pd_hit_rate_during_miss

    def check_integrity(self) -> None:
        """Validate structural invariants (used by property tests).

        * PD uniqueness per row.
        * Every valid block's PD entry is programmed.
        * Every block is findable at the address it would be evicted as.
        """
        self.decoder.check_integrity()
        geometry = self.geometry
        for row in range(geometry.num_rows):
            for cluster in range(geometry.num_clusters):
                set_index = geometry.set_index(row, cluster)
                if self._tags[set_index] >= 0:
                    pd_value = self.decoder.value_at(row, cluster)
                    if pd_value is None:
                        raise AssertionError(
                            f"set {set_index} holds a block but its PD is invalid"
                        )
                    block = geometry.compose_block(
                        row, pd_value, self._tags[set_index]
                    )
                    if not self._probe_block(block):
                        raise AssertionError(
                            f"set {set_index}: resident block is not probeable"
                        )
