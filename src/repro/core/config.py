"""B-Cache geometry: deriving PI/NPI/PD lengths from (size, MF, BAS).

Terminology follows Section 3.1 of the paper exactly:

* ``OI`` — index length of the original direct-mapped cache,
  ``OI = log2(size / line_size)``.
* ``NPI`` — non-programmable index length, ``NPI = OI - log2(BAS)``.
  The NPI bits select one *row*; each row spans one candidate set per
  cluster.
* ``PI`` — programmable index length,
  ``PI = log2(MF) + log2(BAS)``, stored in each set's CAM entry.
  ``log2(BAS)`` of those bits come from the original index and
  ``log2(MF)`` are borrowed from the original tag, so the stored tag
  shrinks by ``log2(MF)`` bits.
* ``MF = 2^(PI+NPI) / 2^OI`` — memory-address mapping factor: only
  ``1/MF`` of the address space has a mapping to the cache at any
  moment.
* ``BAS = 2^OI / 2^NPI`` — B-Cache associativity: the number of
  clusters a victim can be chosen from.

The headline design point is ``size=16kB, line=32B, MF=8, BAS=8``
giving ``OI=9, NPI=6, PI=6`` (Section 3.2 / Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caches.base import log2_exact
from repro.trace.access import ADDRESS_BITS


@dataclass(frozen=True, slots=True)
class BCacheGeometry:
    """Validated B-Cache design point.

    Attributes:
        size: total data capacity in bytes.
        line_size: cache block size in bytes.
        mapping_factor: MF, power of two >= 1.
        associativity: BAS, power of two >= 1.
    """

    size: int
    line_size: int = 32
    mapping_factor: int = 8
    associativity: int = 8

    # Derived fields (filled in __post_init__).
    offset_bits: int = field(init=False)
    original_index_bits: int = field(init=False)
    npi_bits: int = field(init=False)
    pi_bits: int = field(init=False)
    num_sets: int = field(init=False)
    num_rows: int = field(init=False)
    num_clusters: int = field(init=False)
    stored_tag_bits: int = field(init=False)

    def __post_init__(self) -> None:
        offset_bits = log2_exact(self.line_size, "line_size")
        if self.size % self.line_size:
            raise ValueError(
                f"size {self.size} is not a multiple of line_size {self.line_size}"
            )
        num_sets = self.size // self.line_size
        oi = log2_exact(num_sets, "number of sets")
        mf_bits = log2_exact(self.mapping_factor, "mapping_factor")
        bas_bits = log2_exact(self.associativity, "associativity")
        if bas_bits > oi:
            raise ValueError(
                f"associativity {self.associativity} exceeds set count {num_sets}"
            )
        npi = oi - bas_bits
        pi = mf_bits + bas_bits
        full_tag_bits = ADDRESS_BITS - offset_bits - oi
        if mf_bits > full_tag_bits:
            raise ValueError(
                f"mapping_factor {self.mapping_factor} needs {mf_bits} tag bits "
                f"but only {full_tag_bits} exist"
            )
        object.__setattr__(self, "offset_bits", offset_bits)
        object.__setattr__(self, "original_index_bits", oi)
        object.__setattr__(self, "npi_bits", npi)
        object.__setattr__(self, "pi_bits", pi)
        object.__setattr__(self, "num_sets", num_sets)
        object.__setattr__(self, "num_rows", 1 << npi)
        object.__setattr__(self, "num_clusters", self.associativity)
        object.__setattr__(self, "stored_tag_bits", full_tag_bits - mf_bits)

    # ------------------------------------------------------------------
    @property
    def mf_bits(self) -> int:
        """Tag bits absorbed into the programmable decoder (log2 MF)."""
        return self.pi_bits - self.bas_bits

    @property
    def bas_bits(self) -> int:
        """Index bits moved from fixed to programmable decoding (log2 BAS)."""
        return self.original_index_bits - self.npi_bits

    @property
    def decoder_extension_bits(self) -> int:
        """How much longer the B-Cache index is than the baseline's.

        ``(PI + NPI) - OI = log2(MF)``; the paper's headline design
        extends the decoder by three bits (Section 1, contribution 1).
        """
        return self.mf_bits

    def is_degenerate(self) -> bool:
        """True when the geometry collapses to a plain direct-mapped cache.

        Section 3.1: "The case MF = 1 or BAS = 1 is equivalent to a
        traditional direct-mapped cache."
        """
        return self.mapping_factor == 1 or self.associativity == 1

    # ------------------------------------------------------------------
    def decompose_block(self, block: int) -> tuple[int, int, int]:
        """Split a block address into (row, programmable index, stored tag)."""
        row = block & (self.num_rows - 1)
        pi = (block >> self.npi_bits) & ((1 << self.pi_bits) - 1)
        tag = block >> (self.npi_bits + self.pi_bits)
        return row, pi, tag

    def compose_block(self, row: int, pi: int, tag: int) -> int:
        """Inverse of :meth:`decompose_block`."""
        return (tag << (self.npi_bits + self.pi_bits)) | (pi << self.npi_bits) | row

    def set_index(self, row: int, cluster: int) -> int:
        """Physical set number for (row, cluster)."""
        return cluster * self.num_rows + row

    def describe(self) -> str:
        """Human-readable geometry summary."""
        return (
            f"B-Cache {self.size // 1024}kB/{self.line_size}B: "
            f"MF={self.mapping_factor}, BAS={self.associativity}, "
            f"OI={self.original_index_bits}, NPI={self.npi_bits}, "
            f"PI={self.pi_bits} (PD CAM width {self.pi_bits} bits), "
            f"{self.num_rows} rows x {self.num_clusters} clusters, "
            f"stored tag {self.stored_tag_bits} bits"
        )
