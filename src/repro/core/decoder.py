"""Programmable decoder (PD) model.

The defining feature of the B-Cache (Section 2.3): each cache set owns
a CAM entry holding a ``PI``-bit *programmable index*.  A set's word
line fires only when its non-programmable decoder matches the address's
NPI bits **and** its CAM entry matches the address's PI bits.

Within one row (one NPI value) the valid CAM entries must be pairwise
distinct — "The two PIs must be different to maintain unique address
decoding" (Figure 1) — so at most one set can fire per access.  This
invariant is maintained structurally: entries are only (re)programmed
after a PD miss, with a value no valid entry in the row holds.
"""

from __future__ import annotations

from dataclasses import dataclass


class DecoderIntegrityError(RuntimeError):
    """Raised when an operation would violate unique address decoding."""


@dataclass(frozen=True, slots=True)
class PDMatch:
    """Result of a programmable-decoder search within one row."""

    hit: bool
    cluster: int | None = None


class ProgrammableDecoderBank:
    """All PD entries of a B-Cache: ``rows x clusters`` CAM cells.

    Each entry is a ``pi_bits``-wide value plus a valid bit.  Searches
    are by (row, value); programming enforces the per-row uniqueness
    invariant.
    """

    def __init__(self, num_rows: int, num_clusters: int, pi_bits: int) -> None:
        if num_rows < 1 or num_clusters < 1:
            raise ValueError("num_rows and num_clusters must be >= 1")
        if pi_bits < 0:
            raise ValueError("pi_bits must be >= 0")
        self.num_rows = num_rows
        self.num_clusters = num_clusters
        self.pi_bits = pi_bits
        self._values: list[list[int]] = [
            [-1] * num_clusters for _ in range(num_rows)
        ]
        # Reverse map per row for O(1) CAM search: value -> cluster.
        self._lookup: list[dict[int, int]] = [dict() for _ in range(num_rows)]
        self.searches = 0
        self.programs = 0

    # ------------------------------------------------------------------
    def search(self, row: int, value: int) -> PDMatch:
        """CAM search: which cluster's entry matches ``value`` in ``row``?"""
        self.searches += 1
        cluster = self._lookup[row].get(value)
        if cluster is None:
            return PDMatch(hit=False)
        return PDMatch(hit=True, cluster=cluster)

    def value_at(self, row: int, cluster: int) -> int | None:
        """Programmed value of one entry, or None if invalid."""
        value = self._values[row][cluster]
        return None if value < 0 else value

    def is_valid(self, row: int, cluster: int) -> bool:
        return self._values[row][cluster] >= 0

    def invalid_clusters(self, row: int) -> list[int]:
        """Clusters of ``row`` whose PD entry is still invalid (cold)."""
        values = self._values[row]
        return [c for c in range(self.num_clusters) if values[c] < 0]

    # ------------------------------------------------------------------
    def program(self, row: int, cluster: int, value: int) -> None:
        """(Re)program one entry, preserving per-row uniqueness.

        Reprogramming a cluster to the value it already holds is a
        no-op; programming a value held by a *different* valid entry in
        the same row raises :class:`DecoderIntegrityError`, because two
        word lines would then fire for one address.
        """
        if not 0 <= value < (1 << self.pi_bits):
            raise ValueError(f"value {value} does not fit in {self.pi_bits} bits")
        lookup = self._lookup[row]
        holder = lookup.get(value)
        if holder is not None and holder != cluster:
            raise DecoderIntegrityError(
                f"row {row}: value {value:#x} already programmed in cluster {holder}"
            )
        old = self._values[row][cluster]
        if old >= 0:
            del lookup[old]
        self._values[row][cluster] = value
        lookup[value] = cluster
        self.programs += 1

    def invalidate(self, row: int, cluster: int) -> None:
        """Mark one entry invalid (used at flush and for fault injection)."""
        old = self._values[row][cluster]
        if old >= 0:
            del self._lookup[row][old]
            self._values[row][cluster] = -1

    def flush(self) -> None:
        """Invalidate every entry (cache cold start)."""
        for row in range(self.num_rows):
            self._values[row] = [-1] * self.num_clusters
            self._lookup[row].clear()

    # ------------------------------------------------------------------
    def check_integrity(self) -> None:
        """Verify the uniqueness invariant over the whole bank.

        Used by tests; raises :class:`DecoderIntegrityError` on any
        duplicated valid value within a row or on a stale reverse map.
        """
        for row in range(self.num_rows):
            seen: dict[int, int] = {}
            for cluster in range(self.num_clusters):
                value = self._values[row][cluster]
                if value < 0:
                    continue
                if value in seen:
                    raise DecoderIntegrityError(
                        f"row {row}: clusters {seen[value]} and {cluster} "
                        f"both hold {value:#x}"
                    )
                seen[value] = cluster
            if seen != self._lookup[row]:
                raise DecoderIntegrityError(f"row {row}: reverse map out of sync")

    def occupancy(self) -> float:
        """Fraction of PD entries that are valid."""
        valid = sum(
            1
            for row in range(self.num_rows)
            for c in range(self.num_clusters)
            if self._values[row][c] >= 0
        )
        return valid / (self.num_rows * self.num_clusters)
