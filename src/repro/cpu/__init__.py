"""Processor timing model for IPC estimation."""

from repro.cpu.pipeline import EventDrivenCore, PipelineConfig, PipelineResult
from repro.cpu.timing import ExecutionResult, OoOProcessorModel, ProcessorConfig

__all__ = [
    "EventDrivenCore",
    "ExecutionResult",
    "OoOProcessorModel",
    "PipelineConfig",
    "PipelineResult",
    "ProcessorConfig",
]
