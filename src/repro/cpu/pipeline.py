"""Event-driven out-of-order core — the detailed alternative to
:mod:`repro.cpu.timing`'s closed-form model.

Models the Table 4 core at event granularity:

* fetch delivers ``issue_width`` instructions per cycle and **stalls**
  on an instruction-cache miss until the line returns (fetch starves
  the window: the reason I$ misses are nearly fully exposed);
* a ``window_size``-entry instruction window bounds how many
  instructions are in flight, so long-latency loads overlap with at
  most ``window_size`` instructions of useful work;
* ``mshrs`` miss-status registers bound memory-level parallelism: only
  that many data misses may be outstanding at once.

The model tracks event *times* rather than simulating every pipeline
stage, which keeps it trace-rate fast while capturing the three
effects that decide Figure 8: fetch starvation, window-limited
overlap, and MLP.  ``tests/test_pipeline.py`` cross-validates its
trends against the analytic model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable

from repro.hierarchy.memory_system import MemoryHierarchy
from repro.trace.access import Access


@dataclass(frozen=True)
class PipelineConfig:
    """Core parameters (paper Table 4)."""

    issue_width: int = 4
    window_size: int = 16
    mshrs: int = 4
    execute_latency: int = 1

    def __post_init__(self) -> None:
        if min(self.issue_width, self.window_size, self.mshrs) < 1:
            raise ValueError("issue_width, window_size and mshrs must be >= 1")
        if self.execute_latency < 1:
            raise ValueError("execute_latency must be >= 1")


@dataclass
class PipelineResult:
    """Outcome of one event-driven run."""

    instructions: int
    cycles: float
    fetch_stall_cycles: float
    memory_wait_cycles: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class EventDrivenCore:
    """Cycle-approximate out-of-order execution over a hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        config: PipelineConfig | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config or PipelineConfig()

    def run(self, trace: Iterable[Access]) -> PipelineResult:
        """Execute a combined trace (each ifetch is one instruction;
        data accesses belong to the preceding instruction)."""
        state = _RunState(self.config)
        current: tuple[Access, list[Access]] | None = None
        for access in trace:
            if access.is_instruction:
                if current is not None:
                    self._retire(state, *current)
                current = (access, [])
            elif current is not None:
                current[1].append(access)
            else:
                # Data access before any instruction: treat it as an
                # implicit instruction's memory operation.
                current = (access, [access])
        if current is not None:
            self._retire(state, *current)
        return PipelineResult(
            instructions=state.instructions,
            cycles=max(state.last_completion, state.fetch_free),
            fetch_stall_cycles=state.fetch_stalls,
            memory_wait_cycles=state.memory_waits,
        )

    def _retire(self, state: "_RunState", ifetch: Access,
                data: list[Access]) -> None:
        """Process one instruction and its memory operations."""
        config = self.config
        hierarchy = self.hierarchy
        hit_latency = float(hierarchy.l1i.hit_latency)

        state.instructions += 1
        if ifetch.is_instruction:
            ifetch_latency = hierarchy.fetch_instruction(ifetch.address)
        else:  # implicit instruction wrapping a leading data access
            ifetch_latency = hit_latency
        fetch_time = state.fetch_free
        state.fetch_free = fetch_time + 1.0 / config.issue_width
        if ifetch_latency > hit_latency:
            stall = ifetch_latency - hit_latency
            state.fetch_free += stall
            state.fetch_stalls += stall

        # Dispatch: wait for a window slot when the window is full.
        dispatch = fetch_time
        window = state.window
        if len(window) >= config.window_size:
            earliest = heapq.heappop(window)
            if earliest > dispatch:
                dispatch = earliest
        completion = dispatch + config.execute_latency

        for access in data:
            latency = hierarchy.access_data(access.address, access.is_write)
            start = dispatch
            if latency > hit_latency:
                # A miss occupies an MSHR; MLP bounded by their count.
                mshr_free = state.mshr_free
                slot = min(range(len(mshr_free)), key=mshr_free.__getitem__)
                if mshr_free[slot] > start:
                    state.memory_waits += mshr_free[slot] - start
                    start = mshr_free[slot]
                mshr_free[slot] = start + latency
            completion = max(completion, start + latency)

        heapq.heappush(window, completion)
        state.last_completion = max(state.last_completion, completion)


class _RunState:
    """Mutable bookkeeping for one :meth:`EventDrivenCore.run`."""

    def __init__(self, config: PipelineConfig) -> None:
        self.fetch_free = 0.0
        self.window: list[float] = []
        self.mshr_free = [0.0] * config.mshrs
        self.last_completion = 0.0
        self.instructions = 0
        self.fetch_stalls = 0.0
        self.memory_waits = 0.0
