"""Analytic out-of-order processor timing model (Table 4 configuration).

The paper measures IPC on SimpleScalar's 4-issue out-of-order core with
a 16-entry instruction window (Table 4).  We model the same coupling
between L1 behaviour and IPC analytically:

``cycles = instructions * base_cpi
         + ifetch_stall_cycles * ifetch_exposure
         + data_stall_cycles  * data_exposure``

* ``base_cpi`` — CPI with a perfect L1, folding in issue width,
  functional-unit contention and branch effects (default 0.40, i.e.
  ideal IPC 2.5 on a 4-issue core).
* ``ifetch_exposure`` — instruction-miss latency is almost fully
  exposed: fetch stalls starve the window (1.0).
* ``data_exposure`` — the out-of-order window hides part of each data
  miss; with a 16-entry window a load miss overlaps ~40 % of its
  latency with useful work (0.6).

Stall cycles come from the trace-driven :class:`MemoryHierarchy`, so
L2 hits vs. memory accesses, dirty writebacks, the victim buffer's
extra-cycle hits and the column-associative cache's second probes are
all charged exactly where they occur.  This is the IPC coupling the
paper's results depend on: the B-Cache gains IPC purely by removing
L1 conflict misses while keeping one-cycle hits (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.hierarchy.memory_system import MemoryHierarchy
from repro.trace.access import Access


@dataclass(frozen=True)
class ProcessorConfig:
    """Core parameters (paper Table 4) and latency-exposure factors."""

    issue_width: int = 4
    window_size: int = 16
    base_cpi: float = 0.40
    ifetch_exposure: float = 1.0
    data_exposure: float = 0.6

    def __post_init__(self) -> None:
        if self.issue_width < 1 or self.window_size < 1:
            raise ValueError("issue_width and window_size must be >= 1")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if not 0.0 <= self.ifetch_exposure <= 1.0:
            raise ValueError("ifetch_exposure must be in [0, 1]")
        if not 0.0 <= self.data_exposure <= 1.0:
            raise ValueError("data_exposure must be in [0, 1]")


@dataclass
class ExecutionResult:
    """Outcome of simulating one workload on one cache configuration."""

    instructions: int
    cycles: float
    ifetch_stall_cycles: float
    data_stall_cycles: float
    l1i_miss_rate: float
    l1d_miss_rate: float
    l2_accesses: int
    l2_misses: int
    memory_accesses: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class OoOProcessorModel:
    """Trace-driven IPC estimation over a :class:`MemoryHierarchy`."""

    def __init__(self, hierarchy: MemoryHierarchy,
                 config: ProcessorConfig | None = None) -> None:
        self.hierarchy = hierarchy
        self.config = config or ProcessorConfig()

    def run(self, trace: Iterable[Access]) -> ExecutionResult:
        """Execute a combined trace (each ifetch is one instruction)."""
        hierarchy = self.hierarchy
        hit_latency = hierarchy.l1i.hit_latency
        ifetch_stalls = 0.0
        data_stalls = 0.0
        instructions = 0
        for access in trace:
            if access.is_instruction:
                instructions += 1
                latency = hierarchy.fetch_instruction(access.address)
                ifetch_stalls += latency - hit_latency
            else:
                latency = hierarchy.access_data(access.address, access.is_write)
                data_stalls += latency - hit_latency
        hierarchy._sync_miss_counts()
        config = self.config
        cycles = (
            instructions * config.base_cpi
            + ifetch_stalls * config.ifetch_exposure
            + data_stalls * config.data_exposure
        )
        stats = hierarchy.stats
        return ExecutionResult(
            instructions=instructions,
            cycles=cycles,
            ifetch_stall_cycles=ifetch_stalls * config.ifetch_exposure,
            data_stall_cycles=data_stalls * config.data_exposure,
            l1i_miss_rate=stats.l1i_miss_rate,
            l1d_miss_rate=stats.l1d_miss_rate,
            l2_accesses=stats.l2_accesses,
            l2_misses=stats.l2_misses,
            memory_accesses=stats.memory_accesses,
        )
