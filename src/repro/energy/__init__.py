"""Circuit models: access energy, storage, decoder timing (0.18 µm)."""

from repro.energy.area import (
    StorageCost,
    bcache_storage,
    conventional_storage,
    set_associative_area_overhead,
)
from repro.energy.cacti_lite import (
    BASELINE_16K_PJ,
    EnergyBreakdown,
    conventional_access_energy,
    fully_associative_probe_energy,
)
from repro.energy.cam import CAMBankSpec, pd_banks_for
from repro.energy.decay import DecayReport, simulate_decay
from repro.energy.drowsy import DrowsyReport, estimate_drowsy_leakage
from repro.energy.decoder_timing import (
    DecoderTiming,
    all_have_slack,
    cam_search_delay_ns,
    table1_timings,
)
from repro.energy.model import (
    ConfigEnergy,
    EnergyReport,
    RunActivity,
    SystemEnergyModel,
    access_energy_for,
    bcache_access_energy,
)
from repro.energy.technology import TSMC018, Technology

__all__ = [
    "BASELINE_16K_PJ",
    "CAMBankSpec",
    "ConfigEnergy",
    "DecoderTiming",
    "DecayReport",
    "DrowsyReport",
    "simulate_decay",
    "estimate_drowsy_leakage",
    "EnergyBreakdown",
    "EnergyReport",
    "RunActivity",
    "StorageCost",
    "SystemEnergyModel",
    "TSMC018",
    "Technology",
    "access_energy_for",
    "all_have_slack",
    "bcache_access_energy",
    "bcache_storage",
    "cam_search_delay_ns",
    "conventional_access_energy",
    "conventional_storage",
    "fully_associative_probe_energy",
    "pd_banks_for",
    "set_associative_area_overhead",
    "table1_timings",
]
