"""Storage-cost model — Table 2 of the paper.

Storage is counted in SRAM-bit equivalents; a CAM cell counts as 1.25
SRAM bits (Section 5.3).  For the headline 16 kB configuration the
paper's accounting is:

=============  =======================================  ==========
 structure      baseline                                 B-Cache
=============  =======================================  ==========
 tag decoder    plain logic (no storage)                 64 x (6x8) CAM
 tag memory     20 bit x 512                             17 bit x 512
 data decoder   plain logic (no storage)                 32 x (6x16) CAM
 data memory    256 bit x 512                            256 bit x 512
=============  =======================================  ==========

yielding a 4.3 % total increase — less than a 4-way cache's 7.98 %
(Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BCacheGeometry
from repro.energy.cam import pd_banks_for
from repro.energy.technology import TSMC018, Technology
from repro.trace.access import ADDRESS_BITS

#: Valid + dirty bits stored with each tag.
TAG_STATUS_BITS = 2


@dataclass(frozen=True)
class StorageCost:
    """SRAM-bit-equivalent storage of one cache organisation."""

    tag_decoder_bits: float
    tag_memory_bits: float
    data_decoder_bits: float
    data_memory_bits: float

    @property
    def total_bits(self) -> float:
        """Total storage in SRAM-bit equivalents."""
        return (
            self.tag_decoder_bits
            + self.tag_memory_bits
            + self.data_decoder_bits
            + self.data_memory_bits
        )

    def overhead_vs(self, other: "StorageCost") -> float:
        """Fractional extra storage relative to ``other``."""
        return self.total_bits / other.total_bits - 1.0


def _tag_bits(size: int, line_size: int, ways: int) -> int:
    sets = size // line_size // ways
    index_bits = sets.bit_length() - 1
    offset_bits = line_size.bit_length() - 1
    return ADDRESS_BITS - index_bits - offset_bits


def conventional_storage(
    size: int, line_size: int = 32, ways: int = 1
) -> StorageCost:
    """Storage of a conventional cache (decoders are logic, not storage)."""
    blocks = size // line_size
    tag_entry = _tag_bits(size, line_size, ways) + TAG_STATUS_BITS
    return StorageCost(
        tag_decoder_bits=0.0,
        tag_memory_bits=float(tag_entry * blocks),
        data_decoder_bits=0.0,
        data_memory_bits=float(line_size * 8 * blocks),
    )


def bcache_storage(
    geometry: BCacheGeometry,
    data_subarrays: int = 4,
    tag_subarrays: int = 8,
    tech: Technology = TSMC018,
) -> StorageCost:
    """Storage of the B-Cache: shorter tags plus the PD CAM banks."""
    blocks = geometry.num_sets
    tag_entry = geometry.stored_tag_bits + TAG_STATUS_BITS
    data_bank, tag_bank = pd_banks_for(geometry, data_subarrays, tag_subarrays)
    return StorageCost(
        tag_decoder_bits=tag_bank.area_sram_equivalent_bits(tech),
        tag_memory_bits=float(tag_entry * blocks),
        data_decoder_bits=data_bank.area_sram_equivalent_bits(tech),
        data_memory_bits=float(geometry.line_size * 8 * blocks),
    )


def set_associative_area_overhead(ways: int = 4) -> float:
    """Area overhead of a same-sized set-associative cache vs the baseline.

    The paper quotes 7.98 % for a 4-way cache (from [21], Section 5.3):
    extra comparators, output multiplexers and peripheral duplication.
    Modelled as linear in the extra ways, anchored at the published
    4-way figure.
    """
    if ways < 1:
        raise ValueError("ways must be >= 1")
    return 0.0798 * (ways - 1) / 3.0
