"""Cacti-lite: analytic per-access energy for cache organisations.

The paper uses Cacti 3.2 for array energies (Section 5.4).  This model
reproduces the *relative* energies the paper publishes, from which the
absolute scale is pinned:

* B-Cache consumes 10.5 % more per access than the baseline
  direct-mapped 16 kB cache (Table 3);
* that B-Cache figure is 17.4 % / 44.4 % / 65.5 % lower than the same
  sized 2-/4-/8-way caches (Section 5.4).

Per-access energy of a conventional W-way cache of a given size:

``E = scale * (c_fixed + W * (c_way + c_array * sqrt(way_kb)))``

* ``c_fixed`` — global decoding, output drivers, request latching;
  independent of associativity.
* ``c_way`` — per-probed-way overhead (sense amplifiers, comparators,
  way multiplexer legs).
* ``c_array * sqrt(way_kb)`` — bitline/wordline energy of one way's
  arrays; capacitance grows with array dimensions, hence the square
  root of the way capacity.

The three shape constants are solved from the paper's three 16 kB
ratios (2-way 1.338x, 4-way 1.987x, 8-way 3.203x the baseline); the
absolute ``scale`` is solved from the +10.5 % B-Cache overhead given
the published CAM search energies (see :mod:`repro.energy.model`).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from repro.energy.technology import TSMC018, Technology

# Shape constants fitted to Section 5.4's ratios (see module docstring).
C_FIXED = 0.598
C_WAY = 0.292
C_ARRAY = 0.0276

#: Absolute scale in pJ: baseline 16 kB direct-mapped energy per access.
#: Solved so that adding the B-Cache's programmable decoders (101.8 pJ
#: of CAM searches, Section 5.4) minus its tag-side savings lands at
#: +10.5 % (Table 3).
BASELINE_16K_PJ = 892.0

#: Component split of a direct-mapped cache's access energy, matching
#: Table 3's columns.  Data arrays dominate; the tag side is small
#: (its arrays are 20 bits wide vs. 256-bit lines).
COMPONENT_FRACTIONS: dict[str, float] = {
    "T-SA": 0.015,
    "T-Dec": 0.015,
    "T-BL-WL": 0.040,
    "D-SA": 0.120,
    "D-Dec": 0.050,
    "D-BL-WL": 0.550,
    "D-others": 0.210,
}


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-access energy (pJ) split into Table 3's component columns."""

    components: dict[str, float]

    @property
    def total_pj(self) -> float:
        """Sum of all component energies, in pJ."""
        return sum(self.components.values())

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """A copy with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            {name: value * factor for name, value in self.components.items()}
        )

    def with_component(self, name: str, value: float) -> "EnergyBreakdown":
        """A copy with ``value`` pJ added to component ``name``."""
        components = dict(self.components)
        components[name] = components.get(name, 0.0) + value
        return EnergyBreakdown(components)


def _shape_factor(ways: int, way_bytes: float) -> float:
    way_kb = way_bytes / 1024.0
    return C_FIXED + ways * (C_WAY + C_ARRAY * sqrt(way_kb))


def conventional_access_energy(
    size: int,
    line_size: int = 32,
    ways: int = 1,
    tech: Technology = TSMC018,
) -> EnergyBreakdown:
    """Per-access energy of a conventional cache, by Table 3 component.

    The component split is the direct-mapped baseline's; associativity
    scales the per-way components (everything except the fixed share).
    """
    if ways < 1:
        raise ValueError("ways must be >= 1")
    if size % ways:
        raise ValueError(f"{size}B cache cannot be {ways}-way")
    reference = _shape_factor(1, 16 * 1024)
    factor = _shape_factor(ways, size / ways)
    total = BASELINE_16K_PJ * factor / reference
    return EnergyBreakdown(
        {name: total * frac for name, frac in COMPONENT_FRACTIONS.items()}
    )


def fully_associative_probe_energy(
    entries: int, tag_bits: int = 27, tech: Technology = TSMC018
) -> float:
    """Energy (pJ) of probing a small fully associative buffer's CAM.

    Used for the victim buffer: a 16-entry buffer probe searches a
    ``tag_bits x entries`` CAM plus reads one 256-bit line on a hit;
    the CAM search dominates and is what we charge per probe.
    """
    return tech.cam_search_energy_pj(tag_bits, entries)
