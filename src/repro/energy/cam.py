"""Programmable-decoder CAM bank: geometry, energy, area and delay.

Section 3.2 fixes the headline PD organisation: the 16 kB B-Cache's new
local decoders comprise **thirty-two 6x16 CAMs on the data side** (four
subarrays x eight PDs, each covering 16 word lines) and **sixty-four
6x8 CAMs on the tag side** (eight subarrays x eight PDs of 8 word
lines).  Section 5.4 gives their measured search energies, to which
:class:`repro.energy.technology.Technology` is calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BCacheGeometry
from repro.energy.technology import TSMC018, Technology


@dataclass(frozen=True)
class CAMBankSpec:
    """One group of identical CAM decoders (e.g. the data side's PDs)."""

    count: int
    bits: int
    entries: int

    @property
    def cells(self) -> int:
        """Total CAM cells across the bank."""
        return self.count * self.bits * self.entries

    def search_energy_pj(self, tech: Technology = TSMC018) -> float:
        """Energy of one access: every CAM in the bank searches."""
        return self.count * tech.cam_search_energy_pj(self.bits, self.entries)

    def area_sram_equivalent_bits(self, tech: Technology = TSMC018) -> float:
        """Storage cost in SRAM-bit equivalents (CAM cell is 25% larger)."""
        return self.cells * tech.cam_area_ratio


def npd_bits_for(
    geometry: BCacheGeometry, subarrays: int
) -> int:
    """Non-programmable decoder width for one subarray partition.

    Section 5.2's worked example: with the headline geometry the data
    memory's four subarrays leave a 7-bit local index, of which 3 bits
    move into the PD, so the data NPD is 4 bits; the tag memory's eight
    subarrays leave 6 local bits and a 3-bit NPD.
    """
    sets_per_subarray = geometry.num_sets // subarrays
    if geometry.num_sets % subarrays or sets_per_subarray < 1:
        raise ValueError("set count must divide evenly into subarrays")
    local_bits = sets_per_subarray.bit_length() - 1
    npd = local_bits - geometry.bas_bits
    if npd < 0:
        raise ValueError(
            f"{subarrays} subarrays leave only {local_bits} local bits; "
            f"BAS={geometry.associativity} needs {geometry.bas_bits}"
        )
    return npd


def pd_banks_for(
    geometry: BCacheGeometry,
    data_subarrays: int = 4,
    tag_subarrays: int = 8,
) -> tuple[CAMBankSpec, CAMBankSpec]:
    """PD CAM banks (data, tag) for a B-Cache geometry.

    Follows Section 5.2: tag and data memories keep their own subarray
    partitions, both using the same PI length; each subarray carries
    ``BAS`` programmable decoders whose entry count is the subarray's
    rows divided by ``BAS``.
    """
    sets_per_data = geometry.num_sets // data_subarrays
    sets_per_tag = geometry.num_sets // tag_subarrays
    if geometry.num_sets % data_subarrays or geometry.num_sets % tag_subarrays:
        raise ValueError("set count must divide evenly into subarrays")
    clusters = geometry.num_clusters
    data_entries = max(1, sets_per_data // clusters)
    tag_entries = max(1, sets_per_tag // clusters)
    data_bank = CAMBankSpec(
        count=data_subarrays * clusters,
        bits=geometry.pi_bits,
        entries=data_entries,
    )
    tag_bank = CAMBankSpec(
        count=tag_subarrays * clusters,
        bits=geometry.pi_bits,
        entries=tag_entries,
    )
    return data_bank, tag_bank
