"""Cache-decay leakage analysis — the second technique of Section 6.4.

Cache decay (Kaxiras et al. [16]) switches a line *off* after a fixed
idle interval: unlike drowsy mode the contents are lost, so leakage
savings trade against decay-induced misses (a re-reference after the
window would have hit but now misses).

The paper's point is qualitative — decay "can still be used on the
B-Cache, since those less accessed sets can still be in a drowsy
state" — so this module provides the first-order analysis: run a cache
over a trace while tracking per-block idle gaps, and report

* the fraction of hits that an idle window of ``decay_window`` accesses
  would have converted into misses (the decay cost), and
* the fraction of line-lifetime spent beyond the window (*dead time*,
  the leakage saved — Kaxiras reports most lines are dead most of the
  time, which holds here too).

The estimate is open-loop (induced misses are counted, not fed back);
good to first order because decay windows are chosen so induced misses
are rare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.caches.base import Cache


@dataclass(frozen=True)
class DecayReport:
    """First-order decay analysis of one (cache, trace, window) run."""

    decay_window: int
    accesses: int
    hits: int
    decay_induced_misses: int
    live_time: int
    dead_time: int

    @property
    def induced_miss_fraction(self) -> float:
        """Fraction of hits the decay window would have destroyed."""
        if not self.hits:
            return 0.0
        return self.decay_induced_misses / self.hits

    @property
    def dead_time_fraction(self) -> float:
        """Fraction of resident line-time spent idle beyond the window —
        the leakage a decay policy eliminates."""
        total = self.live_time + self.dead_time
        if not total:
            return 0.0
        return self.dead_time / total


def simulate_decay(
    cache: Cache,
    addresses: Iterable[int],
    decay_window: int = 4000,
) -> DecayReport:
    """Run ``addresses`` through ``cache`` under a decay-window analysis.

    Idle gaps are measured in accesses (a cycle-accurate window is a
    constant factor away at a given IPC).  Dead time is accumulated per
    inter-reference gap: ``min(gap, window)`` of each gap is live (the
    line waits, powered, until the decay timer fires), the remainder is
    dead.
    """
    if decay_window <= 0:
        raise ValueError("decay_window must be positive")
    last_touch: dict[int, int] = {}
    decayed = 0
    live = 0
    dead = 0
    now = 0
    offset_bits = cache.offset_bits
    for address in addresses:
        now += 1
        block = address >> offset_bits
        result = cache.access(address)
        previous = last_touch.get(block)
        if previous is not None:
            gap = now - previous
            if result.hit:
                live += min(gap, decay_window)
                dead += max(0, gap - decay_window)
                if gap > decay_window:
                    decayed += 1
            else:
                # The block left the cache in between; its tail
                # residency is already bounded by the eviction.
                live += min(gap, decay_window)
        last_touch[block] = now
        if result.evicted is not None:
            last_touch.pop(result.evicted >> offset_bits, None)
    return DecayReport(
        decay_window=decay_window,
        accesses=now,
        hits=cache.stats.hits,
        decay_induced_misses=decayed,
        live_time=live,
        dead_time=dead,
    )
