"""Gate-level decoder timing — Table 1 of the paper.

The paper's HSPICE conclusion (Section 5.1) is *relative*: for every
subarray size used by level-one caches (8 kB down to 512 B), the
B-Cache's decoder — a CAM-based programmable part in parallel with a
shortened non-programmable part, merged in the wordline driver whose
inverter is resized into an equally fast 2-input NAND [28] — has time
slack against the original local decoder.  Therefore the B-Cache adds
no access-time overhead.

We reproduce that with a logical-effort delay model:

``stage delay = tau * (p_gate + g_gate * fanout)``

with standard logical efforts ``g`` and parasitics ``p`` for NAND/NOR
gates.  The decoder compositions per subarray size are taken verbatim
from Table 1 (e.g. the 8x256 decoder is "3D-3R": 3-input NAND
predecoders into 3-input NOR word gates).  CAM search delay is modelled
as search-line drive (segmented, Section 5.1) plus matchline
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.technology import TSMC018, Technology


def _nand(inputs: int) -> tuple[float, float]:
    """(logical effort, parasitic delay) of an n-input NAND."""
    return (inputs + 2) / 3.0, float(inputs)


def _nor(inputs: int) -> tuple[float, float]:
    """(logical effort, parasitic delay) of an n-input NOR."""
    return (2 * inputs + 1) / 3.0, float(inputs)


def _stage_delay(gate: tuple[float, float], fanout: float, tech: Technology) -> float:
    g, p = gate
    return tech.tau_ns * (p + g * fanout)


@dataclass(frozen=True)
class DecoderTiming:
    """Timing of one original-vs-B-Cache decoder pair (one Table 1 column)."""

    address_bits: int
    wordlines: int
    original_composition: str
    original_ns: float
    bcache_npd_composition: str
    bcache_npd_ns: float
    bcache_pd_ns: float

    @property
    def bcache_ns(self) -> float:
        """B-Cache decoder delay: PD and NPD evaluate in parallel and
        are merged in the (resized, free) wordline NAND."""
        return max(self.bcache_npd_ns, self.bcache_pd_ns)

    @property
    def slack_ns(self) -> float:
        """Positive slack means no access-time overhead (paper's claim)."""
        return self.original_ns - self.bcache_ns

    @property
    def subarray_bytes(self) -> int:
        """Subarray capacity with 32-byte lines (one line per wordline)."""
        return self.wordlines * 32


#: Decoder compositions per Table 1: (address bits, wordlines,
#: original composition, B-Cache NPD composition).  "kD-mR" means
#: k-input NAND predecode into m-input NOR word gates.
_TABLE1_SHAPES: tuple[tuple[int, int, str, str], ...] = (
    (8, 256, "3D-3R", "3D-2R"),
    (7, 128, "3D-3R", "2D-2R"),
    (6, 64, "2D-3R", "NAND3"),
    (5, 32, "3D-2R", "NAND2"),
    (4, 16, "2D-2R", "INV"),
)


#: Load seen by the gate driving a wordline driver (inverter input,
#: in inverter-equivalents).
_DRIVER_LOAD = 4.0
#: Load seen by an NPD/PD output line: the 8 clusters' word NAND gates,
#: resized per [28] so each costs about one inverter input.
_NPD_LINE_LOAD = 8.0


def _composition_delay(
    composition: str, nbits: int, tech: Technology, bcache_npd: bool = False
) -> float:
    """Delay of a decoder composition over ``nbits`` address bits.

    Original decoders: NAND predecode (each predecode line is shared by
    ``2^(nbits - k)`` word NORs) followed by the word NOR driving one
    wordline driver.  B-Cache NPDs decode three fewer bits (moved into
    the PD) but each output line drives the merged word NAND of all 8
    clusters, a heavier load — the effect the paper notes makes the
    B-Cache's 4x16 NPD slower than the conventional 4x16 decoder of a
    512 B subarray (Section 5.1).
    """
    line_load = _NPD_LINE_LOAD if bcache_npd else _DRIVER_LOAD
    if composition == "INV":
        # Degenerate 1-bit NPD: an address buffer drives the word NANDs.
        return _stage_delay((1.0, 1.0), line_load, tech)
    if composition.startswith("NAND"):
        inputs = int(composition[-1])
        return _stage_delay(_nand(inputs), line_load, tech)
    nand_inputs = int(composition[0])
    nor_inputs = int(composition[3])
    predecode_fanout = 2.0 ** (nbits - nand_inputs)
    return (
        _stage_delay(_nand(nand_inputs), predecode_fanout, tech)
        + _stage_delay(_nor(nor_inputs), line_load, tech)
    )


def cam_search_delay_ns(
    bits: int, entries: int, tech: Technology = TSMC018, segmented: bool = True
) -> float:
    """PD search delay: search-line drive plus matchline evaluation.

    Search bitlines are segmented with repeater inverters (Section 5.1,
    Figure 6c), making the drive delay grow with the logarithm of the
    entry count instead of linearly.
    """
    if segmented:
        search_ns = tech.tau_ns * (2.0 + 1.5 * max(1, entries).bit_length())
    else:
        search_ns = tech.tau_ns * (2.0 + 0.8 * entries)
    matchline_ns = tech.tau_ns * (1.5 + 0.6 * bits)
    return search_ns + matchline_ns


def table1_timings(tech: Technology = TSMC018) -> list[DecoderTiming]:
    """All five Table 1 decoder pairs, largest subarray first."""
    timings = []
    for bits, wordlines, original, npd in _TABLE1_SHAPES:
        original_ns = _composition_delay(original, bits, tech)
        # The B-Cache NPD decodes three fewer bits (they moved to the PD).
        npd_ns = _composition_delay(npd, bits - 3, tech, bcache_npd=True)
        # The PD is a 6-bit CAM; each covers the subarray's rows split
        # across the 8 clusters.
        pd_entries = max(1, wordlines // 8)
        pd_ns = cam_search_delay_ns(6, pd_entries, tech)
        timings.append(
            DecoderTiming(
                address_bits=bits,
                wordlines=wordlines,
                original_composition=original,
                original_ns=original_ns,
                bcache_npd_composition=npd,
                bcache_npd_ns=npd_ns,
                bcache_pd_ns=pd_ns,
            )
        )
    return timings


def all_have_slack(tech: Technology = TSMC018) -> bool:
    """The paper's headline timing claim (Section 5.1)."""
    return all(t.slack_ns >= 0.0 for t in table1_timings(tech))
