"""Drowsy-cache leakage extension — Section 6.4's closing observation.

The paper notes that even after balancing, "the B-Cache still has many
cache sets that are less accessed", so leakage-reduction techniques
that exploit non-uniform set usage — Drowsy caches [9] and Cache decay
[16] — remain applicable on top of the B-Cache.

This module quantifies that claim: given per-set access counts from a
run, it estimates the fraction of (set, time) leakage that a drowsy
policy saves when sets idle longer than a decay window are put in a
low-leakage state.  The model is intentionally simple — accesses are
assumed evenly spread within each set's active share of the run — but
it captures the effect the paper points at: balanced accesses do *not*
destroy the idleness drowsy techniques need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.counters import CacheStats

#: Leakage of a drowsy cell relative to an awake one (Flautner et al.
#: report ~6-10x reduction; we use a conservative factor).
DROWSY_LEAKAGE_RATIO = 0.10
#: Cycles to wake a drowsy line (charged as a latency note, not
#: modelled in the timing pipeline).
WAKEUP_CYCLES = 1


@dataclass(frozen=True)
class DrowsyReport:
    """Leakage estimate for one run under a decay-window drowsy policy."""

    decay_window: int
    total_accesses: int
    num_sets: int
    awake_fraction: float

    @property
    def leakage_ratio(self) -> float:
        """Leakage relative to an always-awake cache (lower is better)."""
        drowsy_fraction = 1.0 - self.awake_fraction
        return self.awake_fraction + drowsy_fraction * DROWSY_LEAKAGE_RATIO

    @property
    def leakage_saving(self) -> float:
        """Fraction of leakage removed vs an always-awake cache."""
        return 1.0 - self.leakage_ratio


def estimate_drowsy_leakage(
    stats: CacheStats,
    decay_window: int = 2000,
    run_length: int | None = None,
) -> DrowsyReport:
    """Estimate drowsy leakage from per-set access counts.

    Each access to a set keeps it awake for ``decay_window`` further
    accesses of the run (the drowsy policy's refresh).  With accesses
    to a set assumed uniformly spread over the run, the awake time of a
    set with ``k`` accesses over a run of ``N`` is approximately
    ``min(1, k * decay_window / N)`` — a set must be touched at least
    once per window to stay awake throughout.
    """
    if decay_window <= 0:
        raise ValueError("decay_window must be positive")
    total = run_length if run_length is not None else stats.accesses
    if total <= 0:
        raise ValueError("run has no accesses")
    awake = 0.0
    for count in stats.set_accesses:
        awake += min(1.0, count * decay_window / total)
    return DrowsyReport(
        decay_window=decay_window,
        total_accesses=total,
        num_sets=stats.num_sets,
        awake_fraction=awake / stats.num_sets,
    )
