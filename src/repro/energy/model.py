"""Per-configuration access energy (Table 3) and whole-run memory
energy (Figure 10 / Figure 9).

Access energy
-------------
:func:`access_energy_for` maps a cache spec string (the same grammar as
:func:`repro.caches.factory.make_cache`) to an :class:`EnergyBreakdown`.
The B-Cache's entry implements Table 3's accounting:

* the tag side shrinks by 3 bits (20 -> 17 bit entries), scaling the
  tag bitline/senseamp components;
* the conventional decoders lose gates (NAND3s removed, NOR3 -> NOR2),
  a small decode saving;
* every subarray's PD searches on every access: thirty-two 6x16 CAMs
  (data) plus sixty-four 6x8 CAMs (tag), 101.8 pJ total.

Net: +10.5 % over the baseline — while remaining far below the 2-, 4-
and 8-way caches (Section 5.4).

System energy (Figure 10)
-------------------------
``E_mem = E_dyn + E_static`` with
``E_dyn = cache_access * E_cache_access + cache_miss * E_miss``,
``E_miss = E_next_level_mem + E_cache_block_refill``, and static energy
proportional to execution cycles.  Following the paper's methodology,
off-chip access costs 100x a baseline L1 access and ``k_static = 0.5``:
the per-cycle static power is chosen so that static energy equals 50 %
of the *baseline* configuration's total, then held fixed across
configurations — which is exactly how a shorter runtime turns into
static-energy savings for the B-Cache (Section 6.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.config import BCacheGeometry
from repro.energy.cacti_lite import (
    EnergyBreakdown,
    conventional_access_energy,
    fully_associative_probe_energy,
)
from repro.energy.cam import pd_banks_for
from repro.energy.technology import TSMC018, Technology

#: Fraction of the tag-side array energy saved by the 3-bit tag
#: reduction (17/20 entries -> 15 % smaller arrays).
_TAG_SHRINK = 1.0 - 17.0 / 20.0
#: Fraction of decode energy saved by the removed NAND3 gates and the
#: NOR3 -> NOR2 substitutions (Section 5.1's gate accounting).
_DECODE_SAVING = 0.02


@dataclass(frozen=True)
class ConfigEnergy:
    """Energy figures the system model needs for one cache level."""

    access: EnergyBreakdown
    #: Extra energy charged per miss *probe* (victim-buffer CAM search);
    #: zero for organisations without a miss-time side structure.
    miss_probe_pj: float = 0.0
    #: Fraction of misses on which the tag/data arrays are never read
    #: because the decoder pre-determines the miss (B-Cache PD misses,
    #: Section 6.2: ~80 % of misses are predicted, saving array energy).
    predicted_miss_array_saving: float = 0.0

    @property
    def access_pj(self) -> float:
        """Total per-access energy in pJ."""
        return self.access.total_pj


def bcache_access_energy(
    geometry: BCacheGeometry,
    tech: Technology = TSMC018,
    data_subarrays: int = 4,
    tag_subarrays: int = 8,
) -> EnergyBreakdown:
    """Table 3's B-Cache row: baseline components adjusted, PDs added."""
    base = conventional_access_energy(geometry.size, geometry.line_size, 1, tech)
    components = dict(base.components)
    for name in ("T-SA", "T-BL-WL"):
        components[name] *= 1.0 - _TAG_SHRINK
    for name in ("T-Dec", "D-Dec"):
        components[name] *= 1.0 - _DECODE_SAVING
    data_bank, tag_bank = pd_banks_for(geometry, data_subarrays, tag_subarrays)
    components["PD"] = (
        data_bank.search_energy_pj(tech) + tag_bank.search_energy_pj(tech)
    )
    return EnergyBreakdown(components)


_BCACHE_RE = re.compile(r"^mf(\d+)_bas(\d+)$")
_WAYS_RE = re.compile(r"^(\d+)way$")
_VICTIM_RE = re.compile(r"^victim(\d+)$")


def access_energy_for(
    spec: str,
    size: int = 16 * 1024,
    line_size: int = 32,
    tech: Technology = TSMC018,
) -> ConfigEnergy:
    """Per-access energy for a cache spec string (factory grammar)."""
    spec = spec.strip().lower()
    if spec == "dm":
        return ConfigEnergy(access=conventional_access_energy(size, line_size, 1, tech))
    match = _WAYS_RE.match(spec)
    if match:
        ways = int(match.group(1))
        return ConfigEnergy(
            access=conventional_access_energy(size, line_size, ways, tech)
        )
    match = _VICTIM_RE.match(spec)
    if match:
        entries = int(match.group(1))
        return ConfigEnergy(
            access=conventional_access_energy(size, line_size, 1, tech),
            miss_probe_pj=fully_associative_probe_energy(entries, tech=tech),
        )
    match = _BCACHE_RE.match(spec)
    if match:
        geometry = BCacheGeometry(
            size,
            line_size,
            mapping_factor=int(match.group(1)),
            associativity=int(match.group(2)),
        )
        return ConfigEnergy(access=bcache_access_energy(geometry, tech))
    raise ValueError(f"no energy model for cache spec {spec!r}")


# ----------------------------------------------------------------------
# Whole-run energy (Figure 10 equations)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunActivity:
    """Counts from one simulated run, as the Figure 10 equations need."""

    l1i_accesses: int
    l1i_misses: int
    l1i_pd_predicted_misses: int
    l1d_accesses: int
    l1d_misses: int
    l1d_pd_predicted_misses: int
    l2_accesses: int
    l2_misses: int
    cycles: float


@dataclass(frozen=True)
class EnergyReport:
    """Total memory-related energy of one run, in pJ."""

    dynamic_pj: float
    static_pj: float

    @property
    def total_pj(self) -> float:
        """Dynamic plus static energy of the run, in pJ."""
        return self.dynamic_pj + self.static_pj


class SystemEnergyModel:
    """Figure 10's equations over the L1I/L1D/L2/memory hierarchy."""

    def __init__(
        self,
        l1i: ConfigEnergy,
        l1d: ConfigEnergy,
        size: int = 16 * 1024,
        line_size: int = 32,
        tech: Technology = TSMC018,
        k_static: float = 0.5,
    ) -> None:
        self.l1i = l1i
        self.l1d = l1d
        self.tech = tech
        self.k_static = k_static
        baseline_l1 = conventional_access_energy(size, line_size, 1, tech)
        self.l2_access_pj = conventional_access_energy(
            256 * 1024, 128, 4, tech
        ).total_pj
        # Off-chip access: 100x the baseline L1 access (Section 6.2).
        self.offchip_pj = 100.0 * baseline_l1.total_pj
        # Refilling one L1 block: write a line into the L1 arrays,
        # approximated as one more L1-sized access.
        self.l1_refill_pj = baseline_l1.total_pj
        self.l2_refill_pj = self.l2_access_pj

    def _level_dynamic(
        self, config: ConfigEnergy, accesses: int, misses: int, predicted: int
    ) -> float:
        # Predicted misses skip the tag/data array read: only the
        # decode-side energy is spent.  Approximate the array share as
        # everything except the decoders and PD.
        breakdown = config.access.components
        array_pj = sum(
            value
            for name, value in breakdown.items()
            if name not in ("T-Dec", "D-Dec", "PD")
        )
        energy = accesses * config.access_pj
        energy -= predicted * array_pj
        energy += misses * (config.miss_probe_pj + self.l1_refill_pj)
        return energy

    def dynamic_pj(self, activity: RunActivity) -> float:
        """``E_dyn`` of Figure 10 over the whole hierarchy."""
        energy = self._level_dynamic(
            self.l1i,
            activity.l1i_accesses,
            activity.l1i_misses,
            activity.l1i_pd_predicted_misses,
        )
        energy += self._level_dynamic(
            self.l1d,
            activity.l1d_accesses,
            activity.l1d_misses,
            activity.l1d_pd_predicted_misses,
        )
        energy += activity.l2_accesses * self.l2_access_pj
        energy += activity.l2_misses * (self.offchip_pj + self.l2_refill_pj)
        return energy

    def static_pj_per_cycle_for_baseline(self, baseline: RunActivity) -> float:
        """Per-cycle static power making static = ``k_static`` of the
        baseline's total (the paper's calibration)."""
        dynamic = self.dynamic_pj(baseline)
        # static = k/(1-k) * dynamic  =>  total has fraction k static.
        return (self.k_static / (1.0 - self.k_static)) * dynamic / baseline.cycles

    def report(self, activity: RunActivity, static_pj_per_cycle: float) -> EnergyReport:
        """Total energy of one run given the calibrated static power."""
        return EnergyReport(
            dynamic_pj=self.dynamic_pj(activity),
            static_pj=static_pj_per_cycle * activity.cycles,
        )
