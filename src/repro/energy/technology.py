"""0.18 µm technology constants for the circuit models.

The paper's circuit numbers come from HSPICE at 0.18 µm plus Cacti 3.2
(Section 5).  We cannot run either, so the models in this package are
analytic, built from the standard logical-effort / capacitance-energy
formulations and *calibrated* against every absolute number the paper
publishes:

* 6x8 CAM decoder: 0.78 pJ per search (Section 5.4);
* 6x16 CAM decoder: 1.62 pJ per search (Section 5.4);
* CAM cell area = 1.25x the SRAM cell area (Sections 5.1, 5.3);
* B-Cache energy per access = baseline + 10.5 % (Section 5.4 /
  Table 3), which pins the baseline cache's absolute energy scale;
* direct-mapped vs 8-way per-access power: -68.8 % at 16 kB and
  -74.7 % at 8 kB (Section 1).

All constants below are in SI-flavoured engineering units: pJ, ns, µm².
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Process parameters used by the array and gate models."""

    name: str = "tsmc018"
    feature_um: float = 0.18
    vdd: float = 1.8
    #: Logical-effort time unit tau (ns): delay of a fanout-1 inverter.
    tau_ns: float = 0.025
    #: Energy switched per bitline pair per row of array height (pJ).
    bitline_pj_per_row: float = 0.00195
    #: Energy per wordline per column driven (pJ).
    wordline_pj_per_col: float = 0.00085
    #: Energy per sense amplifier activation (pJ).
    senseamp_pj: float = 0.057
    #: Energy per decoder gate-equivalent switched (pJ).
    decode_pj_per_gate: float = 0.012
    #: Energy per output-driver bit (pJ).
    output_pj_per_bit: float = 0.021
    #: CAM search energy model, fitted to the paper's two published
    #: points (Section 5.4: 6x8 CAM = 0.78 pJ, 6x16 CAM = 1.62 pJ per
    #: search).  Energy scales linearly with search width (bits) and
    #: slightly superlinearly with entry count — match/search-line
    #: drivers are sized up with the array:
    #: ``E = cam_pj_scale * (bits / 6) * entries ** cam_entry_exponent``.
    cam_pj_scale: float = 0.08734
    cam_entry_exponent: float = 1.0544
    #: SRAM cell area (µm²) at 0.18 µm (6T cell).
    sram_cell_um2: float = 4.65
    #: CAM/SRAM cell area ratio (paper: "25% larger").
    cam_area_ratio: float = 1.25

    def cam_search_energy_pj(self, bits: int, entries: int) -> float:
        """Energy of one search of a ``bits x entries`` CAM decoder."""
        return self.cam_pj_scale * (bits / 6.0) * entries**self.cam_entry_exponent


#: Default process used throughout the study.
TSMC018 = Technology()
