"""Parallel experiment engine: trace store, process-pool runner, bench.

Three pieces (see ``docs/engine.md``):

* :mod:`repro.engine.trace_store` — on-disk ``array('Q')`` blobs so
  every synthetic trace is generated exactly once per machine;
* :mod:`repro.engine.runner` — deterministic process-pool fan-out of
  (spec, benchmark, side, scale) jobs with bit-identical statistics;
* :mod:`repro.engine.bench` — the ``bcache-bench`` perf-tracking
  harness behind ``BENCH_engine.json``.
"""

from repro.engine.runner import SweepJob, default_jobs, execute_job, run_sweep
from repro.engine.trace_store import TraceStore, default_store, set_default_store

__all__ = [
    "SweepJob",
    "TraceStore",
    "default_jobs",
    "default_store",
    "execute_job",
    "run_sweep",
    "set_default_store",
]
