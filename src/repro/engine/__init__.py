"""Parallel experiment engine: trace store, runner, resilience, bench.

Five pieces (see ``docs/engine.md``):

* :mod:`repro.engine.trace_store` — on-disk ``array('Q')`` blobs (CRC32
  framed, corrupt files quarantined + regenerated) so every synthetic
  trace is generated exactly once per machine;
* :mod:`repro.engine.runner` — deterministic process-pool fan-out of
  (spec, benchmark, side, scale) jobs with bit-identical statistics;
* :mod:`repro.engine.resilience` — crash-safe execution: per-job
  retries with backoff, hung-worker timeouts, the durable result
  journal behind ``run_sweep(..., resume=run_id)``, and serial
  fallback after repeated pool failures;
* :mod:`repro.engine.faultinject` — deterministic fault injection
  (:class:`FaultPlan`) proving every recovery path, plus the CI chaos
  harness (``python -m repro.engine.faultinject``);
* :mod:`repro.engine.bench` — the ``bcache-bench`` perf-tracking
  harness behind ``BENCH_engine.json``.
"""

import importlib
from typing import Any

from repro.engine.runner import (
    SweepJob,
    available_cpus,
    default_jobs,
    execute_job,
    run_sweep,
)
from repro.engine.trace_store import TraceStore, default_store, set_default_store

#: Symbols resolved lazily (PEP 562) so ``python -m
#: repro.engine.faultinject`` does not double-import its own module and
#: plain sweeps never pay the resilience import.
_LAZY = {
    "FAULT_KINDS": "faultinject",
    "FaultPlan": "faultinject",
    "FaultPlanError": "faultinject",
    "FaultSpec": "faultinject",
    "InjectedFault": "faultinject",
    "ResilienceConfig": "resilience",
    "ResultJournal": "resilience",
    "RetryPolicy": "resilience",
    "SweepFailure": "resilience",
    "default_run_root": "resilience",
    "job_key": "resilience",
}


def __getattr__(name: str) -> Any:
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedFault",
    "ResilienceConfig",
    "ResultJournal",
    "RetryPolicy",
    "SweepFailure",
    "SweepJob",
    "TraceStore",
    "available_cpus",
    "default_jobs",
    "default_run_root",
    "default_store",
    "execute_job",
    "job_key",
    "run_sweep",
    "set_default_store",
]
