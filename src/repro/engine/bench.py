"""``bcache-bench`` — perf-tracking harness for the engine hot paths.

Measures two things and writes them to ``BENCH_engine.json``:

* **Hot-loop speedup** — wall time of the per-access ``Cache.access``
  replay vs the batch :meth:`Cache.access_trace` kernel, per spec, on
  one seeded mixed (read/write) reference stream.  Each measurement is
  the *minimum* of several repeats of a fresh-cache replay (minimum is
  the standard robust estimator for timing noise) and the two paths'
  :class:`~repro.stats.counters.CacheStats` are asserted bit-identical
  before any number is reported.
* **Sweep scaling** — wall time of a (spec x benchmark) sweep through
  :func:`repro.engine.runner.run_sweep` serially and at each requested
  worker count, asserting bit-identical statistics at every count.

Regression gating compares *speedup ratios*, not absolute seconds:
ratios are dimensionless, so a baseline recorded on one machine
transfers to another.  ``--check BASELINE`` fails (exit 1) when any
spec's hot-loop speedup drops below ``tolerance`` (default 0.7, i.e. a
30 % regression) times the baseline's, or when any parallel sweep
stops being bit-identical.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.caches import columnar, make_cache
from repro.engine.runner import SweepJob, available_cpus, run_sweep
from repro.engine.trace_store import default_store
from repro.obs import events as obs_events
from repro.obs import instrument as _obs

SCHEMA = "bcache-bench/1"

#: Hot-loop specs: the baseline, a classic set-associative design and
#: the paper's headline B-Cache point.
HOT_SPECS = ("dm", "8way", "mf8_bas8")

#: Sweep grid for the scaling measurement.
SWEEP_SPECS = ("dm", "2way", "4way", "8way", "mf8_bas8", "victim16")
SWEEP_BENCHMARKS = ("gzip", "gcc", "equake", "mcf")


def _replay_scalar(
    cache: Any, addresses: Sequence[int], kinds: Sequence[int]
) -> float:
    """Per-access replay; returns elapsed seconds."""
    access = cache.access
    start = time.perf_counter()
    for address, kind in zip(addresses, kinds):
        access(address, kind == 1)
    return time.perf_counter() - start


def _replay_batch(
    cache: Any, addresses: Sequence[int], kinds: Sequence[int]
) -> float:
    """Batch replay; returns elapsed seconds."""
    start = time.perf_counter()
    cache.access_trace(addresses, kinds)
    return time.perf_counter() - start


@contextlib.contextmanager
def _numpy_disabled() -> Iterator[None]:
    """Force the pure-stdlib kernels for the duration of the block."""
    previous = os.environ.get(columnar.ENV_NUMPY)
    os.environ[columnar.ENV_NUMPY] = "off"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[columnar.ENV_NUMPY]
        else:
            os.environ[columnar.ENV_NUMPY] = previous


def bench_hot_loop(
    n: int, repeats: int, benchmark: str = "gcc", seed: int = 2006
) -> dict:
    """Time scalar vs batch replay per spec; verify identical stats.

    Both kernel flavours are measured: the pure-stdlib batch loop
    (under ``REPRO_NUMPY=off``) always, and the vectorised numpy kernel
    whenever the capability probe passes.  ``batch_s``/``speedup``
    describe the default path (what ``access_trace`` actually runs);
    ``stdlib_s``/``stdlib_speedup`` pin the canonical fallback.
    """
    addresses, kinds = default_store().accesses(benchmark, "data", n, seed)
    results = {}
    for spec in HOT_SPECS:
        scalar_cache = make_cache(spec)
        scalar_time = min(
            _timed_iteration(_replay_scalar, spec, "scalar", i, addresses, kinds)
            for i in range(repeats)
        )
        with _numpy_disabled():
            stdlib_time = min(
                _timed_iteration(_replay_batch, spec, "stdlib", i, addresses, kinds)
                for i in range(repeats)
            )
        if columnar.numpy_enabled():
            batch_time = min(
                _timed_iteration(_replay_batch, spec, "batch", i, addresses, kinds)
                for i in range(repeats)
            )
        else:
            batch_time = stdlib_time
        # Correctness gate: one final replay of each flavour, compared
        # field-for-field (including the per-set counters).
        _replay_scalar(scalar_cache, addresses, kinds)
        batch_cache = make_cache(spec)
        _replay_batch(batch_cache, addresses, kinds)
        with _numpy_disabled():
            stdlib_cache = make_cache(spec)
            _replay_batch(stdlib_cache, addresses, kinds)
        identical = (
            scalar_cache.stats == batch_cache.stats == stdlib_cache.stats
        )
        results[spec] = {
            "scalar_s": scalar_time,
            "stdlib_s": stdlib_time,
            "batch_s": batch_time,
            "kernel": batch_cache.last_kernel,
            "speedup": scalar_time / batch_time if batch_time > 0 else 0.0,
            "stdlib_speedup": (
                scalar_time / stdlib_time if stdlib_time > 0 else 0.0
            ),
            "identical_stats": identical,
        }
    return results


def _timed_fresh(
    replay: Callable[[Any, Sequence[int], Sequence[int]], float],
    spec: str,
    addresses: Sequence[int],
    kinds: Sequence[int],
) -> float:
    """One timed replay on a freshly built cache (state-independent)."""
    return replay(make_cache(spec), addresses, kinds)


def _timed_iteration(
    replay: Callable[[Any, Sequence[int], Sequence[int]], float],
    spec: str,
    flavor: str,
    iteration: int,
    addresses: Sequence[int],
    kinds: Sequence[int],
) -> float:
    """One timed replay, reporting the raw sample to the obs event log.

    ``BENCH_engine.json`` only keeps the minimum of the repeats; with
    ``--obs-log`` every individual sample survives, so a suspicious
    delta between two reports can be root-caused (noisy neighbour vs
    genuine regression) after the fact.
    """
    seconds = _timed_fresh(replay, spec, addresses, kinds)
    _obs.bench_iteration(spec, flavor, iteration, seconds, len(addresses))
    return seconds


def bench_sweep(n: int, job_counts: tuple[int, ...], seed: int = 2006) -> dict:
    """Time a sweep serially and per worker count; verify identical."""
    sweep = [
        SweepJob(spec=spec, benchmark=benchmark, n=n, seed=seed)
        for spec in SWEEP_SPECS
        for benchmark in SWEEP_BENCHMARKS
    ]
    store = default_store()
    for job in sweep:  # materialise traces so timing excludes generation
        store.ensure(job.benchmark, job.side, job.n, job.seed)

    start = time.perf_counter()
    serial = run_sweep(sweep, workers=1)
    serial_time = time.perf_counter() - start

    results = {
        "jobs_total": len(sweep),
        "serial_s": serial_time,
        "workers": {},
    }
    for count in job_counts:
        if count <= 1:
            continue
        # The parallel path prewarms every trace into shared-memory
        # segments and the workers attach zero-copy, so this wall time
        # includes the export cost but no per-worker blob re-reads.
        start = time.perf_counter()
        parallel = run_sweep(sweep, workers=count)
        elapsed = time.perf_counter() - start
        results["workers"][str(count)] = {
            "wall_s": elapsed,
            "vs_serial": elapsed / serial_time if serial_time > 0 else 0.0,
            "speedup": serial_time / elapsed if elapsed > 0 else 0.0,
            "identical_stats": parallel == serial,
        }
    return results


def run_benchmarks(
    quick: bool, job_counts: tuple[int, ...], seed: int = 2006
) -> dict:
    """Run the full harness; returns the JSON-ready report."""
    hot_n = 50_000 if quick else 200_000
    repeats = 3 if quick else 5
    sweep_n = 10_000 if quick else 50_000
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
        "cpus_usable": available_cpus(),
        "numpy": columnar.numpy_enabled(),
        "hot_loop": bench_hot_loop(hot_n, repeats, seed=seed),
        "sweep": bench_sweep(sweep_n, job_counts, seed=seed),
    }


def check_against_baseline(
    report: dict, baseline: dict, tolerance: float = 0.7
) -> list[str]:
    """Regression check; returns a list of failure messages (empty = ok).

    The parallel-efficiency gate (``vs_serial`` must stay under 1.0)
    only fires when the machine actually has as many usable CPUs as the
    sweep used workers: on a 1-CPU CI runner a 4-worker sweep *cannot*
    beat serial, so the ratio is recorded but not judged there.

    Speedups are compared like-for-like: in a ``REPRO_NUMPY=off`` run
    the default path *is* the stdlib kernel, so its ``speedup`` is
    judged against the baseline's ``stdlib_speedup`` rather than the
    vectorised number a numpy-present baseline records.
    """
    failures = []
    numpy_run = bool(report.get("numpy", True))
    for spec, entry in report["hot_loop"].items():
        if not entry["identical_stats"]:
            failures.append(f"{spec}: batch stats diverge from per-access stats")
        base = baseline.get("hot_loop", {}).get(spec)
        if base is None:
            continue
        for key in ("speedup", "stdlib_speedup"):
            base_key = key
            if key == "speedup" and not numpy_run:
                base_key = "stdlib_speedup"
            if key not in entry or base_key not in base:
                continue
            floor = base[base_key] * tolerance
            if entry[key] < floor:
                failures.append(
                    f"{spec}: hot-loop {key} {entry[key]:.2f}x fell below "
                    f"{floor:.2f}x ({tolerance:.0%} of baseline "
                    f"{base_key} {base[base_key]:.2f}x)"
                )
    cpus_usable = int(report.get("cpus_usable", 1))
    for count, entry in report["sweep"]["workers"].items():
        if not entry["identical_stats"]:
            failures.append(f"sweep with {count} workers is not bit-identical")
        if int(count) <= cpus_usable and entry["vs_serial"] > 1.0:
            failures.append(
                f"sweep with {count} workers is slower than serial "
                f"(vs_serial {entry['vs_serial']:.2f} with {cpus_usable} "
                "usable CPUs): shared-memory prewarm is not paying off"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-bench``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="bcache-bench",
        description="Engine perf-tracking harness (hot loop + sweep scaling).",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller traces / fewer repeats (CI smoke)")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output JSON path (default BENCH_engine.json)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON; exit 1 on a "
                        ">30%% hot-loop regression or non-identical "
                        "parallel stats")
    parser.add_argument("--tolerance", type=float, default=0.7,
                        help="minimum fraction of the baseline speedup to "
                        "accept (default 0.7)")
    parser.add_argument("--jobs", default="2,4",
                        help="comma-separated worker counts for the sweep "
                        "scaling measurement (default 2,4)")
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--obs-log", metavar="PATH",
                        help="write raw per-iteration timings as obs events "
                        "to PATH (enables the events tier if REPRO_OBS is "
                        "off)")
    args = parser.parse_args(argv)

    try:
        job_counts = tuple(int(part) for part in args.jobs.split(",") if part)
    except ValueError:
        print(f"bad --jobs list: {args.jobs!r}", file=sys.stderr)
        return 2

    if args.obs_log:
        obs_events.configure(
            mode="full" if obs_events.metrics_enabled() else "events",
            log_path=args.obs_log,
        )

    report = run_benchmarks(args.quick, job_counts, seed=args.seed)

    for spec, entry in report["hot_loop"].items():
        flag = "" if entry["identical_stats"] else "  [STATS MISMATCH]"
        print(
            f"{spec:<10} scalar {entry['scalar_s'] * 1e3:8.1f} ms   "
            f"batch[{entry['kernel']}] {entry['batch_s'] * 1e3:8.1f} ms   "
            f"speedup {entry['speedup']:5.2f}x   "
            f"(stdlib {entry['stdlib_speedup']:5.2f}x){flag}"
        )
    sweep = report["sweep"]
    print(f"sweep      {sweep['jobs_total']} jobs serial "
          f"{sweep['serial_s'] * 1e3:8.1f} ms")
    for count, entry in sweep["workers"].items():
        flag = "" if entry["identical_stats"] else "  [STATS MISMATCH]"
        print(
            f"  --jobs {count:<3} {entry['wall_s'] * 1e3:8.1f} ms   "
            f"{entry['vs_serial']:.0%} of serial{flag}"
        )

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        try:
            baseline = json.loads(Path(args.check).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.check}: {exc}", file=sys.stderr)
            return 2
        failures = check_against_baseline(report, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
