"""Fault-tolerant multi-node sweep scheduler (``bcache-cluster``).

A :class:`ClusterCoordinator` partitions a sweep across N running
``bcache-serve`` endpoints (TCP or Unix, local or remote) and drives it
to **bit-identical** completion despite node failure.  Distribution
never changes *what* is simulated — every job runs the same
``make_cache / access_trace`` path a serial sweep uses, on whichever
node happens to serve it — so the merged result list compares ``==``
(full snapshots, per-set counters included) against a local
``run_sweep(jobs, workers=1)``.

Architecture (see ``docs/cluster.md``):

* :class:`NodeHandle` wraps one endpoint's
  :class:`~repro.serve.client.AsyncServeClient` with connect/read
  deadlines, health probing via the ``status`` op (``draining``,
  ``cpus_usable``, ``protocol_version``), an EWMA throughput estimate
  that sizes its pull batches, and a :class:`CircuitBreaker` with the
  classic closed/open/half-open states.
* The dispatch loop is **work-stealing**: jobs live in a single deque,
  each node's coroutine pulls batches sized by its observed throughput,
  and an idle node speculatively re-dispatches ("steals") the tail half
  of the most-loaded peer's in-flight batch.  Results are deduplicated
  on :func:`~repro.engine.resilience.job_key` — the first result wins,
  a slow node's late duplicate is counted and discarded, never merged
  twice.
* A dead or circuit-open node's in-flight jobs are re-queued at the
  front of the deque; when *every* node is down the coordinator
  degrades to local in-process execution (the same serial
  ``execute_job`` path ``run_sweep`` uses), so a sweep always
  completes.
* With ``run_id=`` the coordinator reuses the engine's crash-consistent
  :class:`~repro.engine.resilience.ResultJournal` (same create-or-resume
  semantics as ``run_sweep``): a coordinator SIGKILL resumes
  bit-identically, and each record now carries the ``node`` that served
  it for provenance.

Node-level chaos is deterministic: the ``node_down@job``,
``node_hang@job`` and ``node_flaky@job[:dispatch]`` kinds of the
faultinject DSL fire at exact dispatch coordinates, which is what the
``cluster-smoke`` CI job replays.

Run as a module (or via the ``bcache-cluster`` entry point) this file
is that CI harness: it sweeps a fleet, optionally under a fault plan,
and ``--verify`` gates on bit-identity against a local serial run.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import functools
import json
import logging
import sys
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Any, Iterable, Sequence

from repro.engine.faultinject import FaultPlan, FaultPlanError
from repro.engine.resilience import (
    ResultJournal,
    RetryPolicy,
    default_run_root,
    job_key,
)
from repro.engine.runner import SweepJob, execute_job
from repro.engine.trace_store import TraceStore, default_store
from repro.obs import events as obs_events
from repro.obs import instrument as _obs
from repro.obs import tracectx
from repro.obs.tracectx import TraceContext
from repro.serve.client import AsyncServeClient, ServeError
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.resultcache import ResultCache
from repro.stats.counters import CacheStats

log = logging.getLogger("repro.engine.cluster")

#: Circuit-breaker states (the classic three).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class ClusterError(RuntimeError):
    """Cluster coordination failed in a way retries cannot fix."""


class _InjectedNodeFault(RuntimeError):
    """Deterministic node-level fault raised at dispatch (testing only)."""


#: Everything a dispatch can throw that means "this node, right now" —
#: never "this job is bad".  The batch is re-dispatched elsewhere.
_DISPATCH_ERRORS = (
    OSError,
    TimeoutError,
    asyncio.TimeoutError,
    ProtocolError,
    ServeError,
    _InjectedNodeFault,
)


@dataclass(slots=True)
class CircuitBreaker:
    """Per-node circuit breaker: closed → open → half-open → closed.

    ``record_failure`` opens the circuit after ``failure_threshold``
    consecutive failures (or immediately when a half-open probe
    fails); ``ready`` keeps it open for ``reset_timeout`` seconds, then
    lets exactly one probe attempt through in the half-open state.
    ``record_success`` closes it again.
    """

    failure_threshold: int = 3
    reset_timeout: float = 2.0
    state: str = CLOSED
    failures: int = 0
    opened_at: float = 0.0

    def record_success(self) -> None:
        self.state = CLOSED
        self.failures = 0

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.failure_threshold:
            self.state = OPEN
            self.opened_at = now

    def ready(self, now: float) -> bool:
        """May the node be used (or probed) right now?"""
        if self.state == OPEN:
            if now - self.opened_at >= self.reset_timeout:
                self.state = HALF_OPEN
                return True
            return False
        return True


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Tuning for the cluster coordinator.

    Attributes:
        connect_timeout: deadline for the TCP/Unix connect handshake.
        probe_timeout: deadline for one ``status`` probe round trip.
        request_timeout: base deadline for a dispatched batch...
        per_job_timeout: ...plus this much per job in the batch.
        target_batch_seconds: batch sizing aims for this much work per
            pull, given the node's EWMA throughput.
        max_batch: hard cap on jobs per dispatched batch.
        probe_interval: re-probe period for a draining node.
        idle_tick: sleep when there is nothing to pull or steal.
        steal_threshold: minimum victim in-flight depth before an idle
            node steals (stealing a nearly-done batch only burns work).
        max_node_failures: consecutive failures before a node is
            declared dead for the rest of the sweep.
        breaker_failures / breaker_reset: circuit-breaker knobs.
        retry: backoff between a node's consecutive failures
            (exponential with deterministic jitter).
        backoff_seed: seed for the jitter generator.
        fsync: journal durability (disable only in tests).
    """

    connect_timeout: float = 5.0
    probe_timeout: float = 5.0
    request_timeout: float = 60.0
    per_job_timeout: float = 5.0
    target_batch_seconds: float = 1.0
    max_batch: int = 32
    probe_interval: float = 0.5
    idle_tick: float = 0.05
    steal_threshold: int = 2
    max_node_failures: int = 4
    breaker_failures: int = 3
    breaker_reset: float = 2.0
    retry: RetryPolicy = RetryPolicy()
    backoff_seed: int = 2006
    fsync: bool = True


@dataclass(slots=True)
class NodeStats:
    """Per-node dispatch accounting for :meth:`ClusterCoordinator.summary`."""

    dispatched: int = 0
    completed: int = 0
    redispatched: int = 0
    steals: int = 0
    duplicates: int = 0
    probe_failures: int = 0


@dataclass(slots=True)
class _Task:
    """One dispatch of one job: ``attempt`` counts dispatches (0-based)."""

    index: int
    attempt: int = 0


class NodeHandle:
    """One fleet endpoint: deadline-wrapped client + health + breaker."""

    def __init__(self, address: str, config: ClusterConfig) -> None:
        self.address = address
        self.config = config
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failures,
            reset_timeout=config.breaker_reset,
        )
        self.stats = NodeStats()
        self.dead = False
        self.draining = False
        self.cpus_usable = 1
        self.protocol_version: int | None = None
        #: EWMA jobs/second over this node's completed batches.
        self.throughput = 0.0
        self._client: AsyncServeClient | None = None

    async def _ensure_client(self) -> AsyncServeClient:
        if self._client is None:
            self._client = await asyncio.wait_for(
                AsyncServeClient.connect(
                    self.address,
                    timeout=self.config.request_timeout,
                    connect_timeout=self.config.connect_timeout,
                ),
                self.config.connect_timeout + 1.0,
            )
        return self._client

    async def drop_client(self) -> None:
        """Close and forget the connection (the next use reconnects)."""
        client, self._client = self._client, None
        if client is not None:
            with contextlib.suppress(OSError, TimeoutError, asyncio.TimeoutError):
                await asyncio.wait_for(client.close(), 1.0)

    async def probe(self) -> str:
        """One ``status`` round trip → ``"ok"``/``"draining"``/``"down"``.

        Refreshes ``draining``, ``cpus_usable`` and ``protocol_version``
        on success; a node speaking a newer protocol revision than this
        coordinator is treated as down (we cannot trust its payloads).
        """
        try:
            client = await self._ensure_client()
            status = await asyncio.wait_for(client.status(), self.config.probe_timeout)
        except _DISPATCH_ERRORS as exc:
            log.warning("cluster: probe of %s failed: %s", self.address, exc)
            self.stats.probe_failures += 1
            await self.drop_client()
            return "down"
        server = status.get("server", {})
        self.draining = bool(server.get("draining", False))
        cpus = server.get("cpus_usable")
        self.cpus_usable = max(1, cpus) if isinstance(cpus, int) else 1
        version = server.get("protocol_version")
        self.protocol_version = version if isinstance(version, int) else None
        if self.protocol_version is not None and self.protocol_version > PROTOCOL_VERSION:
            log.warning(
                "cluster: node %s speaks protocol %d (coordinator speaks %d); "
                "refusing to dispatch",
                self.address,
                self.protocol_version,
                PROTOCOL_VERSION,
            )
            return "down"
        return "draining" if self.draining else "ok"

    def batch_size(self) -> int:
        """Jobs to pull: ~``target_batch_seconds`` of work at the EWMA rate.

        Before the first batch completes there is no throughput sample,
        so the size falls back to ``2 × cpus_usable`` — enough to fill
        the node's shards without hoarding jobs a peer could run.
        """
        if self.throughput > 0.0:
            size = int(self.throughput * self.config.target_batch_seconds)
        else:
            size = self.cpus_usable * 2
        return max(1, min(self.config.max_batch, size))

    async def run_batch(
        self, jobs: Sequence[SweepJob], trace: str | None = None
    ) -> list[CacheStats]:
        """Dispatch one batch under a size-scaled deadline.

        ``trace`` (wire form) rides the sweep payload so the node's
        request-path spans join the coordinator's trace.
        """
        client = await self._ensure_client()
        deadline = (
            self.config.request_timeout + self.config.per_job_timeout * len(jobs)
        )
        start = time.monotonic()
        stats_list = await asyncio.wait_for(
            client.sweep(jobs, trace=trace), deadline
        )
        if len(stats_list) != len(jobs):
            raise ProtocolError(
                f"node {self.address} returned {len(stats_list)} results "
                f"for a {len(jobs)}-job batch"
            )
        elapsed = time.monotonic() - start
        if elapsed > 0.0:
            rate = len(jobs) / elapsed
            self.throughput = (
                rate if self.throughput == 0.0
                else 0.7 * self.throughput + 0.3 * rate
            )
        return stats_list


class ClusterCoordinator:
    """Drive one sweep across a fleet of ``bcache-serve`` endpoints.

    Construct with the fleet's addresses, then :meth:`run` a job list;
    the result list is order-aligned with the jobs and bit-identical to
    ``run_sweep(jobs, workers=1)``.  :meth:`summary` reports per-node
    accounting (dispatched/completed/redispatched/steals/duplicates)
    and the cluster totals afterwards.
    """

    def __init__(
        self,
        addresses: Sequence[str],
        config: ClusterConfig | None = None,
        store: TraceStore | None = None,
        result_cache: ResultCache | None = None,
    ) -> None:
        unique = list(dict.fromkeys(address.strip() for address in addresses))
        unique = [address for address in unique if address]
        if not unique:
            raise ValueError("a cluster needs at least one node address")
        self.config = config if config is not None else ClusterConfig()
        self.nodes = [NodeHandle(address, self.config) for address in unique]
        self.redispatch_total = 0
        self.steals_total = 0
        self.fallback_jobs = 0
        self.cache_hits = 0
        self._store = store
        self._cache = result_cache
        self._jobs: list[SweepJob] = []
        self._keys: list[str] = []
        self._key_indices: dict[str, list[int]] = {}
        self._results: list[CacheStats | None] = []
        self._remaining: set[int] = set()
        self._queue: deque[_Task] = deque()
        self._inflight: dict[str, dict[int, _Task]] = {}
        self._journal: ResultJournal | None = None
        self._journal_lock: asyncio.Lock | None = None
        self._plan: FaultPlan | None = None
        self._rng = Random(self.config.backoff_seed)

    # -- public API ----------------------------------------------------
    def run(
        self,
        jobs: Iterable[SweepJob],
        *,
        run_id: str | None = None,
        resume: str | None = None,
        run_root: str | Path | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> list[CacheStats]:
        """Run every job on the fleet; mirrors ``run_sweep`` semantics.

        ``run_id``/``resume`` are create-or-resume aliases exactly as in
        :func:`repro.engine.runner.run_sweep`: completed jobs replay
        from the journal, the rest are dispatched, and a coordinator
        killed mid-sweep resumes bit-identically.
        """
        job_list = list(jobs)
        if run_id and resume and run_id != resume:
            raise ValueError(
                f"run_id={run_id!r} and resume={resume!r} disagree; "
                "pass one (they are aliases)"
            )
        rid = run_id or resume
        journal: ResultJournal | None = None
        if rid:
            root = Path(run_root) if run_root is not None else default_run_root()
            journal = ResultJournal(root / rid, fsync=self.config.fsync)
            journal.open_run(rid, job_list)
        try:
            return asyncio.run(self._run_async(job_list, journal, fault_plan))
        finally:
            if journal is not None:
                journal.close()

    def summary(self) -> dict[str, Any]:
        """Per-node accounting and cluster totals for the last run."""
        return {
            "nodes": {
                node.address: {
                    "dead": node.dead,
                    "draining": node.draining,
                    "protocol_version": node.protocol_version,
                    "cpus_usable": node.cpus_usable,
                    "dispatched": node.stats.dispatched,
                    "completed": node.stats.completed,
                    "redispatched": node.stats.redispatched,
                    "steals": node.stats.steals,
                    "duplicates": node.stats.duplicates,
                    "probe_failures": node.stats.probe_failures,
                }
                for node in self.nodes
            },
            "nodes_up": sum(1 for node in self.nodes if not node.dead),
            "redispatch_total": self.redispatch_total,
            "steals_total": self.steals_total,
            "fallback_jobs": self.fallback_jobs,
            "cache_hits": self.cache_hits,
        }

    # -- coordinator core ----------------------------------------------
    async def _run_async(
        self,
        jobs: list[SweepJob],
        journal: ResultJournal | None,
        plan: FaultPlan | None,
    ) -> list[CacheStats]:
        self._jobs = jobs
        self._keys = [job_key(job) for job in jobs]
        self._key_indices = {}
        for index, key in enumerate(self._keys):
            self._key_indices.setdefault(key, []).append(index)
        self._journal = journal
        self._journal_lock = asyncio.Lock()
        self._plan = plan
        self._results = [None] * len(jobs)
        self._remaining = set()
        self._queue = deque()
        completed = journal.completed if journal is not None else {}
        for index, key in enumerate(self._keys):
            cached = completed.get(key)
            if cached is not None:
                self._results[index] = cached
            else:
                self._remaining.add(index)
        await self._consult_cache()
        for index in sorted(self._remaining):
            self._queue.append(_Task(index))
        self._inflight = {node.address: {} for node in self.nodes}
        if self._remaining:
            # Root the sweep's distributed trace in the job list itself:
            # hashing the first job key + count is deterministic across
            # reruns (no random, no clock — rule BCL019), so two runs of
            # the same sweep produce comparable trace ids.
            trace = (
                TraceContext.new(
                    f"cluster/{self._keys[0]}/{len(jobs)}"
                )
                if obs_events.enabled()
                else None
            )
            with obs_events.span(
                "cluster.sweep",
                trace=trace,
                jobs=len(jobs),
                pending=len(self._remaining),
                nodes=len(self.nodes),
            ):
                _obs.cluster_nodes_up(self._alive_count())
                await asyncio.gather(
                    *(self._node_loop(node) for node in self.nodes)
                )
                if self._remaining:
                    await self._run_local_fallback()
        _obs.cluster_nodes_up(self._alive_count())
        return [self._final(stats) for stats in self._results]

    async def _consult_cache(self) -> None:
        """Answer still-pending jobs from the content-addressed cache.

        Runs before any dispatch: a fleet sweep repeated with the same
        engine fingerprint costs zero node round-trips.  Cache reads
        touch disk, so they run on the default executor, not the loop.
        """
        cache = self._cache
        if cache is None or not self._remaining:
            return
        loop = asyncio.get_running_loop()
        for index in sorted(self._remaining):
            if index not in self._remaining:  # twin already answered
                continue
            job = self._jobs[index]
            snapshot = await loop.run_in_executor(None, cache.get, job)
            if snapshot is None:
                continue
            stats = CacheStats.from_snapshot(snapshot)
            for twin in self._key_indices[self._keys[index]]:
                if twin in self._remaining:
                    self._remaining.discard(twin)
                    self._results[twin] = stats
            self.cache_hits += 1

    async def _cache_store(self, job: SweepJob, stats: CacheStats) -> None:
        """Write-through one fresh result (off-loop: the put hits disk)."""
        cache = self._cache
        if cache is None:
            return
        await asyncio.get_running_loop().run_in_executor(
            None, functools.partial(cache.put, job, stats.snapshot())
        )

    @staticmethod
    def _final(stats: CacheStats | None) -> CacheStats:
        if stats is None:  # pragma: no cover - the loops above forbid it
            raise ClusterError("internal error: job finished without a result")
        return stats

    def _alive_count(self) -> int:
        return sum(1 for node in self.nodes if not node.dead)

    async def _node_loop(self, node: NodeHandle) -> None:
        """One node's pull/dispatch/commit loop (runs until done or dead)."""
        failures = 0
        needs_probe = True
        while self._remaining and not node.dead:
            if not node.breaker.ready(time.monotonic()):
                await asyncio.sleep(self.config.idle_tick)
                continue
            if needs_probe:
                health = await node.probe()
                if health == "down":
                    failures += 1
                    node.breaker.record_failure(time.monotonic())
                    if failures >= self.config.max_node_failures:
                        self._mark_dead(node, "repeated probe failures")
                        break
                    await asyncio.sleep(
                        self.config.retry.delay(failures - 1, self._rng)
                    )
                    continue
                if health == "draining":
                    await asyncio.sleep(self.config.probe_interval)
                    continue
                needs_probe = False
            batch = self._pull(node)
            if not batch:
                await asyncio.sleep(self.config.idle_tick)
                continue
            inflight = self._inflight[node.address]
            for task in batch:
                inflight[task.index] = task
            node.stats.dispatched += len(batch)
            try:
                self._apply_node_faults(node, batch)
                with _obs.stage_span(
                    "cluster_node", trace=tracectx.current(),
                    node=node.address, jobs=len(batch),
                ) as ctx:
                    stats_list = await node.run_batch(
                        [self._jobs[task.index] for task in batch],
                        trace=ctx.to_wire() if ctx is not None else None,
                    )
            except _DISPATCH_ERRORS as exc:
                for task in batch:
                    inflight.pop(task.index, None)
                self._redispatch(node, batch, exc)
                node.breaker.record_failure(time.monotonic())
                await node.drop_client()
                failures += 1
                needs_probe = True
                if node.dead or failures >= self.config.max_node_failures:
                    self._mark_dead(node, str(exc))
                    break
                await asyncio.sleep(
                    self.config.retry.delay(failures - 1, self._rng)
                )
                continue
            for task in batch:
                inflight.pop(task.index, None)
            failures = 0
            node.breaker.record_success()
            await self._commit(node, batch, stats_list)
        await node.drop_client()

    def _pull(self, node: NodeHandle) -> list[_Task]:
        """Pull a throughput-sized batch; steal from a loaded peer if dry."""
        size = node.batch_size()
        batch: list[_Task] = []
        while self._queue and len(batch) < size:
            task = self._queue.popleft()
            if task.index in self._remaining:
                batch.append(task)
        if batch:
            return batch
        victim: NodeHandle | None = None
        victim_pending: list[_Task] = []
        for other in self.nodes:
            if other is node or other.dead:
                continue
            pending = [
                task
                for task in self._inflight[other.address].values()
                if task.index in self._remaining
            ]
            if len(pending) > len(victim_pending):
                victim, victim_pending = other, pending
        if victim is None or len(victim_pending) < self.config.steal_threshold:
            return []
        tail = victim_pending[len(victim_pending) // 2:]
        stolen = [_Task(task.index, task.attempt + 1) for task in tail[:size]]
        if stolen:
            node.stats.steals += len(stolen)
            self.steals_total += len(stolen)
            _obs.cluster_steal(node.address, victim.address, len(stolen))
            log.info(
                "cluster: %s stole %d in-flight job(s) from %s",
                node.address,
                len(stolen),
                victim.address,
            )
        return stolen

    def _apply_node_faults(self, node: NodeHandle, batch: Sequence[_Task]) -> None:
        """Fire any node-level fault whose dispatch coordinates match."""
        plan = self._plan
        if plan is None:
            return
        for task in batch:
            for kind in plan.node_kinds(task.index, task.attempt):
                if kind == "node_down":
                    node.dead = True
                    raise _InjectedNodeFault(
                        f"node_down@{task.index}: injected permanent death "
                        f"of {node.address}"
                    )
                if kind == "node_hang":
                    raise _InjectedNodeFault(
                        f"node_hang@{task.index}: injected dispatch deadline "
                        f"expiry on {node.address}"
                    )
                raise _InjectedNodeFault(
                    f"node_flaky@{task.index}: injected transient error "
                    f"from {node.address}"
                )

    def _redispatch(
        self, node: NodeHandle, batch: Sequence[_Task], error: BaseException
    ) -> None:
        """Re-queue a failed batch (front of the deque, attempt + 1)."""
        requeued = 0
        for task in reversed(batch):
            if task.index in self._remaining:
                self._queue.appendleft(_Task(task.index, task.attempt + 1))
                requeued += 1
        node.stats.redispatched += requeued
        self.redispatch_total += requeued
        if requeued:
            _obs.cluster_redispatch(node.address, requeued)
        log.warning(
            "cluster: re-dispatching %d job(s) away from %s: %s",
            requeued,
            node.address,
            error,
        )

    async def _commit(
        self,
        node: NodeHandle,
        batch: Sequence[_Task],
        stats_list: Sequence[CacheStats],
    ) -> None:
        """First result wins: merge fresh results, discard duplicates."""
        for task, stats in zip(batch, stats_list):
            indices = [
                index
                for index in self._key_indices[self._keys[task.index]]
                if index in self._remaining
            ]
            if not indices:
                node.stats.duplicates += 1
                _obs.cluster_duplicate(node.address)
                continue
            for index in indices:
                self._remaining.discard(index)
                self._results[index] = stats
            node.stats.completed += 1
            _obs.cluster_job_served(node.address)
            await self._journal_write(self._jobs[task.index], stats, node.address)
            await self._cache_store(self._jobs[task.index], stats)

    async def _journal_write(
        self, job: SweepJob, stats: CacheStats, node_name: str
    ) -> None:
        """Append one result durably without blocking the event loop."""
        journal = self._journal
        lock = self._journal_lock
        if journal is None or lock is None:
            return
        loop = asyncio.get_running_loop()
        async with lock:
            await loop.run_in_executor(
                None, functools.partial(journal.record, job, stats, node=node_name)
            )

    async def _run_local_fallback(self) -> None:
        """Every node is down: finish the sweep in-process, serially.

        Uses the same :func:`~repro.engine.runner.execute_job` path a
        serial ``run_sweep`` uses, so the degraded results are still
        bit-identical — the fleet only ever buys throughput.
        """
        pending = sorted(self._remaining)
        log.warning(
            "cluster: every node is down; running %d remaining job(s) "
            "locally in-process",
            len(pending),
        )
        _obs.cluster_fallback(len(pending))
        loop = asyncio.get_running_loop()
        store = self._store if self._store is not None else default_store()
        for index in pending:
            if index not in self._remaining:
                continue
            job = self._jobs[index]
            stats = await loop.run_in_executor(
                None, functools.partial(execute_job, job, store)
            )
            for twin in self._key_indices[self._keys[index]]:
                if twin in self._remaining:
                    self._remaining.discard(twin)
                    self._results[twin] = stats
            self.fallback_jobs += 1
            await self._journal_write(job, stats, "local")
            await self._cache_store(job, stats)

    def _mark_dead(self, node: NodeHandle, reason: str) -> None:
        node.dead = True
        log.warning("cluster: node %s is dead for this sweep: %s",
                    node.address, reason)
        obs_events.emit("cluster.node_dead", node=node.address, reason=reason)
        _obs.cluster_nodes_up(self._alive_count())


def run_cluster_sweep(
    jobs: Iterable[SweepJob],
    addresses: Sequence[str],
    *,
    config: ClusterConfig | None = None,
    run_id: str | None = None,
    resume: str | None = None,
    run_root: str | Path | None = None,
    fault_plan: FaultPlan | None = None,
    store: TraceStore | None = None,
    result_cache: ResultCache | None = None,
) -> list[CacheStats]:
    """One-shot fleet sweep (``bcache-sim --connect host1,host2`` path)."""
    coordinator = ClusterCoordinator(
        addresses, config=config, store=store, result_cache=result_cache
    )
    return coordinator.run(
        jobs,
        run_id=run_id,
        resume=resume,
        run_root=run_root,
        fault_plan=fault_plan,
    )


# ----------------------------------------------------------------------
# CLI entry point / CI chaos harness
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bcache-cluster",
        description=(
            "Sweep a fleet of bcache-serve endpoints with health probing, "
            "work-stealing, and bit-identical failover; --verify gates on "
            "equality with a local serial run."
        ),
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="ADDRS",
        help="comma-separated endpoints (host:port or unix:/path.sock)",
    )
    parser.add_argument(
        "--benchmarks",
        default="gzip,equake,mcf",
        help="comma-separated synthetic benchmarks (default: %(default)s)",
    )
    parser.add_argument(
        "--specs",
        default="dm,2way",
        help="comma-separated cache specs (default: %(default)s)",
    )
    parser.add_argument("--n", type=int, default=4000, help="accesses per trace")
    parser.add_argument("--seed", type=int, default=2006, help="trace seed")
    parser.add_argument(
        "--run-id",
        default=None,
        help="journal under this id (create-or-resume, like bcache-sim)",
    )
    parser.add_argument(
        "--run-root",
        default=None,
        help="journal root (default $REPRO_RUN_ROOT)",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="fault DSL incl. node kinds, e.g. 'node_down@1,node_flaky@2'",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=5.0,
        help="per-node connect deadline in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=60.0,
        help="base per-batch deadline in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-run the sweep locally (serial) and require bit-identity",
    )
    parser.add_argument(
        "--expect-redispatch", type=int, default=None, metavar="N",
        help="fail unless at least N jobs were re-dispatched (CI gate)",
    )
    parser.add_argument(
        "--expect-fallback", type=int, default=None, metavar="N",
        help="fail unless at least N jobs ran via local fallback (CI gate)",
    )
    parser.add_argument(
        "--result-cache", nargs="?", const="", default=None, metavar="DIR",
        help="consult/fill the content-addressed result cache before "
        "dispatching (optional DIR overrides the default root)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``bcache-cluster``; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.WARNING, format="%(levelname)s %(name)s: %(message)s"
    )
    plan = None
    if args.inject_faults:
        try:
            plan = FaultPlan.parse(args.inject_faults)
        except FaultPlanError as exc:
            print(f"bcache-cluster: {exc}", file=sys.stderr)
            return 2
    jobs = [
        SweepJob(spec=spec, benchmark=benchmark, n=args.n, seed=args.seed)
        for benchmark in args.benchmarks.split(",")
        for spec in args.specs.split(",")
    ]
    config = ClusterConfig(
        connect_timeout=args.connect_timeout,
        request_timeout=args.request_timeout,
    )
    result_cache = (
        ResultCache(args.result_cache or None)
        if args.result_cache is not None
        else None
    )
    coordinator = ClusterCoordinator(
        args.connect.split(","), config=config, result_cache=result_cache
    )
    results = coordinator.run(
        jobs,
        run_id=args.run_id,
        run_root=args.run_root,
        fault_plan=plan,
    )
    summary = coordinator.summary()
    if args.json:
        print(json.dumps({"summary": summary}, indent=2, sort_keys=True))
    else:
        print(
            f"cluster: {len(jobs)} job(s) over {len(coordinator.nodes)} "
            f"node(s); {summary['nodes_up']} up at the end"
        )
        for address, entry in summary["nodes"].items():
            state = "DOWN" if entry["dead"] else "up"
            print(
                f"  node {address}: {state}  completed={entry['completed']} "
                f"redispatched={entry['redispatched']} "
                f"steals={entry['steals']} duplicates={entry['duplicates']}"
            )
        print(
            f"cluster: redispatch_total={summary['redispatch_total']} "
            f"steals_total={summary['steals_total']} "
            f"fallback_jobs={summary['fallback_jobs']} "
            f"cache_hits={summary['cache_hits']}"
        )
    failed = False
    if args.verify:
        from repro.engine.runner import run_sweep

        expected = run_sweep(jobs, workers=1)
        if results == expected:
            print("verify: fleet results bit-identical to a serial run")
        else:
            print(
                "verify: FAIL — fleet results diverged from a serial run",
                file=sys.stderr,
            )
            failed = True
    if (
        args.expect_redispatch is not None
        and summary["redispatch_total"] < args.expect_redispatch
    ):
        print(
            f"expect: FAIL — redispatch_total={summary['redispatch_total']} "
            f"< {args.expect_redispatch}",
            file=sys.stderr,
        )
        failed = True
    if (
        args.expect_fallback is not None
        and summary["fallback_jobs"] < args.expect_fallback
    ):
        print(
            f"expect: FAIL — fallback_jobs={summary['fallback_jobs']} "
            f"< {args.expect_fallback}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
