"""Deterministic fault injection for the resilient sweep engine.

Chaos testing only earns its keep when failures are *reproducible*: a
flake that appears once a week proves nothing, a fault injected at
job 3, attempt 0, by seed 2006 proves the recovery path every single
run.  A :class:`FaultPlan` is a set of ``(kind, job_index, attempt)``
triples; the resilient executor consults it at well-defined points and
triggers each fault exactly when its coordinates match.

Fault classes (``FAULT_KINDS``):

``crash``
    Worker process exits with ``os._exit(137)`` before running the job
    (the moral equivalent of the OOM killer).
``hang``
    Worker sleeps forever; only the supervisor's ``job_timeout`` can
    recover it.
``flaky``
    Worker raises :class:`InjectedFault` — a transient in-job Python
    error, retried with backoff.
``corrupt_blob``
    Parent flips a byte in the job's on-disk trace blob before the
    attempt starts; the hardened ``TraceStore`` must quarantine the
    blob and regenerate it from the deterministic seed.
``torn_journal``
    The job's result record is half-written with no trailing newline —
    what a power loss mid-append leaves behind.  The loader must skip
    it and the job must re-run on resume.

Node-level classes (``NODE_KINDS``), consumed by the cluster
coordinator (:mod:`repro.engine.cluster`) at dispatch time instead of
inside a worker:

``node_down``
    The node serving the matched job dies permanently: its connection
    drops, its circuit opens for good, and every in-flight job it held
    must be re-dispatched elsewhere.
``node_hang``
    The dispatch deadline expires (a node that accepted the batch and
    went silent); the batch is re-dispatched and the node is probed
    before it gets more work.
``node_flaky``
    The node answers the matched dispatch with a transient error; the
    batch is re-dispatched and the node stays in rotation.

A plan is expressed either programmatically, via the seed-driven
:meth:`FaultPlan.scatter`, or as a DSL string (``bcache-sim
--inject-faults``)::

    crash@0,hang@1:0,flaky@2,corrupt_blob@3,torn_journal@4

i.e. comma-separated ``kind@job`` or ``kind@job:attempt`` terms; the
attempt defaults to 0, so by default a fault hits the first attempt
only and the retry succeeds.

Run as a module, this file is the CI chaos harness: it executes a
small sweep twice — cleanly in-process and under an all-five-kinds
fault plan with journaling — and exits non-zero unless the faulted run
recovers to bit-identical statistics and a subsequent resume replays
them from the journal.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import tempfile
import time
from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # avoid an import cycle with resilience/runner
    from repro.engine.runner import SweepJob
    from repro.engine.trace_store import TraceStore

log = logging.getLogger("repro.engine.faultinject")

FAULT_KINDS = ("crash", "hang", "flaky", "corrupt_blob", "torn_journal")

#: Node-level faults, applied by the cluster coordinator at dispatch.
NODE_KINDS = ("node_down", "node_hang", "node_flaky")

#: Every kind the DSL accepts (worker-, parent- and node-level).
ALL_KINDS = FAULT_KINDS + NODE_KINDS

#: Faults applied inside the worker process.
CHILD_KINDS = frozenset({"crash", "hang", "flaky"})
#: Faults applied by the supervising parent.
PARENT_KINDS = frozenset({"corrupt_blob", "torn_journal"})

#: Exit code of an injected worker crash (mirrors SIGKILL's 128+9).
CRASH_EXIT_CODE = 137

#: An injected hang sleeps in chunks this long until killed.
_HANG_SLEEP = 60.0


class FaultPlanError(ValueError):
    """Malformed fault-plan DSL or invalid fault coordinates."""


class InjectedFault(RuntimeError):
    """Transient failure raised by the ``flaky`` fault kind."""


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One fault: ``kind`` fires on attempt ``attempt`` of job ``job_index``."""

    kind: str
    job_index: int
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {ALL_KINDS}"
            )
        if self.job_index < 0 or self.attempt < 0:
            raise FaultPlanError(
                f"fault coordinates must be non-negative: {self.kind}@"
                f"{self.job_index}:{self.attempt}"
            )

    def render(self) -> str:
        if self.attempt:
            return f"{self.kind}@{self.job_index}:{self.attempt}"
        return f"{self.kind}@{self.job_index}"


class FaultPlan:
    """An immutable set of :class:`FaultSpec` triples."""

    __slots__ = ("specs",)

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs = tuple(specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``kind@job[:attempt]`` comma-separated DSL."""
        specs = []
        for term in text.split(","):
            term = term.strip()
            if not term:
                continue
            kind, sep, where = term.partition("@")
            if not sep:
                raise FaultPlanError(
                    f"bad fault term {term!r}: expected kind@job[:attempt]"
                )
            job_text, _, attempt_text = where.partition(":")
            try:
                job_index = int(job_text)
                attempt = int(attempt_text) if attempt_text else 0
            except ValueError as exc:
                raise FaultPlanError(
                    f"bad fault term {term!r}: job/attempt must be integers"
                ) from exc
            specs.append(FaultSpec(kind.strip(), job_index, attempt))
        return cls(specs)

    @classmethod
    def scatter(
        cls,
        seed: int,
        n_jobs: int,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """Deterministically place one fault of each kind on some job.

        The same ``(seed, n_jobs, kinds)`` always yields the same plan,
        so a chaos run is exactly reproducible from its seed.
        """
        if n_jobs <= 0:
            return cls()
        rng = Random(seed)
        return cls(FaultSpec(kind, rng.randrange(n_jobs)) for kind in kinds)

    def render(self) -> str:
        return ",".join(spec.render() for spec in self.specs)

    def matches(self, kind: str, job_index: int, attempt: int) -> bool:
        return any(
            spec.kind == kind
            and spec.job_index == job_index
            and spec.attempt == attempt
            for spec in self.specs
        )

    def child_kinds(self, job_index: int, attempt: int) -> tuple[str, ...]:
        """Worker-side fault kinds for this attempt, in FAULT_KINDS order."""
        hit = {
            spec.kind
            for spec in self.specs
            if spec.kind in CHILD_KINDS
            and spec.job_index == job_index
            and spec.attempt == attempt
        }
        return tuple(kind for kind in FAULT_KINDS if kind in hit)

    def node_kinds(self, job_index: int, attempt: int) -> tuple[str, ...]:
        """Node-level fault kinds for this dispatch, in NODE_KINDS order.

        ``attempt`` counts *dispatches* of the job by the coordinator
        (initial dispatch = 0, each re-dispatch or speculative steal
        copy increments it), so the default ``kind@job`` form fires on
        the first dispatch only and the recovery path gets a clean
        retry — mirroring the worker-side semantics.
        """
        hit = {
            spec.kind
            for spec in self.specs
            if spec.kind in NODE_KINDS
            and spec.job_index == job_index
            and spec.attempt == attempt
        }
        return tuple(kind for kind in NODE_KINDS if kind in hit)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.specs == other.specs

    def __hash__(self) -> int:
        return hash(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({self.render()!r})"


# ----------------------------------------------------------------------
# Fault application
# ----------------------------------------------------------------------
def apply_child_faults(kinds: Sequence[str]) -> None:
    """Trigger worker-side faults (called at the top of a worker process)."""
    for kind in kinds:
        if kind == "crash":
            log.warning("injected fault: crashing worker (exit %d)", CRASH_EXIT_CODE)
            os._exit(CRASH_EXIT_CODE)
        if kind == "hang":
            log.warning("injected fault: hanging worker")
            while True:
                time.sleep(_HANG_SLEEP)
        if kind == "flaky":
            raise InjectedFault("flaky: injected transient worker failure")


def apply_inprocess_faults(kinds: Sequence[str]) -> None:
    """Serial-mode stand-in for :func:`apply_child_faults`.

    In-process execution must not kill or hang the caller, so every
    worker-side kind degrades to a transient :class:`InjectedFault`
    (which the serial retry loop recovers from).
    """
    for kind in kinds:
        if kind in CHILD_KINDS:
            raise InjectedFault(f"{kind}: injected transient failure (in-process)")


def corrupt_job_blobs(store: "TraceStore", job: "SweepJob") -> None:
    """Flip a byte in the job's on-disk address blob (``corrupt_blob``).

    Ensures the blob exists first, then damages it in place — the
    hardened store must detect the CRC mismatch, quarantine the file,
    and regenerate it from the deterministic seed.
    """
    store.ensure(
        job.benchmark,
        side=job.side,
        n=job.n,
        seed=job.seed,
        kinds=job.with_kinds,
    )
    path = store.address_path(
        job.benchmark, job.side, job.n, job.seed, kinds=job.with_kinds
    )
    data = bytearray(path.read_bytes())
    if not data:
        return
    data[0] ^= 0xFF
    path.write_bytes(bytes(data))
    # Drop any clean in-memory copy so the corruption is actually seen.
    store.clear_memory()
    log.warning("injected fault: corrupted trace blob %s", path.name)


# ----------------------------------------------------------------------
# CI chaos harness
# ----------------------------------------------------------------------
_DEFAULT_FAULTS = "crash@0,hang@1:0,flaky@2,corrupt_blob@3,torn_journal@4"


def main(argv: Sequence[str] | None = None) -> int:
    """Run a small sweep under faults and assert full recovery."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.faultinject",
        description=(
            "Chaos harness: run a sweep cleanly, re-run it under an "
            "injected fault plan with journaling, and verify the faulted "
            "run recovers to bit-identical statistics (then resumes "
            "bit-identically from its journal)."
        ),
    )
    parser.add_argument(
        "--benchmarks",
        default="gzip,equake,mcf",
        help="comma-separated synthetic benchmarks (default: %(default)s)",
    )
    parser.add_argument(
        "--specs",
        default="dm,2way",
        help="comma-separated cache specs (default: %(default)s)",
    )
    parser.add_argument("--n", type=int, default=4000, help="accesses per trace")
    parser.add_argument("--seed", type=int, default=2006, help="trace seed")
    parser.add_argument("--workers", type=int, default=2, help="worker processes")
    parser.add_argument(
        "--faults",
        default=None,
        help=f"fault-plan DSL (default: {_DEFAULT_FAULTS!r})",
    )
    parser.add_argument(
        "--scatter",
        type=int,
        default=None,
        metavar="SEED",
        help="derive the plan from a seed instead of --faults",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=20.0,
        help="per-job timeout in seconds (recovers injected hangs)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=4, help="retry budget per job"
    )
    parser.add_argument(
        "--run-root",
        default=None,
        help="journal root (default: a fresh temporary directory)",
    )
    args = parser.parse_args(argv)

    logging.basicConfig(
        level=logging.WARNING, format="%(levelname)s %(name)s: %(message)s"
    )

    from repro.engine.resilience import ResilienceConfig, RetryPolicy
    from repro.engine.runner import SweepJob, run_sweep

    jobs = [
        SweepJob(spec=spec, benchmark=benchmark, n=args.n, seed=args.seed)
        for benchmark in args.benchmarks.split(",")
        for spec in args.specs.split(",")
    ]
    if args.scatter is not None:
        plan = FaultPlan.scatter(args.scatter, len(jobs))
    else:
        plan = FaultPlan.parse(args.faults if args.faults else _DEFAULT_FAULTS)
    for spec in plan.specs:
        if spec.job_index >= len(jobs):
            print(
                f"chaos: fault {spec.render()} targets job {spec.job_index} "
                f"but the sweep has only {len(jobs)} jobs",
                file=sys.stderr,
            )
            return 2
    config = ResilienceConfig(
        retry=RetryPolicy(max_attempts=args.max_attempts, base_delay=0.02),
        job_timeout=args.timeout,
    )

    from repro.engine import shm

    def leak_shm(stage: str) -> bool:
        """Shared-memory leak gate: no trace segment survives a sweep.

        Fault-killed workers (SIGKILL included) only ever *attach*;
        the parent registry owns every segment and must unlink them
        all on the way out, whatever the sweep just went through.
        """
        leaked = shm.leaked_segments()
        if leaked:
            print(
                f"chaos: FAIL — {stage} leaked shared-memory "
                f"segments: {', '.join(leaked)}",
                file=sys.stderr,
            )
            return True
        return False

    print(f"chaos: {len(jobs)} jobs, plan [{plan.render()}]")
    expected = run_sweep(jobs, workers=1)

    with tempfile.TemporaryDirectory(prefix="bcache-chaos-") as tmp:
        run_root = args.run_root or tmp
        faulted = run_sweep(
            jobs,
            workers=args.workers,
            run_id="chaos",
            run_root=run_root,
            resilience=config,
            fault_plan=plan,
        )
        if faulted != expected:
            print("chaos: FAIL — faulted run diverged from clean run", file=sys.stderr)
            return 1
        if leak_shm("faulted run"):
            return 1
        print("chaos: faulted run recovered bit-identically")
        resumed = run_sweep(
            jobs,
            workers=1,
            resume="chaos",
            run_root=run_root,
            resilience=config,
        )
        if resumed != expected:
            print("chaos: FAIL — resume diverged from clean run", file=sys.stderr)
            return 1
        if leak_shm("resume"):
            return 1
        print("chaos: resume replayed bit-identically from the journal")
    print(f"chaos: PASS ({len(plan)} faults injected and recovered)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
