"""Crash-safe sweep execution: retries, timeouts, journal, fallback.

The plain pool runner (``repro.engine.runner``) assumes a well-behaved
world: no worker hangs, nothing is OOM-killed, nobody presses Ctrl-C
at hour two of a 26-benchmark panel.  This layer drops that assumption
while preserving the engine's core guarantee — **bit-identical
statistics** — because recovery never changes *what* is simulated,
only *when and where* a job runs:

* **Retry with exponential backoff + deterministic jitter** — every
  :class:`~repro.engine.runner.SweepJob` is retried up to
  ``RetryPolicy.max_attempts`` times; jitter comes from a seeded
  ``random.Random`` so two runs of the same failing sweep behave the
  same.
* **Per-job wall-clock timeouts** — each job runs in its own
  supervised worker process; a worker that exceeds
  ``ResilienceConfig.job_timeout`` is killed and the job is
  rescheduled on a fresh worker.
* **Crash-consistent result journal** — ``journal.jsonl`` (one
  CRC32-framed record per completed job, fsync'd append-only) plus an
  atomically-replaced ``index.json``.  ``run_sweep(..., resume=run_id)``
  reloads the journal and skips completed jobs, returning their stats
  bit-identically; a sweep killed with SIGKILL resumes from its last
  durable record, and torn tail writes are healed on reopen.
* **Graceful degradation** — after ``max_pool_failures`` consecutive
  worker-process failures (crashes or timeouts, not in-job Python
  errors) the supervisor stops forking and finishes the remaining jobs
  serially in-process with a warning instead of aborting the sweep.

Serial (in-process) execution keeps the retry/backoff behaviour but
cannot enforce ``job_timeout`` — a process cannot kill itself out of a
hang; timeouts need the supervised worker path (``workers > 1``).

Every recovery path is exercised deterministically by the fault
injector in :mod:`repro.engine.faultinject` (see ``docs/engine.md``).
"""

from __future__ import annotations

import contextlib
import json
import logging
import multiprocessing
import os
import time
import zlib
from dataclasses import asdict, dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from random import Random
from typing import Any, Iterable, Sequence

from repro.engine.faultinject import (
    FaultPlan,
    apply_child_faults,
    apply_inprocess_faults,
    corrupt_job_blobs,
)
from repro.engine.runner import SweepJob, _prewarm, execute_job, job_label
from repro.engine.shm import Manifest, SharedTraceRegistry
from repro.engine.trace_store import TraceStore, set_default_store
from repro.obs import events as obs_events
from repro.obs import instrument as _obs
from repro.stats.counters import CacheStats

log = logging.getLogger("repro.engine.resilience")

SCHEMA = "bcache-journal/1"

ENV_RUN_ROOT = "REPRO_RUN_ROOT"

JOURNAL_NAME = "journal.jsonl"
INDEX_NAME = "index.json"


def default_run_root() -> Path:
    """Journal root: ``$REPRO_RUN_ROOT`` or ``~/.cache/bcache-repro/runs``."""
    env = os.environ.get(ENV_RUN_ROOT)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path("~/.cache").expanduser()
    return base / "bcache-repro" / "runs"


class SweepFailure(RuntimeError):
    """A job exhausted its retry budget (the journal keeps what finished)."""


# ----------------------------------------------------------------------
# Retry/timeout knobs
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt, rng)`` for attempt 0, 1, 2, ... is
    ``min(max_delay, base_delay * 2**attempt)`` plus a uniform jitter of
    up to ``jitter`` times that value, drawn from the caller's seeded
    ``Random`` so reruns back off identically.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: Random) -> float:
        raw = min(self.max_delay, self.base_delay * (2 ** max(0, attempt)))
        return raw + rng.uniform(0.0, self.jitter * raw)


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """Tuning for the resilient sweep executor.

    Attributes:
        retry: per-job retry/backoff policy.
        job_timeout: wall-clock seconds a supervised worker may spend
            on one job before it is killed and the job rescheduled.
        max_pool_failures: consecutive worker-process failures (crash
            or timeout) after which the supervisor falls back to serial
            in-process execution for the remaining jobs.
        backoff_seed: seed for the jitter generator (deterministic).
        fsync: flush journal records to stable storage on every append
            (the crash-consistency guarantee; disable only in tests).
    """

    retry: RetryPolicy = RetryPolicy()
    job_timeout: float = 120.0
    max_pool_failures: int = 3
    backoff_seed: int = 2006
    fsync: bool = True


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
def job_key(job: SweepJob) -> str:
    """Stable identity of a job across processes and runs."""
    return json.dumps(asdict(job), sort_keys=True, separators=(",", ":"))


def sweep_fingerprint(jobs: Sequence[SweepJob]) -> str:
    """Order-insensitive CRC of a whole sweep's job keys."""
    digest = zlib.crc32("\n".join(sorted(job_key(job) for job in jobs)).encode())
    return f"{digest:08x}"


def _frame_line(payload: dict) -> str:
    """One journal line: ``<crc32-hex> <canonical-json>\\n``."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(body.encode()):08x} {body}\n"


def _parse_line(raw: str) -> dict | None:
    """Decode one journal line; ``None`` for torn/corrupt lines."""
    head, sep, body = raw.partition(" ")
    if not sep or len(head) != 8:
        return None
    try:
        expected = int(head, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode()) != expected:
        return None
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


def _atomic_write_text(path: Path, text: str, fsync: bool) -> None:
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)


class ResultJournal:
    """Append-only per-run result journal with an atomic index.

    ``journal.jsonl`` holds one CRC32-framed JSON line per event: a
    header describing the sweep, then one ``result`` record per
    completed job (full :meth:`CacheStats.snapshot`, so replaying a
    record is bit-identical to re-running the job).  Records are
    flushed and (by default) fsync'd on append — a record either fully
    survives a crash or is a torn tail that the loader skips and the
    next append heals.  ``index.json`` is a small progress summary
    replaced atomically after every record; the journal itself is
    authoritative on resume.
    """

    def __init__(self, run_dir: str | Path, fsync: bool = True) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / JOURNAL_NAME
        self.index_path = self.run_dir / INDEX_NAME
        self.fsync = fsync
        self.completed: dict[str, CacheStats] = {}
        self.header: dict | None = None
        self.corrupt_lines = 0
        self.torn_writes = 0
        self.total_jobs = 0
        self._handle = None
        self._tail_needs_newline = False
        self._load()

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        if not self.path.is_file():
            return
        for raw in self.path.read_text(encoding="utf-8").split("\n"):
            if not raw.strip():
                continue
            payload = _parse_line(raw)
            if payload is None:
                self.corrupt_lines += 1
                continue
            kind = payload.get("kind")
            if kind == "header":
                if self.header is None:
                    self.header = payload
                    self.total_jobs = int(payload.get("total_jobs", 0))
            elif kind == "result":
                try:
                    stats = CacheStats.from_snapshot(payload["stats"])
                    key = json.dumps(
                        payload["job"], sort_keys=True, separators=(",", ":")
                    )
                except (KeyError, TypeError, ValueError):
                    self.corrupt_lines += 1
                    continue
                self.completed[key] = stats
        if self.corrupt_lines:
            log.warning(
                "journal %s: skipped %d torn/corrupt line(s); the jobs they "
                "described will simply re-run",
                self.path,
                self.corrupt_lines,
            )

    # -- appending -----------------------------------------------------
    def open_run(self, run_id: str, jobs: Sequence[SweepJob]) -> None:
        """Open (or reopen) the journal for appending this sweep's results."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        fingerprint = sweep_fingerprint(jobs)
        if self.header is not None and self.header.get("fingerprint") != fingerprint:
            log.warning(
                "resuming run %r against a different job list (fingerprint "
                "%s != %s); records for matching jobs are still reused",
                run_id,
                fingerprint,
                self.header.get("fingerprint"),
            )
        self._tail_needs_newline = self._tail_dirty()
        self._handle = open(self.path, "ab")
        if self.header is None:
            self._append_line(
                {
                    "kind": "header",
                    "schema": SCHEMA,
                    "run_id": run_id,
                    "total_jobs": len(jobs),
                    "fingerprint": fingerprint,
                }
            )
            self.header = {
                "kind": "header",
                "schema": SCHEMA,
                "run_id": run_id,
                "total_jobs": len(jobs),
                "fingerprint": fingerprint,
            }
        self.total_jobs = len(jobs)
        self.write_index()

    def _tail_dirty(self) -> bool:
        """Did a previous run die mid-append (no trailing newline)?"""
        if not self.path.is_file() or self.path.stat().st_size == 0:
            return False
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"

    def _append(self, data: bytes) -> None:
        assert self._handle is not None, "journal is not open for appending"
        if self._tail_needs_newline:
            # Heal a torn tail (killed run or injected torn write) so
            # this record starts on its own parseable line.
            self._handle.write(b"\n")
            self._tail_needs_newline = False
        self._handle.write(data)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def _append_line(self, payload: dict) -> None:
        self._append(_frame_line(payload).encode())

    def record(
        self,
        job: SweepJob,
        stats: CacheStats,
        torn: bool = False,
        node: str | None = None,
    ) -> None:
        """Durably append one completed job's stats.

        ``node`` (cluster sweeps) records which endpoint served the
        job — provenance only; the loader ignores it, so local and
        cluster journals resume interchangeably and bit-identically.

        ``torn=True`` (fault injection only) simulates a crash
        mid-append: half the bytes reach the file, no newline, and the
        record does **not** count as completed — exactly what a power
        loss between ``write`` and ``fsync`` leaves behind.
        """
        payload: dict[str, object] = {
            "kind": "result",
            "job": asdict(job),
            "stats": stats.snapshot(),
        }
        if node is not None:
            payload["node"] = node
        data = _frame_line(payload).encode()
        if torn:
            self._append(data[: max(1, len(data) // 2)])
            self._tail_needs_newline = True
            self.torn_writes += 1
            return
        self._append(data)
        self.completed[job_key(job)] = stats
        self.write_index()

    def write_index(self) -> None:
        """Atomically replace ``index.json`` with current progress."""
        run_id = (self.header or {}).get("run_id")
        index = {
            "schema": SCHEMA,
            "run_id": run_id,
            "completed": len(self.completed),
            "total_jobs": self.total_jobs,
            "corrupt_lines": self.corrupt_lines,
        }
        _atomic_write_text(
            self.index_path,
            json.dumps(index, indent=2, sort_keys=True) + "\n",
            self.fsync,
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self.write_index()


# ----------------------------------------------------------------------
# Supervised workers
# ----------------------------------------------------------------------
def _safe_send(conn: Connection, message: object) -> None:
    with contextlib.suppress(OSError, ValueError, BrokenPipeError):
        conn.send(message)


def _worker_entry(
    conn: Connection,
    job: SweepJob,
    store_root: str,
    sanitize: bool,
    fault_kinds: tuple[str, ...],
    obs_mode: str = "off",
    obs_log: str = "",
    manifest: Manifest | None = None,
) -> None:
    """Child process: run one job, send ('ok', snapshot) or ('error', msg)."""
    try:
        apply_child_faults(fault_kinds)  # may _exit, hang, or raise
        worker_store = TraceStore(store_root, fsync=False)
        worker_store.adopt_manifest(manifest)
        set_default_store(worker_store)
        if obs_mode != "off" and obs_log:
            obs_events.configure(mode=obs_mode, log_path=obs_log)
        stats = execute_job(job, sanitize=sanitize)
    except Exception as exc:
        _safe_send(conn, ("error", f"{type(exc).__name__}: {exc}"))
    else:
        _safe_send(conn, ("ok", stats.snapshot()))
    finally:
        conn.close()


@dataclass(slots=True)
class _Pending:
    ready_at: float
    index: int
    attempt: int


@dataclass(slots=True)
class _Active:
    index: int
    attempt: int
    proc: multiprocessing.process.BaseProcess
    conn: object
    deadline: float


class _PoolDegraded(Exception):
    """Internal: too many consecutive worker failures; go serial."""


def _reap(worker: _Active) -> int | None:
    """Close the pipe, collect the worker, return its exit code."""
    with contextlib.suppress(OSError, ValueError):
        worker.conn.close()  # type: ignore[attr-defined]
    worker.proc.join(timeout=5.0)
    if worker.proc.is_alive():
        worker.proc.kill()
        worker.proc.join(timeout=5.0)
    exitcode = worker.proc.exitcode
    with contextlib.suppress(OSError, ValueError, AttributeError):
        worker.proc.close()
    return exitcode


def _receive(worker: _Active) -> tuple | None:
    """The worker's message, or ``None`` if it died before sending."""
    try:
        message = worker.conn.recv()  # type: ignore[attr-defined]
    except (EOFError, OSError):
        return None
    return message if isinstance(message, tuple) and len(message) == 2 else None


def _spawn(
    ctx: Any,
    jobs: Sequence[SweepJob],
    entry: _Pending,
    store: TraceStore,
    config: ResilienceConfig,
    plan: FaultPlan | None,
    sanitize: bool,
    manifest: Manifest | None = None,
) -> _Active:
    job = jobs[entry.index]
    if plan is not None and plan.matches("corrupt_blob", entry.index, entry.attempt):
        corrupt_job_blobs(store, job)
        # The fault corrupts *disk* blobs to exercise the quarantine
        # path; a shared-memory attach would serve the pristine copy
        # and bypass it, so this worker gets no manifest.
        manifest = None
    child_kinds = plan.child_kinds(entry.index, entry.attempt) if plan else ()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_worker_entry,
        args=(
            child_conn,
            job,
            str(store.root),
            sanitize,
            child_kinds,
            obs_events.mode(),
            str(obs_events.active_log_path()),
            manifest,
        ),
        daemon=True,
    )
    _obs.job_event(
        "running", job_label(job), benchmark=job.benchmark, attempt=entry.attempt
    )
    proc.start()
    child_conn.close()
    return _Active(
        index=entry.index,
        attempt=entry.attempt,
        proc=proc,
        conn=parent_conn,
        deadline=time.monotonic() + config.job_timeout,
    )


def _commit(
    results: list,
    journal: ResultJournal | None,
    jobs: Sequence[SweepJob],
    index: int,
    attempt: int,
    stats: CacheStats,
    plan: FaultPlan | None,
) -> None:
    results[index] = stats
    if journal is not None:
        torn = bool(plan and plan.matches("torn_journal", index, attempt))
        journal.record(jobs[index], stats, torn=torn)


def _schedule_retry(
    pending: list[_Pending],
    index: int,
    attempt: int,
    reason: str,
    config: ResilienceConfig,
    rng: Random,
    jobs: Sequence[SweepJob],
) -> None:
    """Queue the next attempt with backoff, or give up with SweepFailure."""
    job = jobs[index]
    if attempt + 1 >= config.retry.max_attempts:
        _obs.job_event(
            "failed", job_label(job), benchmark=job.benchmark,
            attempt=attempt, reason=reason,
        )
        raise SweepFailure(
            f"job {index} ({job.spec}/{job.benchmark}) failed after "
            f"{config.retry.max_attempts} attempt(s): {reason}"
        )
    delay = config.retry.delay(attempt, rng)
    _obs.job_event(
        "retried", job_label(job), benchmark=job.benchmark,
        attempt=attempt, reason=reason, delay_s=round(delay, 3),
    )
    log.warning(
        "job %d (%s/%s) attempt %d failed (%s); retrying in %.3fs",
        index,
        job.spec,
        job.benchmark,
        attempt,
        reason,
        delay,
    )
    pending.append(_Pending(time.monotonic() + delay, index, attempt + 1))


def _wait_for_activity(
    active: list[_Active], pending: list[_Pending], now: float
) -> list[_Active]:
    """Block until a worker speaks, a deadline nears, or a retry is due."""
    timeout = 0.2
    for worker in active:
        timeout = min(timeout, max(worker.deadline - now, 0.0))
    for entry in pending:
        timeout = min(timeout, max(entry.ready_at - now, 0.0))
    timeout = max(timeout, 0.01)
    if not active:
        time.sleep(timeout)
        return []
    ready = set(_conn_wait([worker.conn for worker in active], timeout))
    return [worker for worker in active if worker.conn in ready]


def _run_supervised(
    jobs: Sequence[SweepJob],
    todo: Sequence[int],
    results: list,
    store: TraceStore,
    config: ResilienceConfig,
    journal: ResultJournal | None,
    plan: FaultPlan | None,
    workers: int,
    sanitize: bool,
    rng: Random,
    manifest: Manifest | None = None,
) -> None:
    """Fan ``todo`` over supervised worker processes with recovery."""
    ctx = multiprocessing.get_context()
    pending = [_Pending(0.0, index, 0) for index in todo]
    active: list[_Active] = []
    consecutive_failures = 0
    degraded: list[tuple[int, int]] = []
    try:
        while pending or active:
            now = time.monotonic()
            due = sorted(
                (entry for entry in pending if entry.ready_at <= now),
                key=lambda entry: entry.index,
            )
            for entry in due:
                if len(active) >= workers:
                    break
                pending.remove(entry)
                active.append(
                    _spawn(ctx, jobs, entry, store, config, plan, sanitize, manifest)
                )
            for worker in _wait_for_activity(active, pending, time.monotonic()):
                message = _receive(worker)
                exitcode = _reap(worker)
                active.remove(worker)
                if message is not None and message[0] == "ok":
                    consecutive_failures = 0
                    _commit(
                        results,
                        journal,
                        jobs,
                        worker.index,
                        worker.attempt,
                        CacheStats.from_snapshot(message[1]),
                        plan,
                    )
                else:
                    if message is None:
                        consecutive_failures += 1
                        reason = f"worker died (exit code {exitcode})"
                    else:
                        reason = str(message[1])
                    _schedule_retry(
                        pending, worker.index, worker.attempt, reason, config, rng, jobs
                    )
            now = time.monotonic()
            for worker in [w for w in active if w.deadline <= now]:
                worker.proc.kill()
                _reap(worker)
                active.remove(worker)
                consecutive_failures += 1
                _schedule_retry(
                    pending,
                    worker.index,
                    worker.attempt,
                    f"hung: exceeded job_timeout={config.job_timeout:.1f}s",
                    config,
                    rng,
                    jobs,
                )
            if consecutive_failures >= config.max_pool_failures and (
                pending or active
            ):
                raise _PoolDegraded
    except _PoolDegraded:
        degraded = sorted(
            [(worker.index, worker.attempt) for worker in active]
            + [(entry.index, entry.attempt) for entry in pending]
        )
    finally:
        for worker in active:
            worker.proc.kill()
            _reap(worker)
    if degraded:
        log.warning(
            "%d consecutive worker-pool failures; degrading to serial "
            "in-process execution for the remaining %d job(s)",
            consecutive_failures,
            len(degraded),
        )
        _run_serial_entries(
            jobs, degraded, results, store, config, journal, plan, sanitize, rng
        )


def _run_serial_entries(
    jobs: Sequence[SweepJob],
    entries: Iterable[tuple[int, int]],
    results: list,
    store: TraceStore,
    config: ResilienceConfig,
    journal: ResultJournal | None,
    plan: FaultPlan | None,
    sanitize: bool,
    rng: Random,
) -> None:
    """Run jobs in-process with retry/backoff (no kill-based timeouts).

    In-process execution cannot enforce ``job_timeout`` — a process
    cannot kill itself out of a hang — so ``crash``/``hang`` faults
    degrade to transient exceptions here (see ``faultinject``).
    """
    for index, attempt in sorted(entries):
        job = jobs[index]
        while True:
            if plan is not None and plan.matches("corrupt_blob", index, attempt):
                corrupt_job_blobs(store, job)
            try:
                apply_inprocess_faults(
                    plan.child_kinds(index, attempt) if plan else ()
                )
                stats = execute_job(job, store=store, sanitize=sanitize)
            except Exception as exc:
                if attempt + 1 >= config.retry.max_attempts:
                    _obs.job_event(
                        "failed", job_label(job), benchmark=job.benchmark,
                        attempt=attempt, reason=str(exc),
                    )
                    raise SweepFailure(
                        f"job {index} ({job.spec}/{job.benchmark}) failed "
                        f"after {config.retry.max_attempts} attempt(s): {exc}"
                    ) from exc
                delay = config.retry.delay(attempt, rng)
                _obs.job_event(
                    "retried", job_label(job), benchmark=job.benchmark,
                    attempt=attempt, reason=str(exc), delay_s=round(delay, 3),
                )
                log.warning(
                    "job %d (%s/%s) attempt %d failed (%s); retrying in %.3fs",
                    index,
                    job.spec,
                    job.benchmark,
                    attempt,
                    exc,
                    delay,
                )
                time.sleep(delay)
                attempt += 1
            else:
                _commit(results, journal, jobs, index, attempt, stats, plan)
                break


# ----------------------------------------------------------------------
# Entry point (reached via run_sweep's resilience kwargs)
# ----------------------------------------------------------------------
def run_resilient(
    jobs: Iterable[SweepJob],
    workers: int,
    store: TraceStore,
    config: ResilienceConfig,
    sanitize: bool = False,
    run_id: str | None = None,
    run_root: str | Path | None = None,
    fault_plan: FaultPlan | None = None,
) -> list[CacheStats]:
    """Run a sweep crash-safely; returns stats order-aligned with jobs.

    With ``run_id`` every completed job is journaled durably under
    ``<run_root>/<run_id>/``; if that journal already holds records
    (an earlier run of the same id, killed or completed), matching
    jobs are skipped and their journaled stats returned bit-identically.
    """
    jobs = list(jobs)
    rng = Random(config.backoff_seed)
    journal: ResultJournal | None = None
    if run_id:
        run_dir = Path(run_root) / run_id if run_root else default_run_root() / run_id
        journal = ResultJournal(run_dir, fsync=config.fsync)
        journal.open_run(run_id, jobs)
    # Journaled runs route telemetry beside journal.jsonl so bcache-top
    # (and post-mortems) find one self-contained run directory.
    route_log = (
        obs_events.log_to(journal.run_dir / "events.jsonl")
        if journal is not None
        else contextlib.nullcontext()
    )
    try:
        with route_log, obs_events.span(
            "engine.resilient_sweep",
            run_id=run_id or "",
            jobs=len(jobs),
            workers=workers,
        ):
            results = _resilient_body(
                jobs, workers, store, config, sanitize, journal, fault_plan, rng
            )
        return results
    finally:
        if journal is not None:
            journal.close()


def _resilient_body(
    jobs: Sequence[SweepJob],
    workers: int,
    store: TraceStore,
    config: ResilienceConfig,
    sanitize: bool,
    journal: ResultJournal | None,
    fault_plan: FaultPlan | None,
    rng: Random,
) -> list[CacheStats]:
    """Resume bookkeeping + dispatch (parent events already routed)."""
    results: list[CacheStats] = [None] * len(jobs)  # type: ignore[list-item]
    todo: list[int] = []
    for index, job in enumerate(jobs):
        done = journal.completed.get(job_key(job)) if journal else None
        if done is not None:
            results[index] = done
        else:
            todo.append(index)
    if obs_events.enabled():
        for index in todo:
            _obs.job_event(
                "queued", job_label(jobs[index]), benchmark=jobs[index].benchmark
            )
    if todo:
        if sanitize or workers <= 1 or len(todo) == 1:
            _run_serial_entries(
                jobs,
                [(index, 0) for index in todo],
                results,
                store,
                config,
                journal,
                fault_plan,
                sanitize,
                rng,
            )
        else:
            registry = SharedTraceRegistry()
            try:
                manifest = _prewarm([jobs[index] for index in todo], store, registry)
                _run_supervised(
                    jobs,
                    todo,
                    results,
                    store,
                    config,
                    journal,
                    fault_plan,
                    min(workers, len(todo)),
                    sanitize,
                    rng,
                    manifest,
                )
            finally:
                registry.unlink_all()
    return results
