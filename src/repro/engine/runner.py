"""Process-pool experiment runner: fan sweep jobs across workers.

A sweep is a list of :class:`SweepJob` descriptions — (spec, benchmark,
side, trace length, seed, geometry) tuples.  Each job is independent
and fully deterministic (seeded traces, seeded policies), so the runner
guarantees **bit-identical statistics** regardless of worker count: the
result list is order-aligned with the job list and every job runs the
same ``make_cache(...) / access_trace(...)`` code path the serial
harness uses.

Worker processes never regenerate traces: the parent materialises every
distinct trace into the on-disk :class:`~repro.engine.trace_store.TraceStore`
before the pool starts, and the pool initializer points each worker's
process-wide store at the same root.

When the runtime sanitizer is requested the runner falls back to a
serial, per-access checked replay (see ``docs/analysis.md``): the
sanitizer's value is the invariant trail, not throughput.

Long or flaky sweeps should opt into the crash-safe path via the
``run_id``/``resume``/``resilience`` keywords of :func:`run_sweep`,
which delegate to :mod:`repro.engine.resilience` (per-job retries,
hung-worker timeouts, a durable result journal, serial fallback) —
see ``docs/engine.md``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.caches import make_cache
from repro.obs import events as obs_events
from repro.obs import instrument as _obs
from repro.stats.counters import CacheStats
from repro.engine.shm import Manifest, SharedTraceRegistry, reap_stale_segments
from repro.engine.trace_store import TraceStore, default_store, set_default_store

if TYPE_CHECKING:  # resilience imports this module; keep the cycle lazy
    from repro.engine.faultinject import FaultPlan
    from repro.engine.resilience import ResilienceConfig

ENV_JOBS = "REPRO_JOBS"


@dataclass(frozen=True, slots=True)
class SweepJob:
    """One (cache config, reference stream) simulation.

    Attributes:
        spec: factory spec string (``dm``, ``8way``, ``mf8_bas8``, ...).
        benchmark: synthetic SPEC2K benchmark name.
        side: ``data``/``instr`` (address streams) or ``combined``
            (access streams, requires ``with_kinds``).
        n: trace length (references, or instructions for ``combined``).
        seed: trace seed.
        size: cache size in bytes.
        line_size: block size in bytes.
        policy: replacement policy where applicable.
        with_kinds: replay the full access stream (reads + writes +
            ifetches) instead of the reads-only address stream.
    """

    spec: str
    benchmark: str
    side: str = "data"
    n: int = 200_000
    seed: int = 2006
    size: int = 16 * 1024
    line_size: int = 32
    policy: str = "lru"
    with_kinds: bool = False


def available_cpus() -> int:
    """CPUs this process may actually run on.

    Containers and CI runners routinely pin a process to a slice of the
    machine; ``os.cpu_count()`` still reports every core.  Honouring
    ``os.sched_getaffinity(0)`` (where the platform provides it) keeps
    worker pools and server shards from oversubscribing a 2-CPU cgroup
    on a 64-core host.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` (capped to usable CPUs) or 1.

    The cap uses :func:`available_cpus`, so an over-eager
    ``REPRO_JOBS=64`` inside a 2-CPU container forks 2 workers, not 64.
    """
    try:
        requested = int(os.environ.get(ENV_JOBS, "1"))
    except ValueError:
        return 1
    return max(1, min(requested, available_cpus()))


def job_label(job: SweepJob) -> str:
    """Human-readable job key used in telemetry events and bcache-top."""
    return (
        f"{job.spec}:{job.benchmark}:{job.side}"
        f":n{job.n}:s{job.seed}:{job.size}b{job.line_size}"
    )


def execute_job(
    job: SweepJob,
    store: TraceStore | None = None,
    sanitize: bool = False,
) -> CacheStats:
    """Run one job to completion in this process; returns its stats.

    This is the single execution path shared by the serial harness
    (``experiments.common.run_side``) and the pool workers, which is
    what makes parallel results bit-identical to serial ones.
    """
    store = store if store is not None else default_store()
    label = job_label(job)
    with obs_events.span(
        "job.run", key=label, benchmark=job.benchmark, spec=job.spec
    ):
        cache = make_cache(
            job.spec, size=job.size, line_size=job.line_size, policy=job.policy
        )
        if job.with_kinds:
            addresses, kinds = store.accesses(job.benchmark, job.side, job.n, job.seed)
        else:
            addresses = store.addresses(job.benchmark, job.side, job.n, job.seed)
            kinds = None
        if sanitize:
            from repro.analysis.sanitizer import SanitizedCache, strict_capable

            checked = SanitizedCache(
                cache, strict=strict_capable(cache), check_interval=1024
            )
            checked.access_trace(addresses, kinds)
            checked.finalize()
        else:
            cache.access_trace(addresses, kinds)
    _obs.job_event(
        "done",
        label,
        benchmark=job.benchmark,
        miss_rate=round(cache.stats.miss_rate, 6),
        accesses=cache.stats.accesses,
        misses=cache.stats.misses,
    )
    return cache.stats


def _init_worker(
    root: str, obs_mode: str, obs_log: str, manifest: Manifest | None = None
) -> None:
    """Pool initializer: share the parent's trace-store root and obs state.

    The obs tier/log path are forwarded explicitly (not just inherited
    via the environment) so a parent that called ``obs.configure`` —
    e.g. ``bcache-sim --obs-log`` — gets worker events in the same log.
    ``manifest`` names the parent's shared-memory trace segments; the
    worker's store attaches to those zero-copy instead of re-reading
    blobs from disk.
    """
    worker_store = TraceStore(root)
    worker_store.adopt_manifest(manifest)
    set_default_store(worker_store)
    if obs_mode != "off":
        obs_events.configure(mode=obs_mode, log_path=obs_log)


def _run_job(job: SweepJob) -> CacheStats:
    return execute_job(job)


def run_sweep(
    jobs: Iterable[SweepJob],
    workers: int | None = None,
    sanitize: bool = False,
    store: TraceStore | None = None,
    *,
    run_id: str | None = None,
    resume: str | None = None,
    resilience: "ResilienceConfig | None" = None,
    fault_plan: "FaultPlan | None" = None,
    run_root: str | Path | None = None,
) -> list[CacheStats]:
    """Run every job; returns stats order-aligned with the job list.

    Args:
        jobs: the sweep to run.
        workers: process count; ``None`` reads ``$REPRO_JOBS``
            (default 1).  ``<= 1`` runs serially in this process.
        sanitize: shadow-check every access — forces the serial
            per-access path (the parallel batch kernels bypass the
            per-access hooks by design).  Composes with ``run_id``:
            a sanitized run is journaled and resumable like any other.
        store: trace store to use (defaults to the process-wide one).
        run_id: journal completed jobs durably under
            ``<run_root>/<run_id>/`` and resume from any existing
            journal with that id (create-or-resume semantics).
        resume: explicit alias for ``run_id`` that reads better at call
            sites restarting a killed sweep; if both are given they
            must agree.
        resilience: retry/timeout/fallback knobs
            (:class:`repro.engine.resilience.ResilienceConfig`); any
            non-``None`` value routes execution through the resilient
            supervisor even without a journal.
        fault_plan: deterministic fault injection
            (:class:`repro.engine.faultinject.FaultPlan`) — testing/CI
            only.
        run_root: journal root override (default ``$REPRO_RUN_ROOT`` or
            ``~/.cache/bcache-repro/runs``).

    Plain calls (no resilience kwargs) keep the fast pool path; any of
    ``run_id``/``resume``/``resilience``/``fault_plan`` routes through
    :func:`repro.engine.resilience.run_resilient`, which adds per-job
    retries, wall-clock timeouts with hung-worker replacement, the
    crash-consistent journal, and serial fallback after repeated pool
    failures — still bit-identical to a serial run.
    """
    jobs = list(jobs)
    if workers is None:
        workers = default_jobs()
    store = store if store is not None else default_store()
    # A previous sweep killed with SIGKILL could not unlink its trace
    # segments; heal them here so serial and resumed runs (which never
    # construct a registry of their own) clean up after it too.
    reap_stale_segments()
    if run_id or resume or resilience is not None or fault_plan is not None:
        if run_id and resume and run_id != resume:
            raise ValueError(
                f"run_id={run_id!r} and resume={resume!r} disagree; "
                "pass one (they are aliases)"
            )
        from repro.engine.resilience import ResilienceConfig, run_resilient

        return run_resilient(
            jobs,
            workers=workers,
            store=store,
            config=resilience if resilience is not None else ResilienceConfig(),
            sanitize=sanitize,
            run_id=run_id or resume,
            run_root=run_root,
            fault_plan=fault_plan,
        )
    with obs_events.span(
        "engine.sweep", jobs=len(jobs), workers=workers, sanitize=sanitize
    ):
        if sanitize or workers <= 1 or len(jobs) <= 1:
            return [execute_job(job, store=store, sanitize=sanitize) for job in jobs]

        registry = SharedTraceRegistry()
        manifest = _prewarm(jobs, store, registry)
        workers = min(workers, len(jobs))
        chunksize = max(1, len(jobs) // (workers * 4))
        pool = multiprocessing.get_context().Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(
                str(store.root),
                obs_events.mode(),
                str(obs_events.active_log_path()),
                manifest,
            ),
        )
        try:
            results = pool.map(_run_job, jobs, chunksize=chunksize)
            pool.close()
        except BaseException:
            # Ctrl-C (or any failure) must not orphan workers: terminate
            # reaps the whole pool before the exception propagates.
            pool.terminate()
            raise
        finally:
            pool.join()
            registry.unlink_all()
        return results


def _prewarm(
    jobs: Sequence[SweepJob],
    store: TraceStore,
    registry: SharedTraceRegistry | None = None,
) -> Manifest | None:
    """Materialise every distinct trace once before forking workers.

    With a ``registry`` each trace is additionally exported into a
    named shared-memory segment; the returned manifest lets workers
    attach zero-copy instead of re-reading blobs from disk.
    """
    seen: set[tuple] = set()
    for job in jobs:
        key = (job.benchmark, job.side, job.n, job.seed, job.with_kinds)
        if key not in seen:
            seen.add(key)
            store.ensure(job.benchmark, job.side, job.n, job.seed, kinds=job.with_kinds)
            if registry is not None:
                registry.export(
                    store, job.benchmark, job.side, job.n, job.seed, job.with_kinds
                )
    return registry.manifest() if registry is not None else None
