"""Zero-copy trace sharing over ``multiprocessing.shared_memory``.

The sweep runner and the serve shard pool replay the same traces in
every worker process.  Before this module existed each worker re-read
(or worse, regenerated) its blobs from disk; now the parent exports
each distinct trace **once** into a named shared-memory segment and
ships only the segment *name* across the process boundary.  Workers
attach and hand out zero-copy ``memoryview`` columns that flow straight
into the batch kernels.

Segment layout mirrors the store's columnar blobs:

* flavour ``adr`` — ``8 * count`` bytes of little-endian ``uint64``
  addresses;
* flavour ``acc`` — ``8 * count`` address bytes followed by ``count``
  ``uint8`` kind bytes.

No CRC footer is carried inside a segment: bytes are CRC-verified by
the :class:`~repro.engine.trace_store.TraceStore` at export time and a
segment never outlives its exporting process on the happy path.

Naming scheme: ``{prefix}-{pid}-{serial}-{digest}`` where ``pid`` is
the exporting process, ``serial`` is a per-registry counter and
``digest`` is a CRC32 of the trace key — unique per live registry,
recognisable in ``/dev/shm`` listings, and short enough for every
platform's name limit.

Ownership is explicit: the :class:`SharedTraceRegistry` that exported a
segment is its owner and the only place that may ``unlink`` it.
Workers only ever ``attach``/``close``.  The registry refcounts
exports, unlinks a segment when its count drops to zero via
:meth:`release`, and :meth:`unlink_all` (also the context-manager exit)
force-unlinks everything — the drain/exit path that the chaos harness
asserts on with :func:`leaked_segments`.
"""

from __future__ import annotations

import logging
import os
import threading
import zlib
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Iterable

from repro.obs import instrument as _obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.trace_store import TraceStore

log = logging.getLogger("repro.engine.shm")

#: Default segment-name prefix (also what the leak scan greps for).
SEGMENT_PREFIX = "bcrepro"

#: Where POSIX shared memory appears as files (Linux).
SHM_DIR = "/dev/shm"

#: Manifest entry: trace key -> (segment name, reference count).
TraceKey = tuple[str, str, int, int, str]
Manifest = dict[TraceKey, tuple[str, int]]


def trace_key(
    benchmark: str, side: str, n: int, seed: int, with_kinds: bool
) -> TraceKey:
    """The store-compatible blob id of one trace flavour."""
    return (benchmark, side, n, seed, "acc" if with_kinds else "adr")


def segment_size(count: int, with_kinds: bool) -> int:
    """Bytes of a segment holding ``count`` references."""
    return 9 * count if with_kinds else 8 * count


class SharedTraceRegistry:
    """Parent-side owner of exported trace segments.

    Thread-safe: the serve pool exports from its event-loop thread
    while per-shard worker threads release, and ``unlink_all`` may race
    a signal-driven drain.
    """

    def __init__(self, prefix: str = SEGMENT_PREFIX) -> None:
        self.prefix = prefix
        # Start the resource tracker *now*, before any worker forks:
        # children then share it, and their attach registrations dedupe
        # against the owner's create registration instead of spawning
        # per-worker trackers that would unlink live segments (and spam
        # leak warnings) when a worker exits.  Registries are always
        # constructed before the pools they feed, so this ordering holds.
        resource_tracker.ensure_running()
        # Heal leftovers of SIGKILLed owners before adding our own
        # segments (their names share the prefix we scan for).
        reap_stale_segments(prefix)
        self._lock = threading.Lock()
        self._serial = 0
        self._segments: dict[TraceKey, shared_memory.SharedMemory] = {}
        self._manifest: Manifest = {}
        self._refcounts: dict[TraceKey, int] = {}
        # Segments whose close() failed because a view is still live;
        # kept referenced so their finalisers fire after the views die.
        self._zombies: list[shared_memory.SharedMemory] = []

    # -- naming --------------------------------------------------------
    def _segment_name(self, key: TraceKey) -> str:
        digest = zlib.crc32("|".join(str(part) for part in key).encode())
        self._serial += 1
        return f"{self.prefix}-{os.getpid()}-{self._serial}-{digest:08x}"

    # -- export --------------------------------------------------------
    def export(
        self,
        store: "TraceStore",
        benchmark: str,
        side: str,
        n: int,
        seed: int,
        with_kinds: bool,
    ) -> tuple[str, int]:
        """Export one trace into a named segment (idempotent per key).

        Materialises the trace through ``store`` (CRC-verified or
        regenerated there), copies its columns into a fresh segment,
        and returns ``(segment name, reference count)``.  A repeated
        export of the same key bumps its refcount and returns the
        existing segment.
        """
        key = trace_key(benchmark, side, n, seed, with_kinds)
        with self._lock:
            entry = self._manifest.get(key)
            if entry is not None:
                self._refcounts[key] += 1
                return entry
        if with_kinds:
            addresses, kinds = store.accesses(benchmark, side, n, seed)
            count = len(addresses)
            address_bytes = bytes(memoryview(addresses).cast("B"))
            kind_bytes = bytes(memoryview(kinds).cast("B"))
        else:
            addresses = store.addresses(benchmark, side, n, seed)
            count = len(addresses)
            address_bytes = bytes(memoryview(addresses).cast("B"))
            kind_bytes = b""
        with self._lock:
            entry = self._manifest.get(key)
            if entry is not None:  # lost a benign race with another thread
                self._refcounts[key] += 1
                return entry
            name = self._segment_name(key)
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=segment_size(count, with_kinds)
            )
            view = segment.buf
            view[: len(address_bytes)] = address_bytes
            if kind_bytes:
                view[len(address_bytes):len(address_bytes) + count] = kind_bytes
            self._segments[key] = segment
            self._manifest[key] = (name, count)
            self._refcounts[key] = 1
        _obs.shm_segment("export", name, segment_size(count, with_kinds))
        return name, count

    def export_jobs(
        self, store: "TraceStore", specs: Iterable[tuple[str, str, int, int, bool]]
    ) -> Manifest:
        """Export every distinct ``(benchmark, side, n, seed, kinds)``
        spec and return the resulting manifest."""
        for benchmark, side, n, seed, with_kinds in specs:
            self.export(store, benchmark, side, n, seed, with_kinds)
        return self.manifest()

    # -- introspection -------------------------------------------------
    def manifest(self) -> Manifest:
        """Picklable ``{trace key: (segment name, count)}`` snapshot."""
        with self._lock:
            return dict(self._manifest)

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    # -- teardown ------------------------------------------------------
    def release(self, key: TraceKey) -> bool:
        """Drop one reference; unlink the segment at refcount zero.

        Returns True when the segment was actually unlinked.
        """
        with self._lock:
            if key not in self._refcounts:
                return False
            self._refcounts[key] -= 1
            if self._refcounts[key] > 0:
                return False
            segment = self._segments.pop(key)
            name, count = self._manifest.pop(key)
            del self._refcounts[key]
        self._destroy(segment, name)
        return True

    def unlink_all(self) -> int:
        """Force-unlink every owned segment (drain/exit path).

        Idempotent and safe after partial failures: every segment gets
        a close+unlink attempt regardless of refcount.
        """
        with self._lock:
            doomed = list(self._segments.items())
            self._segments.clear()
            self._manifest.clear()
            self._refcounts.clear()
        for key, segment in doomed:
            self._destroy(segment, segment.name)
        return len(doomed)

    def _destroy(self, segment: shared_memory.SharedMemory, name: str) -> None:
        size = segment.size
        try:
            segment.close()
        except BufferError:
            # A live memoryview pins the mapping; unlink still removes
            # the name so nothing leaks past process exit, and the
            # handle is parked so its finaliser fires after the view.
            self._zombies.append(segment)
            log.warning("segment %s still has exported views at close", name)
        try:
            segment.unlink()
        except FileNotFoundError:
            pass  # already gone (racing unlink_all / external cleanup)
        _obs.shm_segment("unlink", name, size)

    def __enter__(self) -> "SharedTraceRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unlink_all()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def reap_stale_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Unlink segments whose exporting process no longer exists.

    A SIGKILLed sweep cannot run its own unlink path — even the shared
    resource tracker dies with the process group — so the next engine
    start heals ``/dev/shm`` instead: every segment name embeds its
    owner pid, and any segment whose owner is gone is unlinked here.
    Segments of live owners are never touched, and a worker that raced
    an unlink falls back to disk transparently (the store treats a
    vanished segment as a miss).  Returns the reaped names.
    """
    reaped: list[str] = []
    for name in leaked_segments(prefix):
        parts = name.split("-")
        try:
            pid = int(parts[-3])  # {prefix}-{pid}-{serial}-{digest}
        except (IndexError, ValueError):
            continue
        if _pid_alive(pid):
            continue
        path = os.path.join(SHM_DIR, name)
        try:
            size = os.stat(path).st_size
            os.unlink(path)
        except OSError:
            continue  # racing reaper or owner came back — leave it
        log.warning("reaped stale segment %s (owner pid %d is gone)", name, pid)
        _obs.shm_segment("reap", name, size)
        reaped.append(name)
    return reaped


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of shared-memory segments with ``prefix`` still present.

    Scans :data:`SHM_DIR` (Linux); returns an empty list on platforms
    without it.  The chaos harness asserts this is empty after every
    run, including SIGTERM/SIGKILL worker deaths.
    """
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


def attach_views(
    name: str, count: int, with_kinds: bool
) -> tuple[shared_memory.SharedMemory, memoryview, memoryview | None]:
    """Attach to a segment and return zero-copy read-only columns.

    Returns ``(segment, addresses, kinds)`` — the segment handle must
    be kept alive as long as the views are in use (the store keeps it
    in ``_attached``).  Raises ``FileNotFoundError`` when the segment
    is gone (owner already unlinked); callers fall back to disk.
    """
    segment = shared_memory.SharedMemory(name=name, create=False)
    base = memoryview(segment.buf).toreadonly()
    addresses = base[: 8 * count].cast("Q")
    kinds = base[8 * count: 9 * count] if with_kinds else None
    _obs.shm_segment("attach", name, segment.size)
    return segment, addresses, kinds
