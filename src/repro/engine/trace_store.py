"""On-disk trace store: materialise each synthetic trace exactly once.

Every figure/table reproduction replays the same 26 synthetic SPEC2K
traces through many cache organisations.  The previous memoisation
(``functools.lru_cache`` over tuples of ints) was per-process only —
worker processes regenerated every trace from scratch and FULL-scale
tuples (1 M ints x 26 benchmarks) pinned gigabytes of interpreter
objects.

This store keeps traces on disk as compact little-endian ``uint64``
blobs (8 bytes per reference instead of a ~28-byte ``int`` object each)
keyed by ``(benchmark, side, n, seed)``, each followed by a 4-byte
little-endian CRC32 footer.  Two stream flavours exist:

* **address streams** (:meth:`TraceStore.addresses`) — the raw address
  sequence the experiment harness replays (reads only), sides ``data``
  and ``instr``;
* **access streams** (:meth:`TraceStore.accesses`) — addresses plus a
  parallel ``uint8`` kind blob (read/write/ifetch), sides ``data``,
  ``instr`` and ``combined`` — what ``bcache-sim`` replays.

Writes are atomic *and durable* (temp file + ``fsync`` +
``os.replace``) so concurrent worker processes can safely race to
materialise the same trace and a power loss cannot leave a live path
pointing at garbage; the loser's write simply replaces the winner's
identical bytes.  Blobs whose CRC footer does not match are moved to
``<root>/quarantine/`` and transparently regenerated from the
deterministic seed — corruption costs one regeneration, never a crash.
A small in-process LRU keeps the hot handful of traces in memory.

The default root is ``$REPRO_TRACE_STORE`` or
``~/.cache/bcache-repro/traces``.
"""

from __future__ import annotations

import logging
import os
import time
import zlib
from array import array
from collections import OrderedDict
from pathlib import Path

from repro.obs import instrument as _obs
from repro.workloads.spec2k import get_profile

log = logging.getLogger("repro.engine.trace_store")

#: File suffixes: raw little-endian uint64 addresses / uint8 kinds
#: (each blob carries a trailing 4-byte little-endian CRC32 footer).
ADDRESS_SUFFIX = ".addr.u64"
KIND_SUFFIX = ".kind.u8"

#: Bytes of CRC32 footer appended to every blob.
CRC_BYTES = 4

#: Directory (under the store root) where corrupt blobs are parked.
QUARANTINE_DIR = "quarantine"

#: Sides with a raw-address fast path (reads only, experiment harness).
ADDRESS_SIDES = ("data", "instr")

#: Sides with a full access stream (addresses + kinds, ``bcache-sim``).
ACCESS_SIDES = ("data", "instr", "combined")

ENV_ROOT = "REPRO_TRACE_STORE"


def default_root() -> Path:
    """Store root: ``$REPRO_TRACE_STORE`` or ``~/.cache/bcache-repro``."""
    env = os.environ.get(ENV_ROOT)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path("~/.cache").expanduser()
    return base / "bcache-repro" / "traces"


def _frame(payload: bytes) -> bytes:
    """Append the CRC32 footer that makes bit rot detectable on load."""
    return payload + zlib.crc32(payload).to_bytes(CRC_BYTES, "little")


def _unframe(data: bytes) -> bytes | None:
    """Strip and verify the CRC32 footer; ``None`` if the blob is corrupt."""
    if len(data) < CRC_BYTES:
        return None
    payload, footer = data[:-CRC_BYTES], data[-CRC_BYTES:]
    if zlib.crc32(payload) != int.from_bytes(footer, "little"):
        return None
    return payload


def _atomic_write(path: Path, payload: bytes, fsync: bool = True) -> None:
    """Write a framed ``payload`` to ``path`` atomically and durably.

    Safe under racing workers (temp file + ``os.replace``); with
    ``fsync`` (the default) the temp file's contents reach stable
    storage *before* the rename, so a power loss cannot leave the live
    path pointing at a half-written blob.  Tests pass ``fsync=False``
    to skip the flush — durability is irrelevant under ``tmp_path``.
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    data = _frame(payload)
    with open(tmp, "wb") as handle:
        handle.write(data)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def _payload_size(count: int) -> int:
    """On-disk size of a framed blob holding ``count`` payload bytes."""
    return count + CRC_BYTES


def _readonly(value: object) -> object:
    """Wrap cached trace columns as read-only ``memoryview`` objects.

    ``array`` blobs become typed read-only views (format ``Q``/``B``
    preserved); shared-memory views are already read-only and pass
    through; pairs wrap element-wise.
    """
    if isinstance(value, tuple):
        return tuple(_readonly(item) for item in value)
    if isinstance(value, memoryview):
        return value if value.readonly else value.toreadonly()
    if isinstance(value, array):
        return memoryview(value).toreadonly()
    return value


class TraceStoreError(ValueError):
    """Raised for unknown sides or malformed store requests."""


class TraceStore:
    """Disk-backed, memory-bounded cache of synthetic benchmark traces.

    Args:
        root: directory for the blobs (created on demand); defaults to
            :func:`default_root`.
        memory_entries: number of decoded traces kept in the in-process
            LRU (a FULL-scale entry is ~8 MB as ``array('Q')``).
        fsync: flush blob bytes to stable storage before the atomic
            rename (durable across power loss).  ``fsync=False`` is the
            escape hatch for tests and throwaway stores.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        memory_entries: int = 16,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.memory_entries = max(1, memory_entries)
        self.fsync = fsync
        self._memory: OrderedDict[tuple, object] = OrderedDict()
        # Zero-copy tier: adopted {key: (segment name, count)} manifest
        # plus the attached segment handles keeping the mappings alive.
        self._shared: dict[tuple, tuple[str, int]] = {}
        self._attached: dict[tuple, object] = {}
        # Segments whose close() failed because a caller still holds a
        # view; kept referenced so their finalisers fire only once the
        # views are gone.
        self._zombies: list[object] = []
        self.disk_hits = 0
        self.disk_misses = 0
        self.shared_hits = 0
        self.quarantined = 0

    # -- paths ---------------------------------------------------------
    def _stem(self, benchmark: str, side: str, n: int, seed: int, kinds: bool) -> str:
        flavour = "acc" if kinds else "adr"
        return f"{benchmark}_{side}_{flavour}_n{n}_s{seed}"

    def address_path(
        self, benchmark: str, side: str, n: int, seed: int, kinds: bool = False
    ) -> Path:
        return self.root / (self._stem(benchmark, side, n, seed, kinds) + ADDRESS_SUFFIX)

    def kind_path(self, benchmark: str, side: str, n: int, seed: int) -> Path:
        return self.root / (self._stem(benchmark, side, n, seed, True) + KIND_SUFFIX)

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    # -- verified blob IO ----------------------------------------------
    def _write(self, path: Path, payload: bytes) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write(path, payload, fsync=self.fsync)

    def _quarantine(self, path: Path, reason: str) -> None:
        """Park a corrupt blob under ``quarantine/`` for forensics.

        The store never raises on corruption: the caller regenerates
        the trace from its deterministic seed and the damaged bytes are
        kept aside instead of silently overwritten.
        """
        target = self.quarantine_root / path.name
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # A racing process already moved/replaced it; regeneration
            # is still correct, so just drop the stale handle.
            path.unlink(missing_ok=True)
        self.quarantined += 1
        _obs.trace_store_quarantined(path.name, reason)
        log.warning("quarantined corrupt trace blob %s (%s)", path.name, reason)

    def _load_payload(self, path: Path, expected_size: int | None = None) -> bytes | None:
        """Read and CRC-verify one blob; ``None`` means regenerate.

        Missing files regenerate silently.  Present files that are the
        wrong size (truncated writes, stale pre-CRC layouts) or fail
        their checksum (bit rot) are quarantined and regenerated from
        the deterministic seed — never raised to the caller.
        """
        if not path.is_file():
            return None
        data = path.read_bytes()
        if expected_size is not None and len(data) != expected_size:
            self._quarantine(path, f"size {len(data)} != expected {expected_size}")
            return None
        payload = _unframe(data)
        if payload is None:
            self._quarantine(path, "CRC32 mismatch")
            return None
        return payload

    # -- memory LRU ----------------------------------------------------
    def _remember(self, key: tuple, value: object) -> None:
        memory = self._memory
        memory[key] = value
        memory.move_to_end(key)
        while len(memory) > self.memory_entries:
            memory.popitem(last=False)

    def _recall(self, key: tuple) -> object | None:
        """Cached value as **read-only** ``memoryview`` columns.

        The LRU keeps the mutable backing objects private: a caller
        mutating what it was handed can no longer corrupt the trace
        every later caller sees.
        """
        value = self._memory.get(key)
        if value is None:
            return None
        self._memory.move_to_end(key)
        return _readonly(value)

    def clear_memory(self) -> None:
        """Drop the in-process LRU (disk blobs stay)."""
        self._memory.clear()

    # -- zero-copy shared-memory tier ----------------------------------
    def adopt_manifest(self, manifest: dict | None) -> None:
        """Adopt ``{trace key: (segment name, count)}`` from a parent.

        Subsequent :meth:`addresses`/:meth:`accesses` calls for those
        keys attach to the named segments instead of reading disk.
        ``None`` or ``{}`` clears nothing; adopting replaces entries
        key-by-key.
        """
        if manifest:
            self._shared.update(manifest)

    def _attach_shared(self, key: tuple) -> object | None:
        """Attach ``key``'s segment and cache its zero-copy columns.

        Falls back to ``None`` (disk tier) when the key has no adopted
        segment or the segment vanished (owner already unlinked).
        """
        entry = self._shared.get(key)
        if entry is None:
            return None
        from repro.engine import shm as _shm

        name, count = entry
        with_kinds = key[-1] == "acc"
        try:
            segment, addresses, kinds = _shm.attach_views(name, count, with_kinds)
        except (FileNotFoundError, ValueError, OSError):
            del self._shared[key]
            return None
        self._attached[key] = segment
        value: object = (addresses, kinds) if with_kinds else addresses
        self._remember(key, value)
        self.shared_hits += 1
        _obs.trace_store_hit("shared", key[0])
        return self._recall(key)

    def release_shared(self) -> None:
        """Detach every attached segment and forget the manifest.

        Cached views into the segments are dropped first so the
        mappings can actually close; segment *unlinking* stays with the
        owning registry in the parent process.
        """
        for key in list(self._attached):
            self._memory.pop(key, None)
        for key, segment in list(self._attached.items()):
            self._zombies.append(segment)
            del self._attached[key]
        self._shared.clear()
        still_pinned = []
        for segment in self._zombies:
            try:
                segment.close()  # type: ignore[attr-defined]
            except BufferError:  # a caller still holds a view
                still_pinned.append(segment)
        self._zombies = still_pinned

    def wipe(self) -> int:
        """Delete every blob under the root (quarantine included);
        returns the count of live blobs removed."""
        self.clear_memory()
        removed = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                if path.suffix in (".u64", ".u8"):
                    path.unlink(missing_ok=True)
                    removed += 1
        quarantine = self.quarantine_root
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                path.unlink(missing_ok=True)
            quarantine.rmdir()
        return removed

    # -- address streams (experiment harness; reads only) --------------
    def addresses(self, benchmark: str, side: str, n: int, seed: int) -> memoryview:
        """The first ``n`` addresses of one reference stream as a
        read-only ``uint64`` ``memoryview`` (zero-copy columnar)."""
        if side not in ADDRESS_SIDES:
            raise TraceStoreError(
                f"address streams support sides {ADDRESS_SIDES}, got {side!r}"
            )
        key = (benchmark, side, n, seed, "adr")
        cached = self._recall(key)
        if cached is not None:
            _obs.trace_store_hit("memory", benchmark)
            return cached  # type: ignore[return-value]
        shared = self._attach_shared(key)
        if shared is not None:
            return shared  # type: ignore[return-value]
        path = self.address_path(benchmark, side, n, seed)
        payload = self._load_payload(path, expected_size=_payload_size(8 * n))
        if payload is not None:
            self.disk_hits += 1
            _obs.trace_store_hit("disk", benchmark)
            blob = array("Q")
            blob.frombytes(payload)
        else:
            self.disk_misses += 1
            started = time.monotonic()
            blob = self._generate_addresses(benchmark, side, n, seed)
            _obs.trace_store_miss(benchmark, time.monotonic() - started)
        self._remember(key, blob)
        return self._recall(key)  # type: ignore[return-value]

    def _generate_addresses(self, benchmark: str, side: str, n: int, seed: int) -> array:
        profile = get_profile(benchmark)
        raw = (
            profile.data_addresses(n, seed)
            if side == "data"
            else profile.instr_addresses(n, seed)
        )
        blob = array("Q", raw)
        self._write(self.address_path(benchmark, side, n, seed), blob.tobytes())
        return blob

    # -- access streams (addresses + kinds) ----------------------------
    def accesses(
        self, benchmark: str, side: str, n: int, seed: int
    ) -> tuple[memoryview, memoryview]:
        """One full access stream as read-only ``(uint64 addresses,
        uint8 kinds)`` ``memoryview`` columns.

        For sides ``data``/``instr`` the length is exactly ``n``; for
        ``combined`` it is the number of references generated by ``n``
        instructions (one ifetch each plus a data access for a fraction
        of them), recovered from the blob size.
        """
        if side not in ACCESS_SIDES:
            raise TraceStoreError(
                f"access streams support sides {ACCESS_SIDES}, got {side!r}"
            )
        key = (benchmark, side, n, seed, "acc")
        cached = self._recall(key)
        if cached is not None:
            _obs.trace_store_hit("memory", benchmark)
            return cached  # type: ignore[return-value]
        shared = self._attach_shared(key)
        if shared is not None:
            return shared  # type: ignore[return-value]
        addr_path = self.address_path(benchmark, side, n, seed, kinds=True)
        kind_path = self.kind_path(benchmark, side, n, seed)
        pair = self._read_access_pair(addr_path, kind_path, side, n)
        if pair is None:
            self.disk_misses += 1
            started = time.monotonic()
            pair = self._generate_accesses(benchmark, side, n, seed)
            _obs.trace_store_miss(benchmark, time.monotonic() - started)
        else:
            self.disk_hits += 1
            _obs.trace_store_hit("disk", benchmark)
        self._remember(key, pair)
        return self._recall(key)  # type: ignore[return-value]

    def _read_access_pair(
        self, addr_path: Path, kind_path: Path, side: str, n: int
    ) -> tuple[array, array] | None:
        if not (addr_path.is_file() and kind_path.is_file()):
            return None
        kind_payload = self._load_payload(kind_path)
        if kind_payload is None:
            return None
        count = len(kind_payload)
        if side != "combined" and count != n:
            self._quarantine(kind_path, f"kind count {count} != expected {n}")
            return None
        addr_payload = self._load_payload(
            addr_path, expected_size=_payload_size(8 * count)
        )
        if addr_payload is None:
            return None
        addresses = array("Q")
        addresses.frombytes(addr_payload)
        kinds = array("B")
        kinds.frombytes(kind_payload)
        return addresses, kinds

    def _generate_accesses(
        self, benchmark: str, side: str, n: int, seed: int
    ) -> tuple[array, array]:
        profile = get_profile(benchmark)
        if side == "data":
            stream = profile.data_trace(n, seed)
        elif side == "instr":
            stream = profile.instruction_trace(n, seed)
        else:
            stream = profile.combined_trace(n, seed)
        addresses = array("Q")
        kinds = array("B")
        append_address = addresses.append
        append_kind = kinds.append
        for access in stream:
            append_address(access.address)
            append_kind(access.kind)
        self._write(
            self.address_path(benchmark, side, n, seed, kinds=True),
            addresses.tobytes(),
        )
        self._write(self.kind_path(benchmark, side, n, seed), kinds.tobytes())
        return addresses, kinds

    # -- bulk materialisation ------------------------------------------
    def ensure(
        self, benchmark: str, side: str, n: int, seed: int, kinds: bool = False
    ) -> Path:
        """Materialise one trace on disk without retaining it in memory.

        The runner calls this for every distinct trace of a sweep
        before forking workers, so the pool loads blobs instead of
        regenerating streams.  Returns the address-blob path.
        """
        if kinds:
            addr_path = self.address_path(benchmark, side, n, seed, kinds=True)
            pair = self._read_access_pair(
                addr_path, self.kind_path(benchmark, side, n, seed), side, n
            )
            if pair is None:
                self._generate_accesses(benchmark, side, n, seed)
            return addr_path
        path = self.address_path(benchmark, side, n, seed)
        if self._load_payload(path, expected_size=_payload_size(8 * n)) is None:
            self._generate_addresses(benchmark, side, n, seed)
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TraceStore root={self.root} memory={len(self._memory)}/"
            f"{self.memory_entries} disk_hits={self.disk_hits} "
            f"disk_misses={self.disk_misses} quarantined={self.quarantined}>"
        )


# ----------------------------------------------------------------------
# Process-wide default store (worker processes point it at the parent's
# root via the runner's pool initializer).
# ----------------------------------------------------------------------
_DEFAULT: TraceStore | None = None


def default_store() -> TraceStore:
    """The process-wide store, created on first use."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = TraceStore()
    return _DEFAULT


def set_default_store(store: TraceStore | None) -> TraceStore | None:
    """Replace the process-wide store; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = store
    return previous
