"""Experiment harnesses: one module per paper figure/table."""

from repro.experiments.common import (
    DEFAULT,
    FULL,
    SMOKE,
    ExperimentScale,
    clear_trace_caches,
    miss_rate,
    run_side,
    run_system,
    sweep_stats,
)

__all__ = [
    "DEFAULT",
    "ExperimentScale",
    "FULL",
    "SMOKE",
    "clear_trace_caches",
    "miss_rate",
    "run_side",
    "run_system",
    "sweep_stats",
]
