"""ASCII bar charts for figure-style output.

The paper's Figures 4, 5, 8, 9 and 12 are grouped bar charts; the
tables the harness prints carry the same numbers, but a quick visual
read of "who wins where" is worth having in a terminal-only
environment.  `bcache-repro` appends these charts to the figure
experiments' output.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def horizontal_bars(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "%",
    max_value: float | None = None,
    title: str = "",
) -> str:
    """Render labelled horizontal bars, one row per entry.

    Negative values render as a leading ``<`` marker (the bar direction
    cannot flip in a fixed-width chart without ambiguity).
    """
    if not values:
        raise ValueError("values must be non-empty")
    limit = max_value if max_value is not None else max(
        (abs(v) for v in values.values()), default=1.0
    )
    if limit <= 0:
        limit = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        filled = int(round(min(abs(value), limit) / limit * width))
        bar = ("<" if value < 0 else "#") * filled
        lines.append(f"{label!s:>{label_width}} |{bar:<{width}} {value:.1f}{unit}")
    return "\n".join(lines)


def grouped_bars(
    groups: Sequence[str],
    series: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "%",
    title: str = "",
) -> str:
    """Render one bar block per group with all series inside.

    ``series`` maps series name -> {group -> value}; the scale is
    shared across the whole chart so bars are comparable between
    groups, as in the paper's figures.
    """
    if not groups or not series:
        raise ValueError("groups and series must be non-empty")
    limit = max(
        abs(values.get(group, 0.0))
        for values in series.values()
        for group in groups
    )
    blocks = [title] if title else []
    for group in groups:
        row = {name: values.get(group, 0.0) for name, values in series.items()}
        blocks.append(
            horizontal_bars(
                row, width=width, unit=unit, max_value=limit, title=str(group)
            )
        )
    return "\n\n".join(blocks)
