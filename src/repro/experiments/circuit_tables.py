"""Tables 1, 2 and 3 — the circuit-model tables (no simulation needed).

* Table 1: decoder timing per subarray size; the claim is positive
  slack everywhere, i.e. the B-Cache adds no access-time overhead.
* Table 2: storage cost in SRAM-bit equivalents; +4.3 % for the
  headline design, less than a 4-way cache's 7.98 %.
* Table 3: energy per access by component; +10.5 % for the B-Cache,
  still far below 2-/4-/8-way caches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BCacheGeometry
from repro.energy.area import (
    StorageCost,
    bcache_storage,
    conventional_storage,
    set_associative_area_overhead,
)
from repro.energy.cacti_lite import EnergyBreakdown, conventional_access_energy
from repro.energy.decoder_timing import DecoderTiming, table1_timings
from repro.energy.model import bcache_access_energy
from repro.experiments.reporting import format_table

HEADLINE = BCacheGeometry(16 * 1024, 32, mapping_factor=8, associativity=8)


@dataclass(frozen=True)
class Tab1Result:
    timings: tuple[DecoderTiming, ...]

    @property
    def all_have_slack(self) -> bool:
        return all(t.slack_ns >= 0 for t in self.timings)

    def render(self) -> str:
        rows = [
            (
                f"{t.address_bits}x{t.wordlines}",
                t.original_composition,
                f"{t.original_ns:.3f}",
                t.bcache_npd_composition,
                f"{t.bcache_npd_ns:.3f}",
                f"{t.bcache_pd_ns:.3f}",
                f"{t.bcache_ns:.3f}",
                f"{t.slack_ns:+.3f}",
            )
            for t in self.timings
        ]
        return format_table(
            ("decoder", "orig comp", "orig ns", "NPD comp", "NPD ns",
             "PD ns", "BC ns", "slack ns"),
            rows,
            title="Table 1: decoder timing (slack >= 0 means no overhead)",
        )


def run_tab1() -> Tab1Result:
    return Tab1Result(timings=tuple(table1_timings()))


@dataclass(frozen=True)
class Tab2Result:
    baseline: StorageCost
    bcache: StorageCost
    fourway_overhead: float

    @property
    def overhead(self) -> float:
        return self.bcache.overhead_vs(self.baseline)

    def render(self) -> str:
        rows = [
            (
                "baseline",
                self.baseline.tag_decoder_bits,
                self.baseline.tag_memory_bits,
                self.baseline.data_decoder_bits,
                self.baseline.data_memory_bits,
                self.baseline.total_bits,
            ),
            (
                "B-Cache",
                self.bcache.tag_decoder_bits,
                self.bcache.tag_memory_bits,
                self.bcache.data_decoder_bits,
                self.bcache.data_memory_bits,
                self.bcache.total_bits,
            ),
        ]
        table = format_table(
            ("org", "tag dec", "tag mem", "data dec", "data mem", "total (bits)"),
            rows,
            title="Table 2: storage cost (SRAM-bit equivalents)",
        )
        return table + (
            f"\nB-Cache overhead: {100 * self.overhead:.1f}% "
            f"(4-way cache: {100 * self.fourway_overhead:.2f}%)"
        )


def run_tab2(geometry: BCacheGeometry = HEADLINE) -> Tab2Result:
    return Tab2Result(
        baseline=conventional_storage(geometry.size, geometry.line_size),
        bcache=bcache_storage(geometry),
        fourway_overhead=set_associative_area_overhead(4),
    )


@dataclass(frozen=True)
class Tab3Result:
    baseline: EnergyBreakdown
    bcache: EnergyBreakdown
    setassoc: dict[int, EnergyBreakdown]

    @property
    def overhead(self) -> float:
        return self.bcache.total_pj / self.baseline.total_pj - 1.0

    def bcache_below(self, ways: int) -> float:
        """How far below a W-way cache the B-Cache's access energy is."""
        return 1.0 - self.bcache.total_pj / self.setassoc[ways].total_pj

    def render(self) -> str:
        names = list(self.baseline.components) + ["PD"]
        rows = []
        for label, breakdown in (("baseline", self.baseline), ("B-Cache", self.bcache)):
            row: list[object] = [label]
            row.extend(round(breakdown.components.get(n, 0.0), 1) for n in names)
            row.append(round(breakdown.total_pj, 1))
            rows.append(row)
        table = format_table(
            ["org"] + names + ["Total (pJ)"],
            rows,
            title="Table 3: energy per cache access",
        )
        lines = [table, f"B-Cache overhead: +{100 * self.overhead:.1f}%"]
        for ways in sorted(self.setassoc):
            lines.append(
                f"vs {ways}-way: {100 * self.bcache_below(ways):.1f}% lower"
            )
        return "\n".join(lines)


def run_tab3(geometry: BCacheGeometry = HEADLINE) -> Tab3Result:
    return Tab3Result(
        baseline=conventional_access_energy(geometry.size, geometry.line_size),
        bcache=bcache_access_energy(geometry),
        setassoc={
            ways: conventional_access_energy(geometry.size, geometry.line_size, ways)
            for ways in (2, 4, 8)
        },
    )
