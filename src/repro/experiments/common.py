"""Shared infrastructure for the per-figure/per-table experiments.

Traces are deterministic (seeded) and materialised once per machine by
the on-disk :mod:`repro.engine.trace_store`; the thin ``lru_cache``
wrappers here only pin the hot handful of decoded columnar blobs (as
read-only ``uint64`` views) so repeated sweeps stay allocation-free.  All replay goes through
:func:`repro.engine.runner.execute_job`, the same code path the
process-pool runner uses — which is what makes ``jobs > 1`` sweeps
bit-identical to serial ones.

Scale presets control trace lengths: the paper simulates 500 M
instructions per benchmark; synthetic workloads reach stable miss
rates far sooner.  ``SMOKE`` keeps the benchmark suite fast, ``DEFAULT``
is the scale used for EXPERIMENTS.md, ``FULL`` for final runs.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.caches import make_cache
from repro.caches.base import Cache
from repro.cpu.timing import ExecutionResult, OoOProcessorModel, ProcessorConfig
from repro.engine.runner import SweepJob, execute_job, run_sweep
from repro.engine.trace_store import default_store
from repro.hierarchy.memory_system import MemoryHierarchy
from repro.stats.counters import CacheStats
from repro.workloads.spec2k import get_profile


@dataclass(frozen=True)
class ExperimentScale:
    """Trace lengths for one experiment run."""

    data_n: int = 200_000
    instr_n: int = 200_000
    instructions: int = 120_000
    seed: int = 2006  # ISCA 2006

    def scaled(self, factor: float) -> "ExperimentScale":
        return ExperimentScale(
            data_n=max(1000, int(self.data_n * factor)),
            instr_n=max(1000, int(self.instr_n * factor)),
            instructions=max(1000, int(self.instructions * factor)),
            seed=self.seed,
        )

    def side_n(self, side: str) -> int:
        """Trace length for one side (``data`` or ``instr``)."""
        if side == "data":
            return self.data_n
        if side == "instr":
            return self.instr_n
        raise ValueError(f"side must be 'data' or 'instr', got {side!r}")


SMOKE = ExperimentScale(data_n=20_000, instr_n=30_000, instructions=15_000)
DEFAULT = ExperimentScale()
FULL = ExperimentScale(data_n=1_000_000, instr_n=1_000_000, instructions=500_000)

# The disk store is authoritative; these wrappers only pin decoded
# blobs for the current sweep, so they can stay small (a FULL-scale
# entry is ~8 MB — 32 entries bound the memo at ~256 MB worst case
# instead of the unbounded gigabytes the old maxsize=256 tuple memos
# could reach).


@lru_cache(maxsize=32)
def data_addresses(benchmark: str, n: int, seed: int) -> memoryview:
    """Memoised data-address column (read-only ``uint64`` view)."""
    return default_store().addresses(benchmark, "data", n, seed)


@lru_cache(maxsize=32)
def instr_addresses(benchmark: str, n: int, seed: int) -> memoryview:
    """Memoised instruction-address column (read-only ``uint64`` view)."""
    return default_store().addresses(benchmark, "instr", n, seed)


@lru_cache(maxsize=8)
def combined_trace(benchmark: str, instructions: int, seed: int) -> tuple:
    """Memoised combined (ifetch + data) trace for the system model."""
    return tuple(get_profile(benchmark).combined_trace(instructions, seed))


def run_side(
    spec: str,
    benchmark: str,
    side: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
    line_size: int = 32,
    policy: str = "lru",
) -> CacheStats:
    """Run one benchmark's I- or D-stream through one cache config."""
    return execute_job(
        SweepJob(
            spec=spec,
            benchmark=benchmark,
            side=side,
            n=scale.side_n(side),
            seed=scale.seed,
            size=size,
            line_size=line_size,
            policy=policy,
        )
    )


def sweep_stats(
    specs: Sequence[str],
    benchmarks: Sequence[str],
    side: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
    line_size: int = 32,
    policy: str = "lru",
    jobs: int | None = None,
    run_id: str | None = None,
    resume: str | None = None,
) -> dict[tuple[str, str], CacheStats]:
    """Run a (spec x benchmark) sweep, optionally across processes.

    Returns ``{(spec, benchmark): stats}``.  ``jobs=None`` reads
    ``$REPRO_JOBS`` (default 1, i.e. serial in this process); any
    worker count produces bit-identical statistics because every job
    runs :func:`repro.engine.runner.execute_job` on the same stored
    trace (see ``docs/engine.md``).

    ``run_id``/``resume`` opt into the crash-safe engine path: every
    completed (spec, benchmark) cell is journaled durably and a rerun
    with the same id skips completed cells bit-identically — use it
    for FULL-scale panels that must survive a kill mid-run.
    """
    sweep = [
        SweepJob(
            spec=spec,
            benchmark=benchmark,
            side=side,
            n=scale.side_n(side),
            seed=scale.seed,
            size=size,
            line_size=line_size,
            policy=policy,
        )
        for spec in specs
        for benchmark in benchmarks
    ]
    results = run_sweep(sweep, workers=jobs, run_id=run_id, resume=resume)
    return {
        (job.spec, job.benchmark): stats for job, stats in zip(sweep, results)
    }


def run_side_cache(
    spec: str,
    benchmark: str,
    side: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
    policy: str = "lru",
) -> Cache:
    """Like :func:`run_side` but returns the cache (for balance stats)."""
    addresses = default_store().addresses(
        benchmark, side, scale.side_n(side), scale.seed
    )
    cache = make_cache(spec, size=size, policy=policy)
    cache.access_trace(addresses)
    return cache


def miss_rate(
    spec: str,
    benchmark: str,
    side: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
) -> float:
    """Miss rate of one (config, benchmark, side) run."""
    return run_side(spec, benchmark, side, scale, size=size).miss_rate


def run_system(
    spec: str,
    benchmark: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
    config: ProcessorConfig | None = None,
) -> ExecutionResult:
    """Run the full processor + hierarchy model with ``spec`` L1 caches."""
    trace = combined_trace(benchmark, scale.instructions, scale.seed)
    hierarchy = MemoryHierarchy(
        l1i=make_cache(spec, size=size),
        l1d=make_cache(spec, size=size),
    )
    model = OoOProcessorModel(hierarchy, config)
    result = model.run(trace)
    # Keep the hierarchy reachable for callers needing raw counters.
    result.hierarchy = hierarchy  # type: ignore[attr-defined]
    return result


def clear_trace_caches() -> None:
    """Drop memoised traces (frees memory between large sweeps).

    Disk blobs are untouched — the next request decodes them again.
    """
    data_addresses.cache_clear()
    instr_addresses.cache_clear()
    combined_trace.cache_clear()
    default_store().clear_memory()
