"""Shared infrastructure for the per-figure/per-table experiments.

Traces are deterministic (seeded) and memoised per (benchmark, side,
length, seed) so that sweeping many cache configurations over the same
workload generates each trace once.

Scale presets control trace lengths: the paper simulates 500 M
instructions per benchmark; synthetic workloads reach stable miss
rates far sooner.  ``SMOKE`` keeps the benchmark suite fast, ``DEFAULT``
is the scale used for EXPERIMENTS.md, ``FULL`` for final runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.caches import make_cache
from repro.caches.base import Cache
from repro.cpu.timing import ExecutionResult, OoOProcessorModel, ProcessorConfig
from repro.hierarchy.memory_system import MemoryHierarchy
from repro.stats.counters import CacheStats
from repro.workloads.spec2k import get_profile


@dataclass(frozen=True)
class ExperimentScale:
    """Trace lengths for one experiment run."""

    data_n: int = 200_000
    instr_n: int = 200_000
    instructions: int = 120_000
    seed: int = 2006  # ISCA 2006

    def scaled(self, factor: float) -> "ExperimentScale":
        return ExperimentScale(
            data_n=max(1000, int(self.data_n * factor)),
            instr_n=max(1000, int(self.instr_n * factor)),
            instructions=max(1000, int(self.instructions * factor)),
            seed=self.seed,
        )


SMOKE = ExperimentScale(data_n=20_000, instr_n=30_000, instructions=15_000)
DEFAULT = ExperimentScale()
FULL = ExperimentScale(data_n=1_000_000, instr_n=1_000_000, instructions=500_000)


@lru_cache(maxsize=256)
def data_addresses(benchmark: str, n: int, seed: int) -> tuple[int, ...]:
    """Memoised data-address trace for one benchmark."""
    return tuple(get_profile(benchmark).data_addresses(n, seed))


@lru_cache(maxsize=256)
def instr_addresses(benchmark: str, n: int, seed: int) -> tuple[int, ...]:
    """Memoised instruction-address trace for one benchmark."""
    return tuple(get_profile(benchmark).instr_addresses(n, seed))


@lru_cache(maxsize=128)
def combined_trace(benchmark: str, instructions: int, seed: int) -> tuple:
    """Memoised combined (ifetch + data) trace for the system model."""
    return tuple(get_profile(benchmark).combined_trace(instructions, seed))


def run_side(
    spec: str,
    benchmark: str,
    side: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
    line_size: int = 32,
    policy: str = "lru",
) -> CacheStats:
    """Run one benchmark's I- or D-stream through one cache config."""
    if side == "data":
        addresses = data_addresses(benchmark, scale.data_n, scale.seed)
    elif side == "instr":
        addresses = instr_addresses(benchmark, scale.instr_n, scale.seed)
    else:
        raise ValueError(f"side must be 'data' or 'instr', got {side!r}")
    cache = make_cache(spec, size=size, line_size=line_size, policy=policy)
    access = cache.access
    for address in addresses:
        access(address)
    return cache.stats


def run_side_cache(
    spec: str,
    benchmark: str,
    side: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
    policy: str = "lru",
) -> Cache:
    """Like :func:`run_side` but returns the cache (for balance stats)."""
    if side == "data":
        addresses = data_addresses(benchmark, scale.data_n, scale.seed)
    else:
        addresses = instr_addresses(benchmark, scale.instr_n, scale.seed)
    cache = make_cache(spec, size=size, policy=policy)
    access = cache.access
    for address in addresses:
        access(address)
    return cache


def miss_rate(
    spec: str,
    benchmark: str,
    side: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
) -> float:
    """Miss rate of one (config, benchmark, side) run."""
    return run_side(spec, benchmark, side, scale, size=size).miss_rate


def run_system(
    spec: str,
    benchmark: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
    config: ProcessorConfig | None = None,
) -> ExecutionResult:
    """Run the full processor + hierarchy model with ``spec`` L1 caches."""
    trace = combined_trace(benchmark, scale.instructions, scale.seed)
    hierarchy = MemoryHierarchy(
        l1i=make_cache(spec, size=size),
        l1d=make_cache(spec, size=size),
    )
    model = OoOProcessorModel(hierarchy, config)
    result = model.run(trace)
    # Keep the hierarchy reachable for callers needing raw counters.
    result.hierarchy = hierarchy  # type: ignore[attr-defined]
    return result


def clear_trace_caches() -> None:
    """Drop memoised traces (frees memory between large sweeps)."""
    data_addresses.cache_clear()
    instr_addresses.cache_clear()
    combined_trace.cache_clear()
