"""Section 6.6 / 6.7 / 7.1 comparisons and the replacement ablation.

* Victim buffer (Section 6.6) — covered inside the Figure 4/5/12
  panels; here we also expose the direct B-Cache-vs-buffer deltas.
* Highly associative cache (Section 6.7) — the HAC reaches similar
  miss rates but needs a 26-bit CAM against the B-Cache's 6 bits.
* Column-associative and skewed-associative caches (Section 7.1) —
  prior art the B-Cache should match or beat while keeping one-cycle
  hits.
* Replacement ablation (Section 3.3) — LRU vs random (the paper's two
  policies) plus FIFO/PLRU extensions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.hac import HighlyAssociativeCache
from repro.core.config import BCacheGeometry
from repro.experiments.common import DEFAULT, ExperimentScale, run_side
from repro.experiments.reporting import format_table
from repro.stats.summary import average_reduction, miss_rate_reduction
from repro.workloads.spec2k import ALL_BENCHMARKS


@dataclass(frozen=True)
class ComparisonResult:
    """Average miss-rate reduction of several organisations (D$ and I$)."""

    specs: tuple[str, ...]
    data_reduction: dict[str, float]
    instr_reduction: dict[str, float]

    def render(self, title: str) -> str:
        rows = [
            (
                spec,
                100.0 * self.data_reduction[spec],
                100.0 * self.instr_reduction[spec],
            )
            for spec in self.specs
        ]
        return format_table(("config", "D$ red %", "I$ red %"), rows, title=title)


def run_comparison(
    specs: tuple[str, ...],
    scale: ExperimentScale = DEFAULT,
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
) -> ComparisonResult:
    """Average reductions of ``specs`` over the suite (both cache sides)."""
    data_red: dict[str, list[float]] = {spec: [] for spec in specs}
    instr_red: dict[str, list[float]] = {spec: [] for spec in specs}
    for benchmark in benchmarks:
        data_base = run_side("dm", benchmark, "data", scale).miss_rate
        instr_base = run_side("dm", benchmark, "instr", scale).miss_rate
        for spec in specs:
            data_rate = run_side(spec, benchmark, "data", scale).miss_rate
            instr_rate = run_side(spec, benchmark, "instr", scale).miss_rate
            data_red[spec].append(miss_rate_reduction(data_base, data_rate))
            instr_red[spec].append(miss_rate_reduction(instr_base, instr_rate))
    return ComparisonResult(
        specs=specs,
        data_reduction={s: average_reduction(v) for s, v in data_red.items()},
        instr_reduction={s: average_reduction(v) for s, v in instr_red.items()},
    )


#: Prior-art comparison of Section 7.1 (plus the victim buffer of 6.6).
PRIOR_ART_SPECS = ("victim16", "column", "skew2", "2way", "4way", "mf8_bas8")


def run_prior_art(scale: ExperimentScale = DEFAULT) -> ComparisonResult:
    return run_comparison(PRIOR_ART_SPECS, scale)


@dataclass(frozen=True)
class HACResult:
    """Section 6.7: HAC vs B-Cache — miss rate similar, CAM width 26 vs 6."""

    comparison: ComparisonResult
    hac_cam_bits: int
    bcache_pd_bits: int

    def render(self) -> str:
        return (
            self.comparison.render("Section 6.7: HAC vs B-Cache")
            + f"\nCAM width: HAC {self.hac_cam_bits} bits vs "
            f"B-Cache PD {self.bcache_pd_bits} bits"
        )


def run_hac(scale: ExperimentScale = DEFAULT) -> HACResult:
    comparison = run_comparison(("hac", "mf8_bas8", "32way"), scale)
    hac = HighlyAssociativeCache(16 * 1024)
    geometry = BCacheGeometry(16 * 1024, 32, 8, 8)
    return HACResult(
        comparison=comparison,
        hac_cam_bits=hac.cam_entry_bits,
        bcache_pd_bits=geometry.pi_bits,
    )


@dataclass(frozen=True)
class ReplacementAblation:
    """Section 3.3: the B-Cache under different replacement policies."""

    policies: tuple[str, ...]
    data_reduction: dict[str, float]

    def render(self) -> str:
        rows = [
            (policy, 100.0 * self.data_reduction[policy])
            for policy in self.policies
        ]
        return format_table(
            ("policy", "avg D$ red %"),
            rows,
            title="Replacement-policy ablation (B-Cache MF=8 BAS=8)",
        )


@dataclass(frozen=True)
class VictimSweep:
    """Section 6.6's sizing claim: 'A victim buffer with more than 16
    entries may not bring significant miss rate reduction.'"""

    entries: tuple[int, ...]
    data_reduction: dict[int, float]

    def render(self) -> str:
        rows = [
            (f"victim{n}", 100.0 * self.data_reduction[n]) for n in self.entries
        ]
        return format_table(
            ("buffer", "avg D$ red %"),
            rows,
            title="Victim-buffer size sweep (Section 6.6)",
        )

    def marginal_gain(self, from_entries: int, to_entries: int) -> float:
        return self.data_reduction[to_entries] - self.data_reduction[from_entries]


def run_victim_sweep(
    scale: ExperimentScale = DEFAULT,
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    entries: tuple[int, ...] = (4, 8, 16, 32, 64),
) -> VictimSweep:
    """Sweep the victim-buffer entry count."""
    reductions: dict[int, list[float]] = {n: [] for n in entries}
    for benchmark in benchmarks:
        base = run_side("dm", benchmark, "data", scale).miss_rate
        for n in entries:
            rate = run_side(f"victim{n}", benchmark, "data", scale).miss_rate
            reductions[n].append(miss_rate_reduction(base, rate))
    return VictimSweep(
        entries=entries,
        data_reduction={n: average_reduction(v) for n, v in reductions.items()},
    )


def run_replacement_ablation(
    scale: ExperimentScale = DEFAULT,
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    policies: tuple[str, ...] = ("lru", "random", "fifo", "plru"),
) -> ReplacementAblation:
    reductions: dict[str, list[float]] = {policy: [] for policy in policies}
    for benchmark in benchmarks:
        base = run_side("dm", benchmark, "data", scale).miss_rate
        for policy in policies:
            rate = run_side(
                "mf8_bas8", benchmark, "data", scale, policy=policy
            ).miss_rate
            reductions[policy].append(miss_rate_reduction(base, rate))
    return ReplacementAblation(
        policies=policies,
        data_reduction={p: average_reduction(v) for p, v in reductions.items()},
    )
