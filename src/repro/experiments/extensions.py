"""Extension studies beyond the paper's tables.

* ``run_addressing`` — Section 6.8: which PD input bits a
  virtually-indexed/physically-tagged implementation must treat as
  virtual index, across cache sizes and page sizes.
* ``run_drowsy`` — Section 6.4's closing claim: less-accessed sets
  survive balancing, so drowsy leakage techniques still pay off on the
  B-Cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.addressing import AddressingReport, analyze_addressing
from repro.core.config import BCacheGeometry
from repro.energy.drowsy import DrowsyReport, estimate_drowsy_leakage
from repro.experiments.common import DEFAULT, ExperimentScale, run_side
from repro.experiments.reporting import format_table
from repro.workloads.spec2k import ALL_BENCHMARKS


@dataclass(frozen=True)
class AddressingStudy:
    reports: tuple[AddressingReport, ...]

    def render(self) -> str:
        rows = []
        for report in self.reports:
            geometry = report.geometry
            rows.append(
                (
                    f"{geometry.size // 1024}kB MF={geometry.mapping_factor}",
                    f"{report.page_size // 1024}kB",
                    len(report.untranslated_tag_bits),
                    "yes" if report.vp_compatible_without_care else "no",
                )
            )
        return format_table(
            ("design", "page", "virtual-index tag bits", "V/P as-is"),
            rows,
            title="Section 6.8: virtually/physically tagged compatibility",
        )


def run_addressing(
    sizes: tuple[int, ...] = (8 * 1024, 16 * 1024, 32 * 1024),
    page_sizes: tuple[int, ...] = (4096, 65536),
) -> AddressingStudy:
    reports = []
    for size in sizes:
        for page_size in page_sizes:
            geometry = BCacheGeometry(size, 32, mapping_factor=8, associativity=8)
            reports.append(analyze_addressing(geometry, page_size))
    return AddressingStudy(reports=tuple(reports))


@dataclass(frozen=True)
class DrowsyStudy:
    rows: tuple[tuple[str, DrowsyReport, DrowsyReport], ...]

    def render(self) -> str:
        table_rows = []
        for benchmark, dm, bc in self.rows:
            table_rows.append(
                (
                    benchmark,
                    100.0 * dm.leakage_saving,
                    100.0 * bc.leakage_saving,
                )
            )
        dm_ave = sum(r[1] for r in table_rows) / len(table_rows)
        bc_ave = sum(r[2] for r in table_rows) / len(table_rows)
        table_rows.append(("Ave", dm_ave, bc_ave))
        return format_table(
            ("benchmark", "DM leakage saving %", "B-Cache leakage saving %"),
            table_rows,
            title=(
                "Section 6.4 extension: drowsy leakage savings survive "
                "the B-Cache's balancing"
            ),
        )


def run_drowsy(
    scale: ExperimentScale = DEFAULT,
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    decay_window: int = 2000,
) -> DrowsyStudy:
    rows = []
    for benchmark in benchmarks:
        dm_stats = run_side("dm", benchmark, "data", scale)
        bc_stats = run_side("mf8_bas8", benchmark, "data", scale)
        rows.append(
            (
                benchmark,
                estimate_drowsy_leakage(dm_stats, decay_window),
                estimate_drowsy_leakage(bc_stats, decay_window),
            )
        )
    return DrowsyStudy(rows=tuple(rows))
