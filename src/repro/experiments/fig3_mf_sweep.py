"""Figure 3 — wupwise D$ miss rate and PD hit rate vs mapping factor.

The paper sweeps MF from 2 to 512 at BAS = 8 on wupwise's data cache
and observes: the PD hit rate during misses stays high (the colliding
addresses share the PD's low tag bits) until the PD grows enough tag
bits to tell them apart, at which point both the PD hit rate and the
miss rate drop sharply (between MF = 32 and MF = 64 in the paper —
regions 2^19 apart need a 6-tag-bit PD).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT, ExperimentScale, sweep_stats
from repro.experiments.reporting import format_table

MF_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class MFSweepPoint:
    mapping_factor: int
    miss_rate: float
    pd_hit_rate_during_miss: float


@dataclass(frozen=True)
class Fig3Result:
    benchmark: str
    points: tuple[MFSweepPoint, ...]

    def render(self) -> str:
        rows = [
            (
                f"MF{p.mapping_factor}",
                100.0 * p.miss_rate,
                100.0 * p.pd_hit_rate_during_miss,
            )
            for p in self.points
        ]
        return format_table(
            ("config", "D$ miss rate %", "PD hit rate during miss %"),
            rows,
            title=f"Figure 3: {self.benchmark} 16kB D$, BAS=8",
        )

    def miss_rates(self) -> list[float]:
        return [p.miss_rate for p in self.points]

    def pd_hit_rates(self) -> list[float]:
        return [p.pd_hit_rate_during_miss for p in self.points]


def run(
    scale: ExperimentScale = DEFAULT,
    benchmark: str = "wupwise",
    mapping_factors: tuple[int, ...] = MF_SWEEP,
    jobs: int | None = None,
    run_id: str | None = None,
) -> Fig3Result:
    """Run the MF sweep of Figure 3 (parallelised across ``jobs``).

    ``run_id`` journals each MF point durably and resumes a previously
    killed sweep bit-identically (see ``docs/engine.md``).
    """
    specs = [f"mf{mf}_bas8" for mf in mapping_factors]
    stats_by_key = sweep_stats(
        specs, [benchmark], "data", scale, jobs=jobs, run_id=run_id
    )
    points = []
    for mf, spec in zip(mapping_factors, specs):
        stats = stats_by_key[(spec, benchmark)]
        points.append(
            MFSweepPoint(
                mapping_factor=mf,
                miss_rate=stats.miss_rate,
                pd_hit_rate_during_miss=stats.pd_hit_rate_during_miss,
            )
        )
    return Fig3Result(benchmark=benchmark, points=tuple(points))
