"""Hit-latency comparison — the paper's central argument, quantified.

Section 2.1 / Section 7: every prior technique that reaches a
set-associative miss rate from a direct-mapped cache pays for it in
*hit latency* — a second probe (victim buffer, column-associative),
three-cycle relocated hits (adaptive group-associative), or
misprediction cycles (partial address matching, predictive sequential).
"The B-Cache requires only one cycle to access all cache hits."

This experiment runs every organisation over the benchmark suite and
reports, per organisation:

* average D$ miss-rate reduction;
* the fraction of hits that are slow (multi-cycle);
* the resulting *effective hit latency* in cycles;
* average memory access time, AMAT = eff_hit + miss_rate x penalty —
  the figure of merit that decides which design actually wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.base import Cache
from repro.caches.column_associative import ColumnAssociativeCache
from repro.caches.group_associative import GroupAssociativeCache
from repro.caches.victim import VictimBufferCache
from repro.caches.way_predicting import (
    PartialAddressMatchingCache,
    PredictiveSequentialCache,
)
from repro.experiments.common import DEFAULT, ExperimentScale, run_side_cache
from repro.experiments.reporting import format_table
from repro.stats.summary import average_reduction, miss_rate_reduction
from repro.workloads.spec2k import ALL_BENCHMARKS

#: Organisations compared; the latency behaviour of each is intrinsic
#: to the class, extracted by :func:`slow_hit_profile`.
LATENCY_SPECS = (
    "dm",
    "victim16",
    "column",
    "agac",
    "pam2",
    "psa2",
    "pagecolor",
    "mf8_bas8",
)

#: L1 miss penalty used for AMAT (L2 hit, Table 4).
MISS_PENALTY = 6.0


def slow_hit_profile(cache: Cache) -> tuple[float, float]:
    """(fraction of slow hits, extra cycles per slow hit) for a run."""
    if isinstance(cache, VictimBufferCache):
        return cache.victim_hit_fraction, 1.0
    if isinstance(cache, ColumnAssociativeCache):
        return cache.slow_hit_fraction, 1.0
    if isinstance(cache, GroupAssociativeCache):
        # Relocated hits cost three cycles in the paper: +2 extra.
        return cache.relocated_hit_fraction, 2.0
    if isinstance(cache, PredictiveSequentialCache):
        if cache.slow_hits:
            average_probes = cache.extra_probe_count / cache.slow_hits
        else:
            average_probes = 0.0
        return cache.slow_hit_fraction, max(1.0, average_probes)
    if isinstance(cache, PartialAddressMatchingCache):
        return cache.slow_hit_fraction, 1.0
    # Direct-mapped, set-associative, B-Cache, page colouring: all hits
    # take one cycle.
    return 0.0, 0.0


@dataclass(frozen=True)
class LatencyRow:
    spec: str
    reduction: float
    slow_hit_fraction: float
    effective_hit_latency: float
    amat: float


@dataclass(frozen=True)
class LatencyStudy:
    rows: tuple[LatencyRow, ...]

    def row(self, spec: str) -> LatencyRow:
        for row in self.rows:
            if row.spec == spec:
                return row
        raise KeyError(spec)

    def render(self) -> str:
        table_rows = [
            (
                row.spec,
                100.0 * row.reduction,
                100.0 * row.slow_hit_fraction,
                round(row.effective_hit_latency, 3),
                round(row.amat, 3),
            )
            for row in self.rows
        ]
        return format_table(
            ("config", "D$ red %", "slow hits %", "eff. hit cycles", "AMAT"),
            table_rows,
            title=(
                "Hit-latency study (Sections 2.1/7): miss-rate reduction vs "
                "the cycles it costs"
            ),
        )


def run(
    scale: ExperimentScale = DEFAULT,
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    specs: tuple[str, ...] = LATENCY_SPECS,
) -> LatencyStudy:
    """Measure reduction, slow-hit fraction and AMAT per organisation."""
    baselines = {}
    for benchmark in benchmarks:
        baselines[benchmark] = run_side_cache(
            "dm", benchmark, "data", scale
        ).stats.miss_rate
    rows = []
    for spec in specs:
        reductions = []
        slow_fractions = []
        eff_latencies = []
        amats = []
        for benchmark in benchmarks:
            cache = run_side_cache(spec, benchmark, "data", scale)
            miss = cache.stats.miss_rate
            reductions.append(miss_rate_reduction(baselines[benchmark], miss))
            slow_fraction, extra = slow_hit_profile(cache)
            slow_fractions.append(slow_fraction)
            effective = 1.0 + slow_fraction * extra
            eff_latencies.append(effective)
            amats.append(effective + miss * MISS_PENALTY)
        rows.append(
            LatencyRow(
                spec=spec,
                reduction=average_reduction(reductions),
                slow_hit_fraction=average_reduction(slow_fractions),
                effective_hit_latency=average_reduction(eff_latencies),
                amat=average_reduction(amats),
            )
        )
    return LatencyStudy(rows=tuple(rows))
