"""3C miss decomposition across organisations.

An ablation DESIGN.md calls out: the paper *claims* the B-Cache removes
conflict misses specifically (its title says so); this experiment
verifies the mechanism by decomposing every organisation's misses into
compulsory / capacity / conflict and showing that

* the baseline's miss pile on conflict-heavy benchmarks is mostly
  conflict;
* the B-Cache's remaining misses are mostly compulsory + capacity —
  the conflict bucket is what it removed;
* on uniform-miss benchmarks (mcf, art, ...) there is hardly any
  conflict bucket to remove, explaining why nothing helps there
  (Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches import make_cache
from repro.experiments.common import DEFAULT, ExperimentScale, data_addresses
from repro.experiments.reporting import format_table
from repro.stats.three_c import MissBreakdown, classify_misses
from repro.workloads.spec2k import ALL_BENCHMARKS

DECOMPOSITION_SPECS = ("dm", "2way", "8way", "mf8_bas8")


@dataclass(frozen=True)
class DecompositionResult:
    benchmarks: tuple[str, ...]
    specs: tuple[str, ...]
    breakdowns: dict[str, dict[str, MissBreakdown]]  # spec -> bench -> 3C

    def conflict_share(self, spec: str, benchmark: str) -> float:
        return self.breakdowns[spec][benchmark].fraction("conflict")

    def render(self) -> str:
        rows = []
        for benchmark in self.benchmarks:
            for spec in self.specs:
                b = self.breakdowns[spec][benchmark]
                rows.append(
                    (
                        benchmark if spec == self.specs[0] else "",
                        spec,
                        100.0 * b.miss_rate,
                        100.0 * b.fraction("compulsory"),
                        100.0 * b.fraction("capacity"),
                        100.0 * b.fraction("conflict"),
                    )
                )
        return format_table(
            ("benchmark", "config", "miss %", "compulsory %", "capacity %",
             "conflict %"),
            rows,
            title="3C miss decomposition (shares of each config's misses)",
        )


def run(
    scale: ExperimentScale = DEFAULT,
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    specs: tuple[str, ...] = DECOMPOSITION_SPECS,
) -> DecompositionResult:
    breakdowns: dict[str, dict[str, MissBreakdown]] = {spec: {} for spec in specs}
    for benchmark in benchmarks:
        addresses = data_addresses(benchmark, scale.data_n, scale.seed)
        for spec in specs:
            cache = make_cache(spec)
            breakdowns[spec][benchmark] = classify_misses(cache, addresses)
    return DecompositionResult(
        benchmarks=tuple(benchmarks), specs=tuple(specs), breakdowns=breakdowns
    )
