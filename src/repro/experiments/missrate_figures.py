"""Figures 4, 5 and 12 — miss-rate reductions over the baseline.

* Figure 4: data cache at 16 kB, reported as CINT2K and CFP2K panels.
* Figure 5: instruction cache at 16 kB for the fifteen benchmarks whose
  baseline I$ miss rate is significant.
* Figure 12: both caches at 8 kB and 32 kB, with the extra
  BAS = 4 design points.

All report *percentage miss-rate reduction over the direct-mapped
baseline* per benchmark, plus the arithmetic-mean "Ave" bar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.caches.factory import FIGURE12_SPECS, FIGURE45_SPECS
from repro.experiments.ascii_chart import horizontal_bars
from repro.experiments.common import DEFAULT, ExperimentScale, sweep_stats
from repro.experiments.reporting import format_table
from repro.stats.summary import average_reduction, miss_rate_reduction
from repro.workloads.spec2k import CFP2K, CINT2K, REPORTED_ICACHE


@dataclass(frozen=True)
class ReductionPanel:
    """One figure panel: benchmarks x configs, reductions in [0, 1]."""

    title: str
    side: str
    size: int
    specs: tuple[str, ...]
    benchmarks: tuple[str, ...]
    baseline_rates: dict[str, float]
    reductions: dict[str, dict[str, float]]  # spec -> benchmark -> reduction

    def average(self, spec: str) -> float:
        return average_reduction(
            [self.reductions[spec][b] for b in self.benchmarks]
        )

    def render(self) -> str:
        headers = ["benchmark", "DM miss%"] + list(self.specs)
        rows: list[list[object]] = []
        for benchmark in self.benchmarks:
            row: list[object] = [
                benchmark,
                100.0 * self.baseline_rates[benchmark],
            ]
            row.extend(
                100.0 * self.reductions[spec][benchmark] for spec in self.specs
            )
            rows.append(row)
        ave: list[object] = ["Ave", ""]
        ave.extend(100.0 * self.average(spec) for spec in self.specs)
        rows.append(ave)
        return format_table(headers, rows, title=self.title)

    def render_chart(self) -> str:
        """Bar chart of the per-config averages (the figure's Ave bars)."""
        return horizontal_bars(
            {spec: 100.0 * self.average(spec) for spec in self.specs},
            title=f"{self.title} — average reductions",
        )


def run_panel(
    benchmarks: Sequence[str],
    side: str,
    scale: ExperimentScale,
    size: int = 16 * 1024,
    specs: Sequence[str] = FIGURE45_SPECS,
    title: str = "",
    jobs: int | None = None,
    run_id: str | None = None,
) -> ReductionPanel:
    """Measure one panel of miss-rate reductions.

    The (spec x benchmark) grid goes through the engine's sweep runner:
    ``jobs`` (default ``$REPRO_JOBS``) fans the jobs across processes
    with bit-identical results.  ``run_id`` journals every grid cell
    durably so a killed panel resumes where it stopped (see
    ``docs/engine.md``).
    """
    all_specs = ["dm"] + [spec for spec in specs if spec != "dm"]
    stats = sweep_stats(
        all_specs, benchmarks, side, scale, size=size, jobs=jobs, run_id=run_id
    )
    baseline_rates: dict[str, float] = {}
    reductions: dict[str, dict[str, float]] = {spec: {} for spec in specs}
    for benchmark in benchmarks:
        base = stats[("dm", benchmark)].miss_rate
        baseline_rates[benchmark] = base
        for spec in specs:
            rate = stats[(spec, benchmark)].miss_rate
            reductions[spec][benchmark] = miss_rate_reduction(base, rate)
    return ReductionPanel(
        title=title or f"{side} cache {size // 1024}kB miss-rate reductions",
        side=side,
        size=size,
        specs=tuple(specs),
        benchmarks=tuple(benchmarks),
        baseline_rates=baseline_rates,
        reductions=reductions,
    )


@dataclass(frozen=True)
class Fig4Result:
    cint: ReductionPanel
    cfp: ReductionPanel

    def render(self) -> str:
        return (
            self.cfp.render()
            + "\n\n"
            + self.cint.render()
            + "\n\n"
            + self.cfp.render_chart()
            + "\n\n"
            + self.cint.render_chart()
        )


def _sub_id(run_id: str | None, suffix: str) -> str | None:
    """Derive a per-panel journal id (multi-panel figures get one
    journal per panel so each resumes independently)."""
    return f"{run_id}-{suffix}" if run_id else None


def run_fig4(
    scale: ExperimentScale = DEFAULT,
    jobs: int | None = None,
    run_id: str | None = None,
) -> Fig4Result:
    """Figure 4: D$ reductions at 16 kB, CFP2K and CINT2K panels."""
    cfp = run_panel(
        CFP2K, "data", scale,
        title="Figure 4 (top): SPEC CFP2K data cache, 16kB",
        jobs=jobs, run_id=_sub_id(run_id, "cfp"),
    )
    cint = run_panel(
        CINT2K, "data", scale,
        title="Figure 4 (bottom): SPEC CINT2K data cache, 16kB",
        jobs=jobs, run_id=_sub_id(run_id, "cint"),
    )
    return Fig4Result(cint=cint, cfp=cfp)


def run_fig5(
    scale: ExperimentScale = DEFAULT,
    jobs: int | None = None,
    run_id: str | None = None,
) -> ReductionPanel:
    """Figure 5: I$ reductions at 16 kB for the reported benchmarks."""
    return run_panel(
        REPORTED_ICACHE, "instr", scale,
        title="Figure 5: instruction cache, 16kB",
        jobs=jobs, run_id=run_id,
    )


@dataclass(frozen=True)
class Fig12Result:
    panels: tuple[ReductionPanel, ...]  # 32kB D$, 32kB I$, 8kB D$, 8kB I$

    def render(self) -> str:
        headers = ["config", "32K D$", "32K I$", "8K D$", "8K I$"]
        specs = self.panels[0].specs
        rows = []
        for spec in specs:
            rows.append(
                [spec] + [100.0 * panel.average(spec) for panel in self.panels]
            )
        return format_table(
            headers, rows, title="Figure 12: average miss-rate reductions"
        )


def run_fig12(
    scale: ExperimentScale = DEFAULT,
    jobs: int | None = None,
    run_id: str | None = None,
) -> Fig12Result:
    """Figure 12: average reductions at 32 kB and 8 kB, both caches."""
    benchmarks_d = CINT2K + CFP2K
    panels = []
    for size in (32 * 1024, 8 * 1024):
        kb = size // 1024
        panels.append(
            run_panel(
                benchmarks_d, "data", scale, size=size,
                specs=FIGURE12_SPECS,
                title=f"Figure 12: D$ {kb}kB",
                jobs=jobs, run_id=_sub_id(run_id, f"d{kb}k"),
            )
        )
        panels.append(
            run_panel(
                REPORTED_ICACHE, "instr", scale, size=size,
                specs=FIGURE12_SPECS,
                title=f"Figure 12: I$ {kb}kB",
                jobs=jobs, run_id=_sub_id(run_id, f"i{kb}k"),
            )
        )
    # Order: 32K D$, 32K I$, 8K D$, 8K I$ (paper's x-axis order).
    return Fig12Result(panels=(panels[0], panels[1], panels[2], panels[3]))
