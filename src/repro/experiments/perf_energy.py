"""Figures 8 and 9 — IPC improvement and normalised total energy.

Both figures come from the same simulations (the paper runs
SimpleScalar once per configuration and derives IPC and the Figure 10
energy equations from it), so one runner produces both:

* Figure 8: percentage IPC improvement over the baseline processor for
  2-/4-/8-way caches, the B-Cache (MF=8, BAS=8) and the 16-entry
  victim buffer — all 26 benchmarks plus the average.
* Figure 9: total memory-related energy normalised to the baseline,
  same configurations, using the Figure 10 equations with static
  energy calibrated to 50 % of the baseline total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.factory import FIGURE89_SPECS
from repro.cpu.timing import ExecutionResult
from repro.energy.model import (
    ConfigEnergy,
    RunActivity,
    SystemEnergyModel,
    access_energy_for,
)
from repro.experiments.common import DEFAULT, ExperimentScale, run_system
from repro.experiments.reporting import format_table
from repro.stats.summary import average_reduction, improvement
from repro.workloads.spec2k import ALL_BENCHMARKS


def _activity(result: ExecutionResult, spec: str) -> RunActivity:
    """Extract the Figure 10 counters from one run."""
    hierarchy = result.hierarchy  # type: ignore[attr-defined]
    stats = hierarchy.stats
    l1i = hierarchy.l1i.cache.stats
    l1d = hierarchy.l1d.cache.stats
    return RunActivity(
        l1i_accesses=l1i.accesses,
        l1i_misses=l1i.misses,
        l1i_pd_predicted_misses=l1i.pd_miss_misses,
        l1d_accesses=l1d.accesses,
        l1d_misses=l1d.misses,
        l1d_pd_predicted_misses=l1d.pd_miss_misses,
        l2_accesses=stats.l2_accesses,
        l2_misses=stats.l2_misses,
        cycles=result.cycles,
    )


@dataclass(frozen=True)
class SystemPoint:
    """One (config, benchmark) system simulation."""

    spec: str
    benchmark: str
    ipc: float
    energy_pj: float
    l1i_miss_rate: float
    l1d_miss_rate: float


@dataclass(frozen=True)
class PerfEnergyResult:
    specs: tuple[str, ...]
    benchmarks: tuple[str, ...]
    ipc: dict[str, dict[str, float]]  # spec -> benchmark -> IPC
    energy: dict[str, dict[str, float]]  # spec -> benchmark -> pJ

    # ------------------------------------------------------------------
    def ipc_improvement(self, spec: str, benchmark: str) -> float:
        return improvement(self.ipc["dm"][benchmark], self.ipc[spec][benchmark])

    def average_ipc_improvement(self, spec: str) -> float:
        return average_reduction(
            [self.ipc_improvement(spec, b) for b in self.benchmarks]
        )

    def normalized_energy(self, spec: str, benchmark: str) -> float:
        return self.energy[spec][benchmark] / self.energy["dm"][benchmark]

    def average_normalized_energy(self, spec: str) -> float:
        return average_reduction(
            [self.normalized_energy(spec, b) for b in self.benchmarks]
        )

    # ------------------------------------------------------------------
    def render_fig8(self) -> str:
        headers = ["benchmark"] + [s for s in self.specs if s != "dm"]
        rows = []
        for benchmark in self.benchmarks:
            rows.append(
                [benchmark]
                + [
                    100.0 * self.ipc_improvement(spec, benchmark)
                    for spec in self.specs
                    if spec != "dm"
                ]
            )
        rows.append(
            ["Ave"]
            + [
                100.0 * self.average_ipc_improvement(spec)
                for spec in self.specs
                if spec != "dm"
            ]
        )
        return format_table(headers, rows, title="Figure 8: % IPC improvement over baseline")

    def render_fig9(self) -> str:
        headers = ["benchmark"] + [s for s in self.specs if s != "dm"]
        rows = []
        for benchmark in self.benchmarks:
            rows.append(
                [benchmark]
                + [
                    round(self.normalized_energy(spec, benchmark), 3)
                    for spec in self.specs
                    if spec != "dm"
                ]
            )
        rows.append(
            ["Ave"]
            + [
                round(self.average_normalized_energy(spec), 3)
                for spec in self.specs
                if spec != "dm"
            ]
        )
        return format_table(
            headers, rows, title="Figure 9: total energy normalised to baseline"
        )

    def render_charts(self) -> str:
        from repro.experiments.ascii_chart import horizontal_bars

        ipc_chart = horizontal_bars(
            {
                spec: 100.0 * self.average_ipc_improvement(spec)
                for spec in self.specs
                if spec != "dm"
            },
            title="Figure 8 — average % IPC improvement",
        )
        energy_chart = horizontal_bars(
            {
                spec: self.average_normalized_energy(spec)
                for spec in self.specs
                if spec != "dm"
            },
            unit="x",
            title="Figure 9 — average normalised energy (1.0 = baseline)",
        )
        return ipc_chart + "\n\n" + energy_chart

    def render(self) -> str:
        return (
            self.render_fig8()
            + "\n\n"
            + self.render_fig9()
            + "\n\n"
            + self.render_charts()
        )


def run(
    scale: ExperimentScale = DEFAULT,
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    specs: tuple[str, ...] = ("dm",) + FIGURE89_SPECS,
) -> PerfEnergyResult:
    """Run the Figure 8/9 study: one system simulation per (spec, bench)."""
    ipc: dict[str, dict[str, float]] = {spec: {} for spec in specs}
    energy: dict[str, dict[str, float]] = {spec: {} for spec in specs}
    config_energies: dict[str, ConfigEnergy] = {
        spec: access_energy_for(spec) for spec in specs
    }
    for benchmark in benchmarks:
        baseline_result = None
        activities: dict[str, RunActivity] = {}
        for spec in specs:
            result = run_system(spec, benchmark, scale)
            ipc[spec][benchmark] = result.ipc
            activities[spec] = _activity(result, spec)
            if spec == "dm":
                baseline_result = result
        assert baseline_result is not None
        baseline_model = SystemEnergyModel(
            l1i=config_energies["dm"], l1d=config_energies["dm"]
        )
        static_per_cycle = baseline_model.static_pj_per_cycle_for_baseline(
            activities["dm"]
        )
        for spec in specs:
            model = SystemEnergyModel(
                l1i=config_energies[spec], l1d=config_energies[spec]
            )
            report = model.report(activities[spec], static_per_cycle)
            energy[spec][benchmark] = report.total_pj
    return PerfEnergyResult(
        specs=tuple(specs),
        benchmarks=tuple(benchmarks),
        ipc=ipc,
        energy=energy,
    )
