"""Markdown report generation: run experiments, emit one document.

``bcache-repro`` prints tables to stdout; this module packages the same
results into a single timestamp-free markdown report (suitable for
committing next to EXPERIMENTS.md or diffing between runs)::

    from repro.experiments.report import write_report
    write_report("report.md", scale=SMOKE)

The experiment registry is injectable so tests can run a stub subset.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Mapping

from repro.experiments.common import DEFAULT, ExperimentScale

Renderer = Callable[[ExperimentScale], str]


def default_registry() -> Mapping[str, Renderer]:
    """The full experiment registry (same ids as the CLI).

    CLI renderers take engine options (worker count, resume id); the
    report protocol stays single-argument, so defaults are bound here.
    """
    from repro.cli import EXPERIMENTS, RunOptions

    opts = RunOptions()
    return {
        name: (lambda scale, _fn=fn: _fn(scale, opts))
        for name, fn in EXPERIMENTS.items()
    }


#: Section headers per experiment id, in report order.
_SECTIONS: tuple[tuple[str, str], ...] = (
    ("tab1", "Table 1 — decoder timing"),
    ("tab2", "Table 2 — storage cost"),
    ("tab3", "Table 3 — energy per access"),
    ("fig3", "Figure 3 — wupwise MF sweep"),
    ("fig4", "Figure 4 — D$ miss-rate reductions"),
    ("fig5", "Figure 5 — I$ miss-rate reductions"),
    ("fig8", "Figure 8 — IPC"),
    ("fig9", "Figure 9 — energy"),
    ("fig12", "Figure 12 — 8/32 kB study"),
    ("tab56", "Tables 5–6 — MF x BAS tradeoff"),
    ("tab7", "Table 7 — set balance"),
    ("hac", "Section 6.7 — HAC comparison"),
    ("prior-art", "Section 7.1 — prior art"),
    ("replacement", "Section 3.3 — replacement ablation"),
    ("latency", "Hit-latency / AMAT study"),
    ("3c", "3C miss decomposition"),
    ("addressing", "Section 6.8 — addressing"),
    ("drowsy", "Section 6.4 — drowsy leakage"),
    ("sensitivity", "Geometry sensitivity"),
)


def generate_report(
    scale: ExperimentScale = DEFAULT,
    experiments: Mapping[str, Renderer] | None = None,
    ids: tuple[str, ...] | None = None,
) -> str:
    """Render the selected experiments into one markdown document."""
    registry = experiments if experiments is not None else default_registry()
    selected = ids if ids is not None else tuple(
        name for name, _ in _SECTIONS if name in registry
    )
    titles = dict(_SECTIONS)
    parts = [
        "# B-Cache reproduction report",
        "",
        f"Scale: {scale.data_n} data / {scale.instr_n} instruction "
        f"references, {scale.instructions} instructions per benchmark, "
        f"seed {scale.seed}.",
        "",
    ]
    for name in selected:
        renderer = registry.get(name)
        if renderer is None:
            raise KeyError(f"unknown experiment {name!r}")
        parts.append(f"## {titles.get(name, name)}")
        parts.append("")
        parts.append("```")
        parts.append(renderer(scale))
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write_report(
    path: str | Path,
    scale: ExperimentScale = DEFAULT,
    experiments: Mapping[str, Renderer] | None = None,
    ids: tuple[str, ...] | None = None,
) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.write_text(generate_report(scale, experiments, ids))
    return path
