"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.1f}%"
