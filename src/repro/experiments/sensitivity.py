"""Design-space sensitivity sweeps beyond the paper's fixed points.

The paper fixes 32-byte lines and studies 8/16/32 kB capacities.  These
sweeps check that the B-Cache's advantage is not an artefact of that
geometry:

* ``run_line_size``  — 16/32/64-byte lines at 16 kB;
* ``run_cache_size`` — 4 kB to 64 kB at 32-byte lines (a superset of
  the paper's Figure 12 range).

Each point reports the direct-mapped baseline miss rate and the
reductions of the 4-way, 8-way and B-Cache organisations, averaged
over a benchmark subset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches import make_cache
from repro.experiments.common import DEFAULT, ExperimentScale, data_addresses
from repro.experiments.reporting import format_table
from repro.stats.summary import average_reduction, miss_rate_reduction

SWEEP_SPECS = ("4way", "8way", "mf8_bas8")
SWEEP_BENCHMARKS = ("equake", "crafty", "gzip", "mcf", "twolf", "mesa")


@dataclass(frozen=True)
class SweepPoint:
    label: str
    baseline_miss_rate: float
    reductions: dict[str, float]


@dataclass(frozen=True)
class SensitivityResult:
    axis: str
    points: tuple[SweepPoint, ...]

    def render(self) -> str:
        rows = []
        for point in self.points:
            row: list[object] = [point.label, 100.0 * point.baseline_miss_rate]
            row.extend(100.0 * point.reductions[s] for s in SWEEP_SPECS)
            rows.append(row)
        return format_table(
            [self.axis, "DM miss%"] + [f"{s} red%" for s in SWEEP_SPECS],
            rows,
            title=f"Sensitivity sweep over {self.axis}",
        )

    def reduction_series(self, spec: str) -> list[float]:
        return [point.reductions[spec] for point in self.points]


def _measure_point(
    label: str,
    size: int,
    line_size: int,
    scale: ExperimentScale,
    benchmarks: tuple[str, ...],
) -> SweepPoint:
    baselines = []
    reductions: dict[str, list[float]] = {spec: [] for spec in SWEEP_SPECS}
    for benchmark in benchmarks:
        addresses = data_addresses(benchmark, scale.data_n, scale.seed)
        dm = make_cache("dm", size=size, line_size=line_size)
        for address in addresses:
            dm.access(address)
        baselines.append(dm.miss_rate)
        for spec in SWEEP_SPECS:
            cache = make_cache(spec, size=size, line_size=line_size)
            for address in addresses:
                cache.access(address)
            reductions[spec].append(
                miss_rate_reduction(dm.miss_rate, cache.miss_rate)
            )
    return SweepPoint(
        label=label,
        baseline_miss_rate=average_reduction(baselines),
        reductions={
            spec: average_reduction(values) for spec, values in reductions.items()
        },
    )


def run_line_size(
    scale: ExperimentScale = DEFAULT,
    line_sizes: tuple[int, ...] = (16, 32, 64),
    size: int = 16 * 1024,
    benchmarks: tuple[str, ...] = SWEEP_BENCHMARKS,
) -> SensitivityResult:
    """Sweep the line size at fixed capacity."""
    points = tuple(
        _measure_point(f"{line}B", size, line, scale, benchmarks)
        for line in line_sizes
    )
    return SensitivityResult(axis="line size", points=points)


def run_cache_size(
    scale: ExperimentScale = DEFAULT,
    sizes: tuple[int, ...] = (4, 8, 16, 32, 64),
    line_size: int = 32,
    benchmarks: tuple[str, ...] = SWEEP_BENCHMARKS,
) -> SensitivityResult:
    """Sweep the capacity (sizes in kB) at fixed line size."""
    points = tuple(
        _measure_point(f"{kb}kB", kb * 1024, line_size, scale, benchmarks)
        for kb in sizes
    )
    return SensitivityResult(axis="cache size", points=points)
