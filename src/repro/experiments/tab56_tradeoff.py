"""Tables 5 and 6 — MF x BAS design tradeoff for a fixed PD length.

Section 6.3: for a given PD length (``log2(MF) + log2(BAS)`` bits) two
designs compete — A maximises clusters (high BAS), B maximises the
mapping factor (high MF).  The paper finds B wins below PD = 6 (its
lower PD hit rate frees the replacement policy) while A wins at PD = 6
(both PD hit rates are low, so cluster count dominates) — which is why
the headline design is MF = 8, BAS = 8.

Table 5 reports the miss-rate reduction and Table 6 the PD hit rate
during misses, each averaged over the benchmark suite, for
MF in {2,4,8,16} x BAS in {4,8}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT, ExperimentScale, run_side
from repro.experiments.reporting import format_table
from repro.stats.summary import average_reduction, miss_rate_reduction
from repro.workloads.spec2k import ALL_BENCHMARKS

MF_VALUES = (2, 4, 8, 16)
BAS_VALUES = (4, 8)


@dataclass(frozen=True)
class TradeoffCell:
    mapping_factor: int
    associativity: int
    pd_bits: int
    reduction: float
    pd_hit_rate: float


@dataclass(frozen=True)
class Tab56Result:
    cells: tuple[TradeoffCell, ...]

    def cell(self, mf: int, bas: int) -> TradeoffCell:
        for cell in self.cells:
            if cell.mapping_factor == mf and cell.associativity == bas:
                return cell
        raise KeyError((mf, bas))

    def render(self) -> str:
        header = ["BAS \\ MF"] + [f"MF={mf}" for mf in MF_VALUES]
        red_rows = []
        pd_rows = []
        for bas in BAS_VALUES:
            red_rows.append(
                [f"BAS={bas}"]
                + [100.0 * self.cell(mf, bas).reduction for mf in MF_VALUES]
            )
            pd_rows.append(
                [f"BAS={bas}"]
                + [100.0 * self.cell(mf, bas).pd_hit_rate for mf in MF_VALUES]
            )
        pd_len_rows = [
            [f"BAS={bas}"] + [self.cell(mf, bas).pd_bits for mf in MF_VALUES]
            for bas in BAS_VALUES
        ]
        return (
            format_table(header, red_rows, title="Table 5: % miss-rate reduction")
            + "\n\n"
            + format_table(header, pd_rows, title="Table 6: PD hit rate during misses (%)")
            + "\n\n"
            + format_table(header, pd_len_rows, title="PD length (bits) per design point")
        )


def run(
    scale: ExperimentScale = DEFAULT,
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
) -> Tab56Result:
    """Measure the Table 5/6 grid on the data cache."""
    cells = []
    baselines = {
        benchmark: run_side("dm", benchmark, "data", scale).miss_rate
        for benchmark in benchmarks
    }
    for bas in BAS_VALUES:
        for mf in MF_VALUES:
            reductions = []
            pd_rates = []
            for benchmark in benchmarks:
                stats = run_side(f"mf{mf}_bas{bas}", benchmark, "data", scale)
                reductions.append(
                    miss_rate_reduction(baselines[benchmark], stats.miss_rate)
                )
                pd_rates.append(stats.pd_hit_rate_during_miss)
            pd_bits = (mf.bit_length() - 1) + (bas.bit_length() - 1)
            cells.append(
                TradeoffCell(
                    mapping_factor=mf,
                    associativity=bas,
                    pd_bits=pd_bits,
                    reduction=average_reduction(reductions),
                    pd_hit_rate=average_reduction(pd_rates),
                )
            )
    return Tab56Result(cells=tuple(cells))
