"""Table 7 — data-cache set-usage balance, baseline vs B-Cache.

Section 6.4's classification: frequent-hit sets (hits > 2x the per-set
average), frequent-miss sets (misses > 2x average) and less-accessed
sets (accesses < half the average).  The paper's findings, which the
assertions in ``benchmarks/test_tab7_balance.py`` check:

* the share of hits held by frequent-hit sets drops (57.2 % -> 39.8 %);
* frequent-miss sets shrink (5.6 % -> 2.2 % of sets) and the misses
  they absorb collapse (36.5 % -> 15.7 %);
* fewer sets are left idle (50.2 % -> 32.4 % less-accessed);
* art/lucas/swim/mcf have no frequent-miss sets — their misses are
  uniform, so no organisation helps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT, ExperimentScale, run_side
from repro.experiments.reporting import format_table
from repro.stats.balance import BalanceReport, analyze_balance
from repro.workloads.spec2k import ALL_BENCHMARKS


@dataclass(frozen=True)
class BalanceRow:
    benchmark: str
    baseline: BalanceReport
    bcache: BalanceReport


@dataclass(frozen=True)
class Tab7Result:
    rows: tuple[BalanceRow, ...]

    def averages(self) -> tuple[BalanceReport, BalanceReport]:
        """Average the per-benchmark classifications (paper's Ave row)."""

        def mean_report(reports: list[BalanceReport]) -> BalanceReport:
            n = len(reports)
            return BalanceReport(
                frequent_hit_sets=sum(r.frequent_hit_sets for r in reports) / n,
                frequent_hit_share=sum(r.frequent_hit_share for r in reports) / n,
                frequent_miss_sets=sum(r.frequent_miss_sets for r in reports) / n,
                frequent_miss_share=sum(r.frequent_miss_share for r in reports) / n,
                less_accessed_sets=sum(r.less_accessed_sets for r in reports) / n,
                less_accessed_share=sum(r.less_accessed_share for r in reports) / n,
            )

        return (
            mean_report([row.baseline for row in self.rows]),
            mean_report([row.bcache for row in self.rows]),
        )

    def render(self) -> str:
        headers = (
            "benchmark", "org",
            "fhs%", "ch%", "fms%", "cm%", "las%", "tca%",
        )
        table_rows: list[list[object]] = []
        for row in self.rows:
            table_rows.append(
                [row.benchmark, "dm", *row.baseline.as_percent_row()]
            )
            table_rows.append(["", "bc", *row.bcache.as_percent_row()])
        base_ave, bc_ave = self.averages()
        table_rows.append(["Ave", "dm", *base_ave.as_percent_row()])
        table_rows.append(["", "bc", *bc_ave.as_percent_row()])
        return format_table(
            headers,
            table_rows,
            title=(
                "Table 7: D$ set-usage (fhs=frequent-hit sets, ch=their hits; "
                "fms=frequent-miss sets, cm=their misses; las=less-accessed "
                "sets, tca=their accesses)"
            ),
        )


def run(
    scale: ExperimentScale = DEFAULT,
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    bcache_spec: str = "mf8_bas8",
) -> Tab7Result:
    """Measure Table 7's per-set usage on baseline and B-Cache."""
    rows = []
    for benchmark in benchmarks:
        baseline_stats = run_side("dm", benchmark, "data", scale)
        bcache_stats = run_side(bcache_spec, benchmark, "data", scale)
        rows.append(
            BalanceRow(
                benchmark=benchmark,
                baseline=analyze_balance(baseline_stats),
                bcache=analyze_balance(bcache_stats),
            )
        )
    return Tab7Result(rows=tuple(rows))
