"""Two-level memory hierarchy (L1I/L1D + unified L2 + memory)."""

from repro.hierarchy.levels import CacheLevel, TimedAccess
from repro.hierarchy.memory_system import HierarchyStats, MemoryHierarchy

__all__ = ["CacheLevel", "HierarchyStats", "MemoryHierarchy", "TimedAccess"]
