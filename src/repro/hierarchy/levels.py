"""Latency-annotated cache levels.

Wraps a :class:`repro.caches.base.Cache` with hit latency and the
extra-cycle bookkeeping some organisations need (victim buffer probes,
column-associative second probes) so the timing model can charge the
multi-cycle hits the paper penalises prior art for (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.base import AccessResult, Cache
from repro.caches.column_associative import ColumnAssociativeCache
from repro.caches.victim import VictimBufferCache
from repro.stats.counters import CacheStats


@dataclass(frozen=True, slots=True)
class TimedAccess:
    """Cache access outcome annotated with the cycles it consumed."""

    result: AccessResult
    latency: int


class CacheLevel:
    """One level of the hierarchy: a cache plus its timing contract.

    Args:
        cache: the underlying organisation.
        hit_latency: cycles for a normal (fast-path) hit.
        slow_hit_extra: additional cycles for slow-path hits (victim
            buffer swap-ins, column-associative second probes).  The
            B-Cache and plain caches have no slow path — "the B-Cache
            requires only one cycle to access all cache hits"
            (Section 1).
    """

    def __init__(self, cache: Cache, hit_latency: int = 1, slow_hit_extra: int = 1) -> None:
        if hit_latency < 1:
            raise ValueError("hit_latency must be >= 1")
        self.cache = cache
        self.hit_latency = hit_latency
        self.slow_hit_extra = slow_hit_extra
        self.slow_hits = 0

    def _is_slow_hit(self, before: tuple[int, ...], result: AccessResult) -> bool:
        if not result.hit:
            return False
        cache = self.cache
        if isinstance(cache, VictimBufferCache):
            return cache.victim_hits > before[0]
        if isinstance(cache, ColumnAssociativeCache):
            return cache.second_probe_hits > before[1]
        return False

    def access(self, address: int, is_write: bool = False) -> TimedAccess:
        """Access the level, returning the outcome and cycles spent here.

        A miss costs the full hit latency too (the probe that discovers
        the miss); the next level's latency is added by the hierarchy.
        """
        cache = self.cache
        before = (
            getattr(cache, "victim_hits", 0),
            getattr(cache, "second_probe_hits", 0),
        )
        result = cache.access(address, is_write)
        latency = self.hit_latency
        if self._is_slow_hit(before, result):
            latency += self.slow_hit_extra
            self.slow_hits += 1
        return TimedAccess(result=result, latency=latency)

    @property
    def stats(self) -> CacheStats:
        """The wrapped cache's statistics."""
        return self.cache.stats

    def flush(self) -> None:
        """Invalidate the level and reset its slow-hit counter."""
        self.cache.flush()
        self.slow_hits = 0
