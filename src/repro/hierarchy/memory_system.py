"""Two-level memory hierarchy matching the paper's Table 4.

* L1: separate 16 kB instruction and data caches (any organisation),
  1-cycle hits, 32 B lines.
* L2: unified 256 kB 4-way LRU, 128 B lines, 6-cycle hits.
* Main memory: infinite, 100-cycle access.

The hierarchy is trace-driven: each L1 miss probes the L2; each L2
miss pays the memory latency.  Dirty evictions are written back to the
next level (writebacks update L2/memory state but are not charged to
the access latency, modelling buffered write-backs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.caches.base import Cache
from repro.caches.set_associative import SetAssociativeCache
from repro.hierarchy.levels import CacheLevel
from repro.trace.access import Access


@dataclass(slots=True)
class HierarchyStats:
    """Access/latency accounting over a whole trace."""

    instructions: int = 0
    ifetches: int = 0
    data_accesses: int = 0
    l1i_misses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    memory_accesses: int = 0
    total_latency: int = 0

    @property
    def l1i_miss_rate(self) -> float:
        """Instruction-cache misses per instruction fetch."""
        return self.l1i_misses / self.ifetches if self.ifetches else 0.0

    @property
    def l1d_miss_rate(self) -> float:
        """Data-cache misses per data reference."""
        return self.l1d_misses / self.data_accesses if self.data_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """L2 misses per L2 access (demand plus writeback traffic)."""
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0


class MemoryHierarchy:
    """L1I + L1D over a unified L2 over main memory."""

    def __init__(
        self,
        l1i: Cache,
        l1d: Cache,
        l2: Cache | None = None,
        l1_hit_latency: int = 1,
        l2_hit_latency: int = 6,
        memory_latency: int = 100,
        slow_hit_extra: int = 1,
    ) -> None:
        if l2 is None:
            l2 = SetAssociativeCache(
                256 * 1024, line_size=128, ways=4, policy="lru", name="L2-256kB-4way"
            )
        self.l1i = CacheLevel(l1i, l1_hit_latency, slow_hit_extra)
        self.l1d = CacheLevel(l1d, l1_hit_latency, slow_hit_extra)
        self.l2 = CacheLevel(l2, l2_hit_latency)
        self.memory_latency = memory_latency
        self.stats = HierarchyStats()

    # ------------------------------------------------------------------
    def _access_l2(self, address: int, is_write: bool) -> int:
        """Probe L2 (and memory on miss); returns cycles below L1."""
        self.stats.l2_accesses += 1
        timed = self.l2.access(address, is_write)
        latency = timed.latency
        if not timed.result.hit:
            self.stats.l2_misses += 1
            self.stats.memory_accesses += 1
            latency += self.memory_latency
        # L2's dirty victims go to memory; no extra latency charged
        # (write buffers), but the traffic is counted for energy.
        if timed.result.evicted is not None and timed.result.evicted_dirty:
            self.stats.memory_accesses += 1
        return latency

    def _access_l1(self, level: CacheLevel, address: int, is_write: bool) -> int:
        timed = level.access(address, is_write)
        latency = timed.latency
        if not timed.result.hit:
            latency += self._access_l2(address, False)
        if timed.result.evicted is not None and timed.result.evicted_dirty:
            # Write the dirty victim back into L2 (state only).
            self.stats.l2_accesses += 1
            writeback = self.l2.access(timed.result.evicted, True)
            if not writeback.result.hit:
                self.stats.l2_misses += 1
                self.stats.memory_accesses += 1
            if writeback.result.evicted is not None and writeback.result.evicted_dirty:
                self.stats.memory_accesses += 1
        return latency

    # ------------------------------------------------------------------
    def fetch_instruction(self, address: int) -> int:
        """Instruction fetch; returns total cycles to first use."""
        self.stats.ifetches += 1
        self.stats.instructions += 1
        latency = self._access_l1(self.l1i, address, False)
        self.stats.total_latency += latency
        return latency

    def access_data(self, address: int, is_write: bool = False) -> int:
        """Data reference; returns total cycles to completion."""
        self.stats.data_accesses += 1
        latency = self._access_l1(self.l1d, address, is_write)
        self.stats.total_latency += latency
        return latency

    def run(self, trace: Iterable[Access]) -> HierarchyStats:
        """Run a combined trace (ifetches + data references)."""
        for access in trace:
            if access.is_instruction:
                self.fetch_instruction(access.address)
            else:
                self.access_data(access.address, access.is_write)
        self._sync_miss_counts()
        return self.stats

    def _sync_miss_counts(self) -> None:
        self.stats.l1i_misses = self.l1i.cache.stats.misses
        self.stats.l1d_misses = self.l1d.cache.stats.misses

    def flush(self) -> None:
        """Invalidate every level and reset the hierarchy statistics."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.stats = HierarchyStats()
