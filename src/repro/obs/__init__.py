"""repro.obs — unified telemetry: metrics, spans, exposition, bcache-top.

A dependency-free observability layer shared by every subsystem:

* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram in a
  :class:`MetricsRegistry`, with cross-process delta forwarding;
* :mod:`repro.obs.exposition` — Prometheus text format writer/parser;
* :mod:`repro.obs.events` — ``span``/``emit`` tracing onto a crash-safe
  JSONL event log, tiered by ``REPRO_OBS=off|events|full``;
* :mod:`repro.obs.instrument` — the pre-named hooks hot paths call;
* :mod:`repro.obs.tracectx` — deterministic distributed trace contexts
  (W3C ``traceparent``, head sampling keyed by ``hash(trace_id)``);
* :mod:`repro.obs.traceview` — the ``bcache-trace`` waterfall analyzer;
* :mod:`repro.obs.top` — the live ``bcache-top`` sweep monitor.

This package is a leaf: it must not import ``repro.caches``,
``repro.engine`` or ``repro.serve`` (they all import it).
"""

from repro.obs.events import (
    EventLog,
    configure,
    emit,
    emit_raw,
    enabled,
    log_to,
    metrics_enabled,
    mode,
    read_events,
    reset,
    span,
    tail_events,
)
from repro.obs.tracectx import (
    TraceContext,
    mint_trace_id,
    sample_rate,
    sampled_for,
)
from repro.obs.tracectx import current as current_trace
from repro.obs.tracectx import use as use_trace
from repro.obs.exposition import CONTENT_TYPE, parse_text, render
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "TraceContext",
    "configure",
    "current_trace",
    "default_registry",
    "emit",
    "emit_raw",
    "enabled",
    "log_to",
    "metrics_enabled",
    "mint_trace_id",
    "mode",
    "parse_text",
    "read_events",
    "render",
    "reset",
    "sample_rate",
    "sampled_for",
    "set_default_registry",
    "span",
    "tail_events",
    "use_trace",
]
