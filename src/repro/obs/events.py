"""Tracing events: spans, a crash-safe JSONL event log, REPRO_OBS tiers.

Telemetry is tiered by the ``REPRO_OBS`` environment variable so the
tier-1 test suite (and any latency-sensitive caller) pays nothing:

========  ============================================================
tier      behaviour
========  ============================================================
``off``   (default) spans and events are no-ops — one mode check each
``events``  spans/events are appended to the JSONL event log
``full``  events **plus** metrics recording (see ``repro.obs.metrics``)
========  ============================================================

The event log is a plain JSONL file (one JSON object per line, each
line written with a single ``write`` on an ``O_APPEND`` handle, flushed
immediately).  That makes it *crash-safe the same way the resilience
journal is*: a crash can tear at most the final line, and the readers
(:func:`read_events` / :func:`tail_events`) skip a torn tail instead of
failing — ``bcache-top`` keeps rendering through a dying run.  Multiple
processes (the sweep supervisor and its workers) may append to the same
log; per-line appends keep records intact.

Spans are context managers only (lint rule BCL012)::

    with span("engine.sweep", jobs=26):
        ...

Each span emits one event on exit carrying the monotonic start, the
duration, the pid, and whether the body raised.  Point events go
through :func:`emit`.

Spans join a distributed trace by threading a
:class:`~repro.obs.tracectx.TraceContext`::

    with span("serve.request", trace=ctx) as child:
        ...  # child is ctx.child("serve.request"); nested spans that
             # pass trace=tracectx.current() parent under it

A traced span's event additionally carries ``trace_id``/``span_id``/
``parent_id``, which is everything ``bcache-trace`` needs to rebuild
the request waterfall.  An unsampled context disables recording for
that span (the body still runs, the ids are simply not logged).
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro.obs import tracectx
from repro.obs.tracectx import TraceContext

log = logging.getLogger("repro.obs")

ENV_MODE = "REPRO_OBS"
ENV_LOG = "REPRO_OBS_LOG"

MODES = ("off", "events", "full")


def default_log_path() -> Path:
    """Event-log path: ``$REPRO_OBS_LOG`` or the run root's ``events.jsonl``.

    Mirrors the resilience journal's root resolution
    (``$REPRO_RUN_ROOT`` → ``~/.cache/bcache-repro/runs``) without
    importing the engine — obs must stay a leaf dependency.
    """
    env = os.environ.get(ENV_LOG)
    if env:
        return Path(env)
    run_root = os.environ.get("REPRO_RUN_ROOT")
    if run_root:
        return Path(run_root) / "events.jsonl"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path("~/.cache").expanduser()
    return base / "bcache-repro" / "runs" / "events.jsonl"


class EventLog:
    """Append-only JSONL event sink (crash-safe, multi-process friendly)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.emitted = 0
        self.dropped = 0
        self._handle: BinaryIO | None = None

    def _ensure_open(self) -> BinaryIO:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # O_APPEND + one write() per line keeps concurrent writers'
            # records whole; buffering=0 makes each line durable-ish
            # immediately (no interpreter-level buffering to tear).
            self._handle = open(self.path, "ab", buffering=0)
        return self._handle

    def emit(self, name: str, **fields: Any) -> None:
        """Append one event; never raises (telemetry must not kill work)."""
        record = {
            "name": name,
            "t": round(time.time(), 6),
            "mono": round(time.monotonic(), 6),
            "pid": os.getpid(),
            **fields,
        }
        self.emit_record(record)

    def emit_record(self, record: dict[str, Any]) -> None:
        """Append a pre-built record verbatim; never raises."""
        try:
            line = json.dumps(record, separators=(",", ":"), default=str)
            self._write_line(line.encode("utf-8") + b"\n")
            self.emitted += 1
        except (OSError, ValueError, TypeError) as exc:
            self.dropped += 1
            if self.dropped == 1:  # warn once, not once per event
                log.warning("event log %s: dropping events (%s)", self.path, exc)

    def _write_line(self, data: bytes) -> None:
        """One whole line per ``write``; finish short writes immediately.

        Concurrent appenders rely on O_APPEND making each ``write(2)``
        land contiguously; an unbuffered ``FileIO.write`` may still
        return short (signal delivery, near-full disk), and stopping
        there would leave a torn *head* that a neighbour's line then
        splices into — corrupting two records, not one.  Retrying the
        remainder immediately bounds the damage to this line, which the
        torn/corrupt-tolerant readers already skip.
        """
        handle = self._ensure_open()
        written = handle.write(data)
        while written is not None and written < len(data):
            data = data[written:]
            written = handle.write(data)

    def close(self) -> None:
        if self._handle is not None:
            with contextlib.suppress(OSError):
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Process-wide state
# ----------------------------------------------------------------------
@dataclass
class _ObsState:
    mode: str
    log_path: Path
    log: EventLog | None = None

    def sink(self) -> EventLog:
        if self.log is None:
            self.log = EventLog(self.log_path)
        return self.log


_STATE: _ObsState | None = None


def _state() -> _ObsState:
    global _STATE
    if _STATE is None:
        raw = os.environ.get(ENV_MODE, "off").strip().lower()
        mode = raw if raw in MODES else ("off" if raw in ("", "0", "no") else "off")
        if raw and raw not in MODES and raw not in ("", "0", "no"):
            log.warning("%s=%r is not one of %s; treating as 'off'",
                        ENV_MODE, raw, "/".join(MODES))
        _STATE = _ObsState(mode=mode, log_path=default_log_path())
    return _STATE


def mode() -> str:
    """The active tier: ``off``, ``events`` or ``full``."""
    return _state().mode


def enabled() -> bool:
    """Are events being recorded at all (tier ``events`` or ``full``)?"""
    return _state().mode != "off"


def metrics_enabled() -> bool:
    """Is metric recording on (tier ``full``)?

    Service-level metrics in ``repro.serve`` are always on (a server is
    an instrumented process by definition); this gate covers library
    hot paths — kernel timings, trace-store counters, engine jobs.
    """
    return _state().mode == "full"


def configure(mode: str | None = None, log_path: str | Path | None = None) -> None:
    """Override the env-derived tier and/or event-log path.

    Passing ``None`` for either keeps its current value.  Used by CLI
    flags (``--obs-log``), worker-process initializers and tests.
    """
    state = _state()
    if mode is not None:
        if mode not in MODES:
            raise ValueError(f"obs mode must be one of {MODES}, got {mode!r}")
        state.mode = mode
    if log_path is not None:
        new_path = Path(log_path)
        if new_path != state.log_path:
            if state.log is not None:
                state.log.close()
            state.log = None
            state.log_path = new_path


def reset() -> None:
    """Drop the override state; the next call re-reads the environment."""
    global _STATE
    if _STATE is not None and _STATE.log is not None:
        _STATE.log.close()
    _STATE = None


def active_log_path() -> Path:
    """Where events currently go (whether or not the file exists yet)."""
    return _state().log_path


@contextlib.contextmanager
def log_to(path: str | Path) -> Iterator[None]:
    """Temporarily route events to ``path`` (no-op while tier is off).

    The resilient sweep supervisor wraps each journaled run in this so
    the event log lands beside ``journal.jsonl`` in the run directory.
    """
    state = _state()
    if state.mode == "off":
        yield
        return
    previous_path, previous_log = state.log_path, state.log
    state.log_path, state.log = Path(path), None
    try:
        yield
    finally:
        if state.log is not None:
            state.log.close()
        state.log_path, state.log = previous_path, previous_log


def emit(name: str, **fields: Any) -> None:
    """Record one point event (no-op while the tier is ``off``)."""
    state = _state()
    if state.mode == "off":
        return
    state.sink().emit(name, **fields)


def emit_raw(record: dict[str, Any]) -> None:
    """Append one pre-built event record verbatim (no-op while off).

    The cross-process span merge path: shard workers build complete
    span records — their own ``t``/``mono``/``pid`` — buffer them, and
    ship them back with the batch response; the parent writes them here
    unchanged, so the merged log reads as if the worker had appended
    directly.  Junk (non-dict, no ``name``) is dropped silently, the
    same contract as :meth:`EventLog.emit`.
    """
    state = _state()
    if state.mode == "off":
        return
    if not isinstance(record, dict) or not record.get("name"):
        return
    state.sink().emit_record(record)


@contextlib.contextmanager
def span(
    name: str, *, trace: TraceContext | None = None, **attrs: Any
) -> Iterator[TraceContext | None]:
    """Time a block; emit one event on exit with duration and outcome.

    Must be used in context-manager form (``with span(...):`` — rule
    BCL012); manual ``__enter__`` calls leak the frame on error paths.

    When ``trace`` is a sampled :class:`TraceContext`, the span becomes
    a child of it: the yielded value is the child context (also made
    ambient via :func:`repro.obs.tracectx.current` for the body), and
    the emitted event carries ``trace_id``/``span_id``/``parent_id``.
    An unsampled context suppresses the event entirely (the sampling
    verdict is a pure function of the trace id, so every hop agrees).
    """
    state = _state()
    if trace is not None and not trace.sampled:
        yield None
        return
    if state.mode == "off":
        yield None
        return
    child = trace.child(name) if trace is not None else None
    if child is not None:
        attrs = {
            "trace_id": child.trace_id,
            "span_id": child.span_id,
            "parent_id": child.parent_id,
            **attrs,
        }
    scope = tracectx.use(child) if child is not None else contextlib.nullcontext()
    start = time.monotonic()
    try:
        with scope:
            yield child
    except BaseException:
        state.sink().emit(
            name, dur_s=round(time.monotonic() - start, 6), ok=False, **attrs
        )
        raise
    state.sink().emit(
        name, dur_s=round(time.monotonic() - start, 6), ok=True, **attrs
    )


# ----------------------------------------------------------------------
# Reading (bcache-top, tests, post-hoc analysis)
# ----------------------------------------------------------------------
def tail_events(
    path: str | Path, offset: int = 0
) -> tuple[list[dict[str, Any]], int]:
    """Events appended since ``offset``; returns ``(events, new_offset)``.

    Torn-tail tolerant: a final line without a trailing newline (a
    writer died mid-append, or is mid-append right now) is *not*
    consumed — the offset stays before it, so the next call rereads it
    once it is complete.  Complete-but-corrupt lines are skipped and
    their bytes consumed.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return [], offset
    events: list[dict[str, Any]] = []
    consumed = 0
    while True:
        newline = data.find(b"\n", consumed)
        if newline < 0:
            break  # torn tail (or empty remainder): do not consume
        line = data[consumed:newline]
        consumed = newline + 1
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue  # corrupt line: skip, but its bytes are consumed
        if isinstance(payload, dict):
            events.append(payload)
    return events, offset + consumed


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Every complete, well-formed event in the log (torn tail skipped)."""
    events, _ = tail_events(path, 0)
    return events
