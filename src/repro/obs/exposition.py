"""Prometheus text exposition (version 0.0.4): writer and parser.

:func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry` into
the classic text format (``# HELP`` / ``# TYPE`` comments, one sample
per line, histogram ``_bucket``/``_sum``/``_count`` expansion with
cumulative ``le`` buckets).  :func:`parse_text` is the inverse, used by
the exposition round-trip tests and the CI obs-smoke job to *validate*
what the server scrapes out — a reproduction that exports telemetry
should also be able to check its own wire format.

Only the subset this repo emits is supported (no exemplars, no
timestamps, no escaped metric names), which keeps both directions
dependency-free and obviously correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelKey,
    MetricsRegistry,
)

#: Content-Type an HTTP scrape endpoint should answer with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ExpositionError(ValueError):
    """The text being parsed is not valid Prometheus exposition format."""


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + inner + "}"


def render(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry:
        lines.append(f"# HELP {metric.name} {metric.help or metric.name}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels in sorted(metric.labelsets()):
                value = metric._values[labels]
                lines.append(
                    f"{metric.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels in sorted(metric.labelsets()):
                series = metric._series[labels]
                cumulative = 0
                for bound, count in zip(metric.buckets, series.bucket_counts):
                    cumulative += count
                    le = (("le", _format_value(bound)),)
                    lines.append(
                        f"{metric.name}_bucket{_format_labels(labels, le)} "
                        f"{cumulative}"
                    )
                cumulative += series.bucket_counts[-1]
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_format_labels(labels, (('le', '+Inf'),))} {cumulative}"
                )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(series.sum)}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} "
                    f"{series.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Parsing (round-trip validation and the CI scrape check)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Sample:
    """One exposition line: sample name, labels, numeric value."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass(slots=True)
class Family:
    """One metric family: its type/help plus every parsed sample."""

    name: str
    kind: str = "untyped"
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def sample_value(self, name: str | None = None, **labels: str) -> float:
        """The value of the sample matching ``name`` and ``labels`` exactly."""
        wanted = {str(k): str(v) for k, v in labels.items()}
        target = name or self.name
        for sample in self.samples:
            if sample.name == target and sample.labels == wanted:
                return sample.value
        raise KeyError(f"{target}{wanted!r} not found in family {self.name}")


def _parse_labels(text: str, line: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.find("=", i)
        if eq < 0 or i + 1 > len(text):
            raise ExpositionError(f"bad label pair in line: {line!r}")
        key = text[i:eq].strip().lstrip(",").strip()
        if not key.replace("_", "a").isalnum():
            raise ExpositionError(f"bad label name {key!r} in line: {line!r}")
        if eq + 1 >= len(text) or text[eq + 1] != '"':
            raise ExpositionError(f"unquoted label value in line: {line!r}")
        j = eq + 2
        raw = []
        while j < len(text):
            ch = text[j]
            if ch == "\\" and j + 1 < len(text):
                raw.append(text[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ExpositionError(f"unterminated label value in line: {line!r}")
        labels[key] = _unescape_label_value("".join(raw))
        i = j + 1
    return labels


def _parse_value(text: str, line: str) -> float:
    text = text.strip()
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as exc:
        raise ExpositionError(f"bad sample value in line: {line!r}") from exc


def _family_of(sample_name: str, families: dict[str, Family]) -> Family:
    for suffix in ("_bucket", "_sum", "_count"):
        base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
        if base and base in families and families[base].kind == "histogram":
            return families[base]
    if sample_name not in families:
        families[sample_name] = Family(sample_name)
    return families[sample_name]


def parse_text(text: str) -> dict[str, Family]:
    """Parse exposition text into ``{family name: Family}``.

    Raises :class:`ExpositionError` on malformed lines — the CI smoke
    job uses that as the format gate.
    """
    families: dict[str, Family] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, Family(name)).help = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ExpositionError(f"unknown metric type in line: {line!r}")
            families.setdefault(name, Family(name)).kind = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ExpositionError(f"unbalanced braces in line: {line!r}")
            sample_name = line[:brace].strip()
            labels = _parse_labels(line[brace + 1 : close], line)
            value = _parse_value(line[close + 1 :], line)
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ExpositionError(f"bad sample line: {line!r}")
            sample_name, labels = parts[0], {}
            value = _parse_value(parts[1], line)
        if not sample_name or not sample_name[0].isalpha() and sample_name[0] != "_":
            raise ExpositionError(f"bad sample name in line: {line!r}")
        family = _family_of(sample_name, families)
        family.samples.append(Sample(sample_name, labels, value))
    return families


def family_names(families: Iterable[Family] | dict[str, Family]) -> set[str]:
    """Convenience: the set of family names in a parse result."""
    if isinstance(families, dict):
        return set(families)
    return {family.name for family in families}
