"""Pre-named instrumentation hooks for the repo's hot paths.

The engine and cache layers call these tiny helpers instead of talking
to the registry directly, which keeps three properties in one place:

* **zero cost when off** — every helper begins with the tier check and
  returns immediately under ``REPRO_OBS=off`` (the tier-1 default);
* **a stable metric catalogue** — series names live here, not scattered
  across call sites, so ``docs/observability.md`` and the CI smoke
  assertions have a single source of truth;
* **no CacheStats coupling** — helpers only read values handed to them;
  simulation statistics stay bit-identical whatever the tier.

Timing helpers return the monotonic clock (or ``0.0`` when off) so hot
loops can skip the second clock read entirely when telemetry is off.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Any, Iterator

from repro.obs import events
from repro.obs.metrics import SIZE_BUCKETS, default_registry
from repro.obs.tracectx import TraceContext


def kernel_clock() -> float:
    """Monotonic timestamp for a kernel batch, or ``0.0`` while off.

    ``Cache.access_trace`` brackets each batch with ``kernel_clock()``
    … ``observe_kernel(...)``; a zero start tells ``observe_kernel`` to
    do nothing, so the off tier costs one function call and one
    comparison per *batch* (never per reference).
    """
    if not events.enabled():
        return 0.0
    return time.monotonic()


def observe_kernel(
    cache_name: str, refs: int, start: float, path: str = "stdlib"
) -> None:
    """Record one ``Cache.access_trace`` batch (paired with kernel_clock).

    ``path`` names the kernel flavour that ran ("stdlib" or "numpy") so
    a perf investigation can tell the two apart per batch.
    """
    if start == 0.0 or not events.enabled():
        return
    seconds = time.monotonic() - start
    events.emit("kernel.batch", cache=cache_name, refs=refs,
                dur_s=round(seconds, 6), path=path)
    if events.metrics_enabled():
        registry = default_registry()
        registry.histogram(
            "repro_kernel_batch_seconds",
            "Wall time of one Cache.access_trace batch",
        ).observe(seconds, cache=cache_name, path=path)
        registry.counter(
            "repro_kernel_batch_refs_total",
            "Memory references simulated by access_trace batches",
        ).inc(refs, cache=cache_name, path=path)


def trace_store_hit(tier: str, spec: str) -> None:
    """A trace was served from the store (``tier`` = memory|disk)."""
    if not events.enabled():
        return
    events.emit("trace_store.hit", tier=tier, spec=spec)
    if events.metrics_enabled():
        default_registry().counter(
            "repro_trace_store_hits_total",
            "Traces served from the store, by tier",
        ).inc(tier=tier)


def trace_store_miss(spec: str, seconds: float) -> None:
    """A trace had to be regenerated (cold store or quarantined blob)."""
    if not events.enabled():
        return
    events.emit("trace_store.miss", spec=spec, dur_s=round(seconds, 6))
    if events.metrics_enabled():
        registry = default_registry()
        registry.counter(
            "repro_trace_store_misses_total",
            "Traces regenerated because the store could not serve them",
        ).inc()
        registry.histogram(
            "repro_trace_store_regen_seconds",
            "Wall time spent regenerating a trace on a store miss",
        ).observe(seconds)


def trace_store_quarantined(spec: str, reason: str) -> None:
    """A corrupt blob was moved aside by the store's integrity check."""
    if not events.enabled():
        return
    events.emit("trace_store.quarantined", spec=spec, reason=reason)
    if events.metrics_enabled():
        default_registry().counter(
            "repro_trace_store_quarantined_total",
            "Corrupt trace blobs quarantined by the integrity check",
        ).inc()


def shm_segment(event: str, name: str, nbytes: int) -> None:
    """One shared-memory segment lifecycle step (export|attach|unlink|reap).

    The segment rides as ``segment=`` — ``name`` is the event-name
    parameter of :func:`events.emit` and would collide.
    """
    if not events.enabled():
        return
    events.emit(f"shm.{event}", segment=name, bytes=nbytes)
    if events.metrics_enabled():
        registry = default_registry()
        registry.counter(
            "repro_shm_segments_total",
            "Shared-memory trace segment operations, by lifecycle event",
        ).inc(event=event)
        if event == "export":
            registry.counter(
                "repro_shm_exported_bytes_total",
                "Bytes of trace data exported into shared-memory segments",
            ).inc(nbytes)


def job_event(state: str, key: str, *, benchmark: str = "",
              attempt: int = 0, **extra: object) -> None:
    """One engine job lifecycle transition (queued/running/retried/done/failed)."""
    if not events.enabled():
        return
    events.emit(f"job.{state}", key=key, benchmark=benchmark,
                attempt=attempt, **extra)
    if not events.metrics_enabled():
        return
    registry = default_registry()
    if state in ("done", "failed"):
        registry.counter(
            "repro_engine_jobs_total",
            "Sweep jobs finished, by final status",
        ).inc(status=state)
    elif state == "retried":
        registry.counter(
            "repro_engine_job_retries_total",
            "Sweep job attempts that were retried after a failure",
        ).inc()


def bench_iteration(spec: str, flavor: str, iteration: int,
                    seconds: float, refs: int) -> None:
    """One raw bcache-bench timing sample (satellite: root-causing deltas)."""
    if not events.enabled():
        return
    events.emit("bench.iteration", spec=spec, flavor=flavor,
                iteration=iteration, dur_s=round(seconds, 6), refs=refs)
    if events.metrics_enabled():
        default_registry().histogram(
            "repro_bench_iteration_seconds",
            "Raw per-iteration wall time of bcache-bench hot loops",
        ).observe(seconds, spec=spec, flavor=flavor)


# ----------------------------------------------------------------------
# Request-path stage attribution (tracing tentpole).  The histogram is
# always on — stages only exist inside serve/cluster processes, which
# are instrumented by definition — while the span events follow the
# REPRO_OBS tier and the context's sampling verdict.
# ----------------------------------------------------------------------
#: The stage taxonomy ``bcache-trace --stage-summary`` reports over.
STAGES = (
    "gateway",        # whole HTTP request at the gateway
    "gateway_parse",  # header/body parse + routing
    "serve_request",  # whole request inside the serve process
    "admission",      # rate-limit check + fair-queue wait
    "resultcache",    # memory-tier result-cache probe
    "singleflight",   # wait on the (possibly shared) execution
    "batch_window",   # gather-window wait inside the micro-batcher
    "shard",          # shard queue + worker round trip
    "kernel",         # execute_job inside the shard worker
    "serialize",      # response encode + socket write
    "cluster_node",   # one dispatched batch: node round trip
)


def _observe_stage(stage: str, seconds: float) -> None:
    default_registry().histogram(
        "repro_stage_seconds",
        "Request-path wall time attributed per pipeline stage",
    ).observe(seconds, stage=stage)


@contextlib.contextmanager
def stage_span(
    stage: str, *, trace: TraceContext | None = None, **attrs: Any
) -> Iterator[TraceContext | None]:
    """Time one pipeline stage: histogram always, span event when traced.

    Yields the child :class:`TraceContext` (or ``None`` when untraced /
    unsampled / tier off) so callers can forward it downstream.
    """
    start = time.monotonic()
    try:
        with events.span(f"stage.{stage}", trace=trace, stage=stage,
                         **attrs) as child:
            yield child
    finally:
        _observe_stage(stage, time.monotonic() - start)


def stage_event(
    stage: str,
    seconds: float,
    *,
    trace: TraceContext | None = None,
    **attrs: Any,
) -> None:
    """Record a stage measured retroactively (e.g. a batch-window wait).

    The emitted record's wall time is *now*, so readers recover the
    stage's start as ``t - dur_s`` — identical to a live span.
    """
    _observe_stage(stage, seconds)
    if not events.enabled():
        return
    if trace is not None:
        if not trace.sampled:
            return
        events.emit_raw(stage_record(stage, trace, seconds, **attrs))
    else:
        events.emit(f"stage.{stage}", stage=stage,
                    dur_s=round(seconds, 6), ok=True, **attrs)


def stage_record_for(
    stage: str, ctx: TraceContext, seconds: float, **attrs: Any
) -> dict[str, Any]:
    """A span record whose identity *is* ``ctx`` (pre-derived child).

    The micro-batcher derives the ``shard`` stage's context up front so
    it can hand it to the worker as the ``kernel`` span's parent, then
    emits the shard record itself once the round trip lands — this
    builds that record without deriving a second child.
    """
    _observe_stage(stage, seconds)
    return {
        "name": f"stage.{stage}",
        "t": round(time.time(), 6),
        "mono": round(time.monotonic(), 6),
        "pid": os.getpid(),
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
        "parent_id": ctx.parent_id,
        "stage": stage,
        "dur_s": round(seconds, 6),
        "ok": True,
        **attrs,
    }


def stage_record(
    stage: str, trace: TraceContext, seconds: float, **attrs: Any
) -> dict[str, Any]:
    """A complete span record for ``stage``, ready for cross-process merge.

    Shard workers call this at measurement time — capturing their own
    ``t``/``mono``/``pid`` — buffer the records, and return them with
    the batch response; the parent replays them via
    :func:`repro.obs.events.emit_raw`.  The matching
    ``repro_stage_seconds`` observation lands in the *caller's*
    registry, so in workers it rides the existing
    ``drain_deltas``/``merge_deltas`` metric path.
    """
    return stage_record_for(
        stage, trace.child(f"stage.{stage}"), seconds, **attrs
    )


# ----------------------------------------------------------------------
# Serve-layer series (always on: a server is an instrumented process)
# ----------------------------------------------------------------------
def serve_batch_observed(size: int, max_batch: int, shard: int) -> None:
    """One micro-batch dispatched: size plus gather-window occupancy."""
    registry = default_registry()
    registry.histogram(
        "repro_serve_batch_size",
        "Jobs per dispatched micro-batch",
        buckets=SIZE_BUCKETS,
    ).observe(float(size))
    registry.histogram(
        "repro_serve_window_occupancy",
        "Fraction of max_batch filled when the gather window closed",
    ).observe(size / max_batch if max_batch > 0 else 0.0)
    registry.counter(
        "repro_serve_batches_total",
        "Micro-batches dispatched, by shard",
    ).inc(shard=str(shard))


def serve_shard_restarted(shard: int) -> None:
    """A shard worker process was restarted by the pool's retry policy."""
    registry = default_registry()
    registry.counter(
        "repro_serve_shard_restarts_total",
        "Shard worker processes restarted after a crash or timeout",
    ).inc(shard=str(shard))
    events.emit("serve.shard_restart", shard=shard)


def serve_fallback_batch(shard: int) -> None:
    """A batch ran in-process because its shard kept dying on it."""
    registry = default_registry()
    registry.counter(
        "repro_serve_fallback_batches_total",
        "Batches degraded to in-process execution after shard restarts",
    ).inc(shard=str(shard))
    events.emit("serve.fallback_batch", shard=shard)


def serve_queue_depth(shard: int, depth: int) -> None:
    """Current number of batches waiting on or running in a shard."""
    default_registry().gauge(
        "repro_serve_queue_depth",
        "Batches in flight per shard worker",
    ).set(float(depth), shard=str(shard))


# ----------------------------------------------------------------------
# Result-cache series (always on: the memoized serving tier's hit
# ratio is the whole point, so it is never dark)
# ----------------------------------------------------------------------
def resultcache_lookup(tier: str) -> None:
    """One result-cache probe: ``tier`` = memory|disk on a hit, miss."""
    registry = default_registry()
    if tier == "miss":
        registry.counter(
            "repro_resultcache_misses_total",
            "Result-cache lookups that fell through to live execution",
        ).inc()
    else:
        registry.counter(
            "repro_resultcache_hits_total",
            "Result-cache lookups served from a cache tier",
        ).inc(tier=tier)


def resultcache_stored(count: int = 1) -> None:
    """Snapshots written through to the result cache."""
    default_registry().counter(
        "repro_resultcache_stores_total",
        "Snapshots written into the result cache",
    ).inc(count)


def resultcache_entries(count: int) -> None:
    """Current in-process LRU population."""
    default_registry().gauge(
        "repro_resultcache_entries",
        "Entries currently held by the in-process result-cache LRU",
    ).set(float(count))


def resultcache_evicted() -> None:
    """One LRU entry evicted to stay within the memory-tier budget."""
    default_registry().counter(
        "repro_resultcache_evictions_total",
        "Entries evicted from the in-process result-cache LRU",
    ).inc()


def resultcache_quarantined(entry: str, reason: str) -> None:
    """A corrupt disk entry was moved aside instead of served."""
    default_registry().counter(
        "repro_resultcache_quarantined_total",
        "Corrupt result-cache disk entries quarantined",
    ).inc()
    events.emit("resultcache.quarantined", entry=entry, reason=reason)


def resultcache_invalidated(dirs: int) -> None:
    """Stale fingerprint directories removed on engine change."""
    default_registry().counter(
        "repro_resultcache_invalidations_total",
        "Stale result-cache fingerprint directories pruned",
    ).inc(dirs)
    events.emit("resultcache.invalidated", dirs=dirs)


def resultcache_singleflight() -> None:
    """A request piggybacked on an in-flight identical execution."""
    default_registry().counter(
        "repro_resultcache_singleflight_total",
        "Requests that shared an in-flight identical execution",
    ).inc()


# ----------------------------------------------------------------------
# Admission-control series (always on, like the serve layer)
# ----------------------------------------------------------------------
def admission_shed(reason: str, client: str) -> None:
    """One request shed by admission control, by mechanism."""
    default_registry().counter(
        "repro_admission_shed_total",
        "Requests shed by admission control, by reason",
    ).inc(reason=reason)
    events.emit("admission.shed", reason=reason, client=client)


def admission_waited(seconds: float) -> None:
    """Time a request spent parked in the fair queue before its grant."""
    default_registry().histogram(
        "repro_admission_wait_seconds",
        "Seconds requests waited in the fair admission queue",
    ).observe(seconds)


# ----------------------------------------------------------------------
# Gateway series (always on: an HTTP front end is an instrumented
# process, and the gateway-smoke CI gate scrapes these)
# ----------------------------------------------------------------------
def gateway_request(route: str, code: int, seconds: float) -> None:
    """One HTTP request handled by ``bcache-gateway``."""
    registry = default_registry()
    registry.counter(
        "repro_gateway_requests_total",
        "HTTP requests handled by the gateway, by route and status",
    ).inc(route=route, code=str(code))
    registry.histogram(
        "repro_gateway_request_seconds",
        "Gateway HTTP request wall time",
    ).observe(seconds, route=route)


def gateway_streamed(results: int) -> None:
    """Partial sweep results streamed as NDJSON lines."""
    default_registry().counter(
        "repro_gateway_streamed_results_total",
        "Partial sweep results streamed to NDJSON clients",
    ).inc(results)


def gateway_backend_error(kind: str) -> None:
    """A backend round trip failed (connection, protocol, timeout)."""
    default_registry().counter(
        "repro_gateway_backend_errors_total",
        "Gateway-to-backend round trips that failed, by kind",
    ).inc(kind=kind)


# ----------------------------------------------------------------------
# Cluster-layer series (always on: a coordinator is an instrumented
# process, and the cluster-smoke CI gate reads these totals)
# ----------------------------------------------------------------------
def cluster_nodes_up(count: int) -> None:
    """Nodes currently dispatchable (not declared dead for the sweep)."""
    default_registry().gauge(
        "repro_cluster_nodes_up",
        "Cluster nodes currently dispatchable",
    ).set(float(count))


def cluster_steal(thief: str, victim: str, jobs: int) -> None:
    """An idle node speculatively re-dispatched a peer's in-flight jobs."""
    default_registry().counter(
        "repro_cluster_steals_total",
        "In-flight jobs speculatively stolen by idle nodes",
    ).inc(jobs, node=thief)
    events.emit("cluster.steal", thief=thief, victim=victim, jobs=jobs)


def cluster_redispatch(node: str, jobs: int) -> None:
    """A failed node's batch was re-queued for other nodes."""
    default_registry().counter(
        "repro_cluster_redispatch_total",
        "Jobs re-dispatched away from a failed or dead node",
    ).inc(jobs, node=node)
    events.emit("cluster.redispatch", node=node, jobs=jobs)


def cluster_job_served(node: str) -> None:
    """One job's result was merged from this node (first result wins)."""
    default_registry().counter(
        "repro_cluster_jobs_total",
        "Jobs completed by the cluster, by serving node",
    ).inc(node=node)


def cluster_duplicate(node: str) -> None:
    """A late duplicate result (lost steal race) was discarded."""
    default_registry().counter(
        "repro_cluster_duplicate_results_total",
        "Late duplicate results discarded by job_key dedup",
    ).inc(node=node)


def cluster_fallback(jobs: int) -> None:
    """Every node was down; this many jobs degraded to local execution."""
    default_registry().counter(
        "repro_cluster_fallback_jobs_total",
        "Jobs run locally in-process because every node was down",
    ).inc(jobs)
    events.emit("cluster.local_fallback", jobs=jobs)
