"""Dependency-free metrics primitives: Counter, Gauge, Histogram.

A :class:`MetricsRegistry` holds named metric families; every family
supports label sets (``counter.inc(1, shard="0")``), so one family
renders as many Prometheus series.  Names are validated against
``^repro_[a-z0-9_]+$`` (rule BCL012) at registration time — a typo'd
metric name fails fast instead of silently forking a new series.

Histograms use **fixed log-scale buckets** (geometric boundaries, see
:func:`log_buckets`): cache-kernel timings and batch sizes both span
orders of magnitude, where linear buckets waste resolution.  The
percentile estimate (:meth:`Histogram.approx_percentile`) reuses the
linear-interpolation rank math of :func:`repro.stats.latency.rank_position`
— the same estimator the load generator reports — applied to the
cumulative bucket counts.

Cross-process flow: worker processes accumulate into their own
process-wide registry, :meth:`MetricsRegistry.drain_deltas` snapshots
and resets it, and the parent folds the deltas into its registry via
:meth:`MetricsRegistry.merge_deltas` — this is how shard-worker
counters (trace-store hits, engine jobs) surface in the server's
``/metrics`` endpoint.

All mutation goes through one lock per registry, so executor threads
(the serve layer's ``shard-io`` pool) can record safely.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Iterator, Mapping, TypeVar

from repro.stats.latency import rank_position

_M = TypeVar("_M", bound="_Metric")

#: Metric names must match this (enforced here and by lint rule BCL012).
METRIC_NAME_RE = re.compile(r"^repro_[a-z0-9_]+$")

#: Canonical label key for one series: sorted ``(key, value)`` pairs.
LabelKey = tuple[tuple[str, str], ...]


class MetricError(ValueError):
    """Bad metric name, mismatched kind, or malformed delta payload."""


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric bucket upper bounds: start, start*factor, ...

    Log-scale boundaries cover quantities spanning orders of magnitude
    (kernel seconds, batch sizes) with constant *relative* resolution.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise MetricError(
            f"log_buckets needs start > 0, factor > 1, count >= 1; "
            f"got ({start}, {factor}, {count})"
        )
    bounds = []
    value = float(start)
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


#: Default timing buckets: 10 µs … ~167 s in ×4 steps (12 finite + +Inf).
TIME_BUCKETS = log_buckets(1e-5, 4.0, 12)

#: Default size/count buckets: 1 … 2048 in ×2 steps.
SIZE_BUCKETS = log_buckets(1.0, 2.0, 12)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared shape of one metric family (name, help, label sets)."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        if not METRIC_NAME_RE.match(name):
            raise MetricError(
                f"metric name {name!r} must match {METRIC_NAME_RE.pattern}"
            )
        self.name = name
        self.help = help
        self._lock = lock

    def labelsets(self) -> list[LabelKey]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        super().__init__(name, help, lock)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set (e.g. restarts over all shards)."""
        with self._lock:
            return sum(self._values.values())

    def labelsets(self) -> list[LabelKey]:
        return list(self._values)


class Gauge(_Metric):
    """A value that goes up and down (queue depth, occupancy)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        super().__init__(name, help, lock)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def labelsets(self) -> list[LabelKey]:
        return list(self._values)


class _HistogramSeries:
    """Bucket counts, sum and count for one label set."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, buckets: int) -> None:
        self.bucket_counts = [0] * (buckets + 1)  # final slot = +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``observe(v)`` lands in the first bucket whose upper bound is
    ``>= v`` (Prometheus ``le`` = less-or-equal); values above the last
    finite bound land in the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        buckets: tuple[float, ...] = TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricError(f"histogram {name}: buckets must ascend: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series.bucket_counts[index] += 1
            series.sum += value
            series.count += 1

    def series(self, **labels: Any) -> _HistogramSeries | None:
        return self._series.get(_label_key(labels))

    def count(self, **labels: Any) -> int:
        series = self.series(**labels)
        return series.count if series is not None else 0

    def sum(self, **labels: Any) -> float:
        series = self.series(**labels)
        return series.sum if series is not None else 0.0

    def approx_percentile(self, q: float, **labels: Any) -> float:
        """Bucket-interpolated percentile estimate.

        Uses the same linear-interpolation rank convention as
        :func:`repro.stats.latency.percentile` (via
        :func:`~repro.stats.latency.rank_position`), but walks the
        cumulative bucket counts instead of a retained sample: the
        fractional rank is located in its bucket and interpolated
        between the bucket's bounds.  Raises ``ValueError`` when the
        series is empty.
        """
        series = self.series(**labels)
        if series is None or series.count == 0:
            raise ValueError(f"histogram {self.name}: no observations")
        lower_rank, upper_rank, weight = rank_position(series.count, q)
        target = lower_rank + weight  # fractional rank in [0, count-1]
        cumulative = 0
        previous_bound = 0.0
        for i, bound in enumerate(self.buckets):
            in_bucket = series.bucket_counts[i]
            if in_bucket and cumulative + in_bucket - 1 >= target:
                # Rank falls in this bucket: interpolate across it.
                position = (target - cumulative + 0.5) / in_bucket
                return previous_bound + (bound - previous_bound) * min(
                    1.0, max(0.0, position)
                )
            cumulative += in_bucket
            previous_bound = bound
        return previous_bound  # rank is in the +Inf bucket: clamp

    def labelsets(self) -> list[LabelKey]:
        return list(self._series)


class MetricsRegistry:
    """Named metric families with get-or-create registration.

    ``registry.counter(name, help)`` returns the existing family when
    it is already registered (so instrumentation sites need no global
    set-up order), and raises :class:`MetricError` when the name is
    taken by a different kind.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    # -- registration --------------------------------------------------
    def _get_or_create(
        self, cls: "type[_M]", name: str, help: str, **kwargs: Any
    ) -> "_M":
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"  # type: ignore[attr-defined]
                    )
                return existing
            metric = cls(name, help, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        if buckets is None:
            return self._get_or_create(Histogram, name, help)
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(sorted(metrics, key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    # -- cross-process deltas ------------------------------------------
    def drain_deltas(self) -> list[dict[str, Any]]:
        """Snapshot-and-reset counters/histograms for forwarding.

        Worker processes call this after a batch and ship the result to
        the parent (`merge_deltas`); counters and histogram series are
        zeroed so the next drain reports only new activity.  Gauges are
        reported as-is (last-write-wins on merge).
        """
        deltas: list[dict[str, Any]] = []
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Counter):
                    for labels, value in metric._values.items():
                        if value:
                            deltas.append(
                                {"name": metric.name, "kind": "counter",
                                 "help": metric.help, "labels": list(labels),
                                 "value": value}
                            )
                    metric._values.clear()
                elif isinstance(metric, Gauge):
                    for labels, value in metric._values.items():
                        deltas.append(
                            {"name": metric.name, "kind": "gauge",
                             "help": metric.help, "labels": list(labels),
                             "value": value}
                        )
                elif isinstance(metric, Histogram):
                    for labels, series in metric._series.items():
                        if series.count:
                            deltas.append(
                                {"name": metric.name, "kind": "histogram",
                                 "help": metric.help, "labels": list(labels),
                                 "buckets": list(metric.buckets),
                                 "bucket_counts": list(series.bucket_counts),
                                 "sum": series.sum, "count": series.count}
                            )
                    metric._series.clear()
        return deltas

    def merge_deltas(self, deltas: list[dict[str, Any]]) -> None:
        """Fold a worker's :meth:`drain_deltas` payload into this registry."""
        for delta in deltas:
            try:
                name = delta["name"]
                kind = delta["kind"]
                labels = dict(tuple(pair) for pair in delta.get("labels", []))
            except (KeyError, TypeError, ValueError) as exc:
                raise MetricError(f"malformed metric delta: {delta!r}") from exc
            if kind == "counter":
                self.counter(name, delta.get("help", "")).inc(
                    float(delta["value"]), **labels
                )
            elif kind == "gauge":
                self.gauge(name, delta.get("help", "")).set(
                    float(delta["value"]), **labels
                )
            elif kind == "histogram":
                histogram = self.histogram(
                    name, delta.get("help", ""),
                    buckets=tuple(delta["buckets"]),
                )
                key = _label_key(labels)
                with self._lock:
                    series = histogram._series.get(key)
                    if series is None:
                        series = histogram._series[key] = _HistogramSeries(
                            len(histogram.buckets)
                        )
                    counts = delta["bucket_counts"]
                    if len(counts) != len(series.bucket_counts):
                        raise MetricError(
                            f"histogram {name}: delta has {len(counts)} "
                            f"buckets, registry has {len(series.bucket_counts)}"
                        )
                    for i, count in enumerate(counts):
                        series.bucket_counts[i] += count
                    series.sum += float(delta["sum"])
                    series.count += int(delta["count"])
            else:
                raise MetricError(f"unknown metric kind {kind!r}")


# ----------------------------------------------------------------------
# Process-wide default registry
# ----------------------------------------------------------------------
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every instrumentation site records to."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry (tests); returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
