"""``bcache-top`` — live view of a running sweep or a serve instance.

Two sources, one screen:

* **Log mode** (``bcache-top --log events.jsonl`` or ``--run-root``) —
  tail a sweep's JSONL event log (torn-tail tolerant, so it renders
  cleanly while workers are mid-append or mid-crash) and show
  per-benchmark progress, miss-rate-so-far, retry storms and recently
  active worker pids.
* **Connect mode** (``bcache-top --connect host:port``) — poll a
  ``bcache-serve`` instance's ``status`` and ``metrics`` ops and show
  request counters, batcher coalescing, and the per-shard table
  (alive/uptime/restarts — a crash-looping shard is immediately
  visible).

Rendering is plain ANSI (no curses dependency): each refresh repaints
the screen with cursor-home + clear-to-end escapes, which works in any
terminal and degrades gracefully when piped (``--once`` prints a single
frame and exits — that is also what the tests drive).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import events as obs_events
from repro.obs.exposition import Family, parse_text

#: A job.retried burst within this window is flagged as a retry storm.
RETRY_STORM_WINDOW_S = 30.0
RETRY_STORM_THRESHOLD = 3

CLEAR = "\x1b[H\x1b[2J"


# ----------------------------------------------------------------------
# Log-mode model: fold events into per-benchmark progress
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BenchProgress:
    """Progress of one benchmark's jobs inside a sweep."""

    queued: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    retries: int = 0
    miss_rates: list[float] = field(default_factory=list)

    @property
    def miss_rate_so_far(self) -> float | None:
        """Mean miss rate over this benchmark's completed jobs."""
        if not self.miss_rates:
            return None
        return sum(self.miss_rates) / len(self.miss_rates)


@dataclass(slots=True)
class SweepModel:
    """Event-folding state machine behind the log-mode screen."""

    benchmarks: dict[str, BenchProgress] = field(default_factory=dict)
    workers: dict[int, float] = field(default_factory=dict)  # pid -> last mono
    retry_times: list[float] = field(default_factory=list)
    run_id: str = ""
    total_jobs: int = 0
    events_seen: int = 0
    last_event_mono: float = 0.0

    def _bench(self, event: dict[str, Any]) -> BenchProgress:
        name = str(event.get("benchmark") or "?")
        bench = self.benchmarks.get(name)
        if bench is None:
            bench = self.benchmarks[name] = BenchProgress()
        return bench

    def apply(self, event: dict[str, Any]) -> None:
        """Fold one event log record into the model (unknown names ok)."""
        self.events_seen += 1
        name = event.get("name")
        pid = event.get("pid")
        mono = float(event.get("mono", 0.0) or 0.0)
        if isinstance(pid, int):
            self.workers[pid] = max(self.workers.get(pid, 0.0), mono)
        self.last_event_mono = max(self.last_event_mono, mono)
        if name == "engine.resilient_sweep":
            self.run_id = str(event.get("run_id") or self.run_id)
            self.total_jobs = int(event.get("jobs") or self.total_jobs)
        elif name == "engine.sweep":
            self.total_jobs = int(event.get("jobs") or self.total_jobs)
        elif name == "job.queued":
            self._bench(event).queued += 1
        elif name == "job.running":
            self._bench(event).running += 1
        elif name == "job.done":
            bench = self._bench(event)
            bench.done += 1
            rate = event.get("miss_rate")
            if isinstance(rate, (int, float)):
                bench.miss_rates.append(float(rate))
        elif name == "job.failed":
            self._bench(event).failed += 1
        elif name == "job.retried":
            bench = self._bench(event)
            bench.retries += 1
            self.retry_times.append(mono)

    def apply_all(self, events: list[dict[str, Any]]) -> None:
        for event in events:
            self.apply(event)

    @property
    def done_jobs(self) -> int:
        return sum(bench.done for bench in self.benchmarks.values())

    def retry_storm(self) -> int:
        """Retries within the storm window of the latest event."""
        cutoff = self.last_event_mono - RETRY_STORM_WINDOW_S
        return sum(1 for when in self.retry_times if when >= cutoff)


def render_sweep(model: SweepModel, width: int = 80) -> str:
    """One log-mode frame (plain text, no escape codes)."""
    lines: list[str] = []
    total = model.total_jobs or sum(
        bench.queued or (bench.done + bench.failed)
        for bench in model.benchmarks.values()
    )
    title = "bcache-top — sweep"
    if model.run_id:
        title += f" run={model.run_id}"
    lines.append(title)
    done = model.done_jobs
    if total:
        filled = int(round((min(done, total) / total) * 30))
        bar = "#" * filled + "-" * (30 - filled)
        lines.append(f"progress [{bar}] {done}/{total} jobs")
    else:
        lines.append(f"progress {done} job(s) done")
    storm = model.retry_storm()
    if storm >= RETRY_STORM_THRESHOLD:
        lines.append(
            f"!! retry storm: {storm} retries in the last "
            f"{RETRY_STORM_WINDOW_S:.0f}s"
        )
    header = (
        f"{'benchmark':<12} {'done':>5} {'run':>4} {'fail':>5} "
        f"{'retry':>5} {'miss-rate':>10}"
    )
    lines.append(header[:width])
    lines.append("-" * min(width, len(header)))
    for name in sorted(model.benchmarks):
        bench = model.benchmarks[name]
        rate = bench.miss_rate_so_far
        rate_text = f"{rate:>9.3%}" if rate is not None else f"{'-':>9}"
        lines.append(
            f"{name:<12} {bench.done:>5} {bench.running:>4} "
            f"{bench.failed:>5} {bench.retries:>5} {rate_text:>10}"[:width]
        )
    if model.workers:
        recent = sorted(
            pid
            for pid, when in model.workers.items()
            if when >= model.last_event_mono - RETRY_STORM_WINDOW_S
        )
        lines.append(
            f"workers: {len(recent)} active "
            f"(pids {', '.join(str(p) for p in recent[:8])}"
            + (", ..." if len(recent) > 8 else "")
            + ")"
        )
    lines.append(f"events: {model.events_seen}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Connect mode: fold a server's status + metrics into a frame
# ----------------------------------------------------------------------
def _metric_value(
    families: dict[str, Family], family: str, sample: str | None = None,
    **labels: str,
) -> float | None:
    entry = families.get(family)
    if entry is None:
        return None
    try:
        return entry.sample_value(sample, **labels)
    except KeyError:
        return None


def _family_total(
    families: dict[str, Family], family: str
) -> float | None:
    """Sum a counter family across all its label combinations."""
    entry = families.get(family)
    if entry is None:
        return None
    values = [
        sample.value for sample in entry.samples if sample.name == family
    ]
    return sum(values) if values else None


def render_server(
    status: dict[str, Any],
    families: dict[str, Family] | None,
    width: int = 80,
    gateway_rps: float | None = None,
) -> str:
    """One connect-mode frame from a status dict + parsed metrics.

    ``gateway_rps`` is the caller-computed request rate from the
    ``repro_gateway_requests_total`` family (a rate needs two samples,
    so the poll loop owns it); ``None`` renders ``-`` — the usual case
    when the polled endpoint is a plain serve node, not a gateway.
    """
    lines: list[str] = []
    server = status.get("server", {})
    batcher = status.get("batcher", {})
    lines.append(
        f"bcache-top — serve uptime={server.get('uptime_s', 0):.0f}s "
        f"{'DRAINING' if server.get('draining') else 'serving'}"
    )
    lines.append(
        f"requests {server.get('requests', 0)}  "
        f"completed {server.get('completed', 0)}  "
        f"errors {server.get('errors', 0)}  shed {server.get('shed', 0)}  "
        f"inflight {server.get('inflight_jobs', 0)}/"
        f"{server.get('max_pending', 0)}"
    )
    lines.append(
        f"batcher  batches {batcher.get('batches', 0)}  "
        f"mean size {batcher.get('mean_batch_size', 0.0):.2f}  "
        f"coalesced {batcher.get('coalesced', 0)}  "
        f"errors {batcher.get('batch_errors', 0)}"
    )
    resultcache = status.get("resultcache") or {}
    admission = status.get("admission") or {}
    hits = int(resultcache.get("hits_memory", 0) or 0) + int(
        resultcache.get("hits_disk", 0) or 0
    )
    lookups = hits + int(resultcache.get("misses", 0) or 0)
    hit_text = f"{hits / lookups:.1%}" if lookups else "-"
    dedups = int(server.get("singleflight_waits", 0) or 0) + int(
        batcher.get("coalesced", 0) or 0
    )
    drops = int(
        admission.get("rate_limited", server.get("rate_limited", 0)) or 0
    )
    rps_text = f"{gateway_rps:.1f}" if gateway_rps is not None else "-"
    lines.append(
        f"serve    cache hit {hit_text} ({hits}/{lookups})  "
        f"dedup {dedups}  rate-limited {drops}  gateway {rps_text} rps"
    )
    if families:
        jobs_done = _metric_value(
            families, "repro_engine_jobs_total", status="done"
        )
        hits_mem = _metric_value(
            families, "repro_trace_store_hits_total", tier="memory"
        )
        hits_disk = _metric_value(
            families, "repro_trace_store_hits_total", tier="disk"
        )
        batch_count = _metric_value(
            families, "repro_serve_batch_size", "repro_serve_batch_size_count"
        )
        batch_sum = _metric_value(
            families, "repro_serve_batch_size", "repro_serve_batch_size_sum"
        )
        mean = (batch_sum / batch_count) if batch_count else None
        parts = []
        if jobs_done is not None:
            parts.append(f"jobs done {jobs_done:.0f}")
        if hits_mem is not None or hits_disk is not None:
            parts.append(
                f"trace hits mem/disk {hits_mem or 0:.0f}/{hits_disk or 0:.0f}"
            )
        if mean is not None:
            parts.append(f"scraped batch size {mean:.2f}")
        if parts:
            lines.append("metrics  " + "  ".join(parts))
    header = (
        f"{'shard':>5} {'pid':>8} {'alive':>6} {'uptime':>8} "
        f"{'batches':>8} {'jobs':>7} {'restarts':>9}"
    )
    lines.append(header[:width])
    lines.append("-" * min(width, len(header)))
    for shard_id, shard in enumerate(status.get("shards", [])):
        lines.append(
            f"{shard_id:>5} {shard.get('pid') or '-':>8} "
            f"{'yes' if shard.get('alive') else 'NO':>6} "
            f"{shard.get('uptime_s', 0.0):>7.0f}s "
            f"{shard.get('batches', 0):>8} {shard.get('jobs', 0):>7} "
            f"{shard.get('restarts', 0):>9}"[:width]
        )
    return "\n".join(lines)


def _poll_server(address: str) -> tuple[dict[str, Any], dict[str, Family] | None]:
    """One status + metrics round-trip (lazy import keeps obs a leaf)."""
    from repro.serve.client import ServeClient

    with ServeClient.connect(address) as client:
        status = client.status()
        response = client.request({"op": "metrics"})
    families = None
    if response.get("ok") and isinstance(response.get("metrics"), str):
        families = parse_text(response["metrics"])
    return status, families


# ----------------------------------------------------------------------
# Fleet mode: one row per node of a comma-separated --connect list
# ----------------------------------------------------------------------
def poll_fleet(
    addresses: list[str],
) -> list[tuple[str, dict[str, Any] | None, dict[str, Family] | None]]:
    """Poll every node with short deadlines; a dead node yields ``None``.

    Unlike single-server mode, an unreachable endpoint is a *row*, not
    an error — watching a fleet through a partial outage is exactly
    when a monitor earns its keep.
    """
    from repro.serve.client import ServeClient

    rows: list[tuple[str, dict[str, Any] | None, dict[str, Family] | None]] = []
    for address in addresses:
        try:
            with ServeClient.connect(
                address, timeout=5.0, connect_timeout=2.0
            ) as client:
                status = client.status()
                response = client.request({"op": "metrics"})
        except (OSError, ValueError) as exc:
            log_fleet_error(address, exc)
            rows.append((address, None, None))
            continue
        families = None
        if response.get("ok") and isinstance(response.get("metrics"), str):
            families = parse_text(response["metrics"])
        rows.append((address, status, families))
    return rows


def log_fleet_error(address: str, error: Exception) -> None:
    """One unreachable-node notice per refresh (stderr, not the frame)."""
    print(f"bcache-top: cannot reach {address}: {error}", file=sys.stderr)


def render_fleet(
    rows: list[tuple[str, dict[str, Any] | None, dict[str, Family] | None]],
    width: int = 100,
) -> str:
    """One fleet-mode frame: a per-node row plus aggregated totals.

    ``steals`` reads the ``repro_cluster_steals_total`` series labelled
    with the node's address when any polled endpoint exports it (a
    coordinator scraped through its own ``/metrics``); plain serve
    nodes don't carry that series, so the column renders ``-``.
    """
    lines: list[str] = []
    up = sum(1 for _, status, _ in rows if status is not None)
    lines.append(f"bcache-top — fleet  {up}/{len(rows)} node(s) up")
    header = (
        f"{'node':<28} {'state':>6} {'inflight':>9} {'completed':>10} "
        f"{'restarts':>9} {'steals':>7} {'uptime':>8}"
    )
    lines.append(header[:width])
    lines.append("-" * min(width, len(header)))
    total_completed = 0
    total_inflight = 0
    for address, status, families in rows:
        name = address if len(address) <= 28 else "..." + address[-25:]
        if status is None:
            lines.append(
                f"{name:<28} {'DOWN':>6} {'-':>9} {'-':>10} "
                f"{'-':>9} {'-':>7} {'-':>8}"[:width]
            )
            continue
        server = status.get("server", {})
        state = "drain" if server.get("draining") else "up"
        inflight = int(server.get("inflight_jobs", 0))
        completed = int(server.get("completed", 0))
        restarts = int(server.get("shard_restarts_total", 0))
        total_inflight += inflight
        total_completed += completed
        steals = None
        if families is not None:
            steals = _metric_value(
                families, "repro_cluster_steals_total", node=address
            )
        steals_text = f"{steals:.0f}" if steals is not None else "-"
        lines.append(
            f"{name:<28} {state:>6} {inflight:>9} {completed:>10} "
            f"{restarts:>9} {steals_text:>7} "
            f"{server.get('uptime_s', 0.0):>7.0f}s"[:width]
        )
    lines.append(
        f"totals   inflight {total_inflight}  completed {total_completed}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _default_log(run_root: str | None) -> Path | None:
    """Newest run directory's event log, or the global default log."""
    root = Path(run_root) if run_root else None
    if root is None:
        env_root = os.environ.get("REPRO_RUN_ROOT")
        if env_root:
            root = Path(env_root)
    if root is not None and root.is_dir():
        candidates = sorted(
            root.glob("*/events.jsonl"),
            key=lambda path: path.stat().st_mtime,
            reverse=True,
        )
        if candidates:
            return candidates[0]
    fallback = obs_events.default_log_path()
    return fallback if fallback.is_file() else None


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-top``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="bcache-top",
        description="Live monitor for sweeps (event log) and bcache-serve "
        "instances (status/metrics polling).",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--log", metavar="PATH",
                        help="tail this obs event log (events.jsonl)")
    source.add_argument("--connect", metavar="ADDR",
                        help="poll a bcache-serve instance "
                        "(host:port or unix:/path.sock); a comma-"
                        "separated list renders a per-node fleet table")
    parser.add_argument("--run-root", metavar="DIR", default=None,
                        help="with neither --log nor --connect: watch the "
                        "newest run under DIR (default $REPRO_RUN_ROOT)")
    parser.add_argument("--interval", type=float, default=1.0, metavar="S",
                        help="refresh interval in seconds (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit (no screen clearing; "
                        "scripting/tests)")
    parser.add_argument("--frames", type=int, default=0, metavar="N",
                        help="exit after N frames (0 = run until Ctrl-C)")
    args = parser.parse_args(argv)

    try:
        if args.connect:
            return _run_connect(args)
        return _run_log(args)
    except KeyboardInterrupt:
        print()
        return 130


def _emit_frame(frame: str, once: bool) -> None:
    if once or not sys.stdout.isatty():
        print(frame, flush=True)
    else:
        print(CLEAR + frame, flush=True)


def _run_log(args: argparse.Namespace) -> int:
    path = Path(args.log) if args.log else _default_log(args.run_root)
    if path is None:
        print(
            "bcache-top: no event log found — pass --log PATH, set "
            "$REPRO_RUN_ROOT, or run a sweep with REPRO_OBS=events",
            file=sys.stderr,
        )
        return 2
    model = SweepModel()
    offset = 0
    frames = 0
    while True:
        events, offset = obs_events.tail_events(path, offset)
        model.apply_all(events)
        _emit_frame(f"log: {path}\n" + render_sweep(model), args.once)
        frames += 1
        if args.once or (args.frames and frames >= args.frames):
            return 0
        time.sleep(max(0.05, args.interval))


def _run_connect(args: argparse.Namespace) -> int:
    if "," in args.connect:
        return _run_fleet(args)
    frames = 0
    last_gateway: tuple[float, float] | None = None  # (total, when)
    while True:
        try:
            status, families = _poll_server(args.connect)
        except OSError as exc:
            print(
                f"bcache-top: cannot reach {args.connect}: {exc}",
                file=sys.stderr,
            )
            return 4
        # Gateway rps needs two samples of the requests counter; the
        # first frame (and --once) render "-".
        gateway_rps: float | None = None
        if families is not None:
            total = _family_total(families, "repro_gateway_requests_total")
            if total is not None:
                now = time.monotonic()
                if last_gateway is not None and now > last_gateway[1]:
                    gateway_rps = max(
                        0.0, (total - last_gateway[0])
                        / (now - last_gateway[1])
                    )
                last_gateway = (total, now)
        _emit_frame(
            f"server: {args.connect}\n"
            + render_server(status, families, gateway_rps=gateway_rps),
            args.once,
        )
        frames += 1
        if args.once or (args.frames and frames >= args.frames):
            return 0
        time.sleep(max(0.05, args.interval))


def _run_fleet(args: argparse.Namespace) -> int:
    addresses = [part.strip() for part in args.connect.split(",") if part.strip()]
    if not addresses:
        print("bcache-top: --connect got an empty fleet list", file=sys.stderr)
        return 2
    frames = 0
    while True:
        rows = poll_fleet(addresses)
        _emit_frame(render_fleet(rows), args.once)
        frames += 1
        if args.once or (args.frames and frames >= args.frames):
            # Unlike single-server mode, a down node is a row, not an
            # exit — but an entirely-dead fleet still signals failure.
            return 0 if any(status is not None for _, status, _ in rows) else 4
        time.sleep(max(0.05, args.interval))


if __name__ == "__main__":
    raise SystemExit(main())
