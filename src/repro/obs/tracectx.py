"""Request-scoped trace context: deterministic ids, W3C wire form, sampling.

A :class:`TraceContext` names one request's position in a distributed
trace: a 128-bit ``trace_id`` shared by every span of the request, a
64-bit ``span_id`` for the current span, and the parent span's id (so
``bcache-trace`` can rebuild the tree).  It crosses process boundaries
in two forms:

* the W3C ``traceparent`` HTTP header
  (``00-<32 hex trace_id>-<16 hex span_id>-<2 hex flags>``) at the
  gateway, and
* a ``trace`` field carrying the same string inside serve protocol
  frames, micro-batcher jobs, shard-worker payloads and cluster
  dispatch payloads.

**Determinism.**  Nothing here touches ``random``, ``uuid`` or wall
clocks (lint rule BCL019 enforces this in workers).  Trace ids are
minted by hashing a caller-supplied key (connection ordinal, job hash,
run id), and child span ids are derived by hashing
``(trace_id, parent span, name, pid, per-process ordinal)`` — re-running
the same workload yields the same ids, so trace-based diffs between
runs are meaningful.

**Sampling.**  Head-based and keyed by ``hash(trace_id)``: the sampling
decision is a pure function of the trace id and the rate
(``REPRO_TRACE_SAMPLE``, default 1.0), so every hop of a distributed
request — gateway, server, workers, cluster nodes — independently
reaches the same verdict without coordination, and a rerun samples the
same requests.  The hash is the first 8 bytes of blake2b, uniform over
``[0, 1)``; PAPERS.md's birthday-paradox analysis is why the id space
is 128 bits (collisions across even million-request runs stay
negligible) while the sampling key only needs 64.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import itertools
import os
import re
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

ENV_SAMPLE = "REPRO_TRACE_SAMPLE"

#: ``traceparent`` shape we accept: version 00, lowercase hex fields.
_TRACEPARENT = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

#: all-zero ids are invalid per the W3C spec
_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16

#: per-process ordinal folded into derived span ids so two children of
#: the same parent with the same name still get distinct ids.
_SEQ = itertools.count()


def _digest(*parts: str, size: int) -> str:
    h = hashlib.blake2b(digest_size=size)
    for part in parts:
        h.update(part.encode("utf-8", "surrogateescape"))
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return h.hexdigest()


def mint_trace_id(key: str) -> str:
    """A 128-bit trace id derived from ``key`` (no randomness, no clock).

    Callers pass something already unique to the request — the gateway
    uses ``<listen addr>/<connection ordinal>/<request ordinal>``, the
    serve CLI uses the job hash plus a per-connection counter — so ids
    are reproducible run to run.
    """
    digest = _digest("trace", key, size=16)
    return digest if digest != _ZERO_TRACE else "1" * 32


def derive_span_id(trace_id: str, parent_id: str | None, name: str) -> str:
    """A child span id: deterministic given the process's event order."""
    digest = _digest(
        trace_id, parent_id or "", name, str(os.getpid()), str(next(_SEQ)),
        size=8,
    )
    return digest if digest != _ZERO_SPAN else "1" * 16


def sample_rate() -> float:
    """The head-sampling rate from ``REPRO_TRACE_SAMPLE`` (default 1.0)."""
    raw = os.environ.get(ENV_SAMPLE, "").strip()
    if not raw:
        return 1.0
    try:
        rate = float(raw)
    except ValueError:
        return 1.0
    return min(1.0, max(0.0, rate))


def sampled_for(trace_id: str, rate: float | None = None) -> bool:
    """The deterministic sampling verdict for ``trace_id``.

    ``hash(trace_id)`` mapped to ``[0, 1)`` compared against the rate:
    every process sharing the trace id reaches the same answer.
    """
    if rate is None:
        rate = sample_rate()
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = int(_digest("sample", trace_id, size=8), 16) / float(1 << 64)
    return bucket < rate


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One span's identity within a distributed trace (immutable)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None
    sampled: bool = True

    @classmethod
    def new(cls, key: str, *, rate: float | None = None) -> "TraceContext":
        """Mint a root context for a request identified by ``key``."""
        trace_id = mint_trace_id(key)
        return cls(
            trace_id=trace_id,
            span_id=derive_span_id(trace_id, None, "root"),
            parent_id=None,
            sampled=sampled_for(trace_id, rate),
        )

    def child(self, name: str) -> "TraceContext":
        """The context for a child span named ``name``."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(self.trace_id, self.span_id, name),
            parent_id=self.span_id,
            sampled=self.sampled,
        )

    # -- wire forms -----------------------------------------------------
    def to_traceparent(self) -> str:
        """W3C ``traceparent`` header value (flags carry ``sampled``)."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a ``traceparent`` header; ``None`` when absent/invalid."""
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        trace_id, span_id, flags = match.groups()
        if trace_id == _ZERO_TRACE or span_id == _ZERO_SPAN:
            return None
        try:
            sampled = bool(int(flags, 16) & 0x01)
        except ValueError:  # pragma: no cover - regex guarantees hex
            return None
        return cls(trace_id=trace_id, span_id=span_id, sampled=sampled)

    def to_wire(self) -> str:
        """The protocol-frame form of this context (the header string)."""
        return self.to_traceparent()

    @classmethod
    def from_wire(cls, value: Any) -> "TraceContext | None":
        """Parse a ``trace`` payload field; tolerant of junk (→ ``None``)."""
        if isinstance(value, str):
            return cls.from_traceparent(value)
        if isinstance(value, Mapping):
            return cls.from_traceparent(value.get("traceparent"))
        return None


# ----------------------------------------------------------------------
# Ambient context (per task/thread via contextvars)
# ----------------------------------------------------------------------
_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current() -> TraceContext | None:
    """The active trace context, if a request is being traced."""
    return _CURRENT.get()


@contextlib.contextmanager
def use(ctx: TraceContext | None) -> Iterator[None]:
    """Make ``ctx`` the ambient context for the body (restores on exit)."""
    token = _CURRENT.set(ctx)
    try:
        yield
    finally:
        _CURRENT.reset(token)
