"""``bcache-trace`` — waterfall analyzer for distributed trace spans.

Reads one or more obs event logs (JSONL, as written by ``repro.obs``
under ``REPRO_OBS=events|full``), keeps every record that carries a
``trace_id``/``span_id`` pair, and reconstructs per-request span trees:

* **Waterfalls** — an ASCII gantt per trace, one row per span, bars
  positioned on the trace's wall-clock window.  The critical path (the
  greedy walk into whichever child ends last) is marked ``*`` so the
  stage that actually gated the request is visible at a glance.
* **--slowest N** — only the N longest traces, longest first.
* **--stage-summary** — per-stage latency attribution: count, total,
  mean, max and *self* time (span duration minus child durations), so
  the stage columns sum to roughly the end-to-end total instead of
  double-counting parents.
* **--export FILE** — Chrome trace-event JSON (load in
  ``chrome://tracing`` or Perfetto).
* **--check** — machine gate for CI: the fraction of traces that form
  a complete single-rooted tree must reach ``--threshold``.

Multiple log files merge by ``trace_id`` before reconstruction — a
2-node cluster run hands ``bcache-trace`` one log per node and gets
coordinator → node → shard waterfalls stitched across processes.
Spans record their *end* wall-clock time ``t`` plus ``dur_s``; start is
recovered as ``t - dur_s``, which is comparable across processes and
hosts with sane clocks.

A root context minted at the edge (gateway, serve, cluster) is itself
never emitted — only its children are — so a *complete* tree is one
where every unresolvable parent reference points at that single
unrecorded root (or the external ``traceparent``): one dangling parent
id, shared by all top-level spans.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.obs import events as obs_events

#: Width of the waterfall bar column, in characters.
BAR_WIDTH = 40


# ----------------------------------------------------------------------
# Model: records -> spans -> per-trace trees
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Span:
    """One traced event record, with wall-clock start recovered."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    dur: float
    pid: int
    ok: bool
    attrs: dict[str, Any]

    @property
    def end(self) -> float:
        return self.start + self.dur

    @property
    def stage(self) -> str | None:
        """Stage label, for ``stage.*`` spans (None otherwise)."""
        stage = self.attrs.get("stage")
        if isinstance(stage, str) and stage:
            return stage
        if self.name.startswith("stage."):
            return self.name[len("stage."):]
        return None


#: Record keys that become Span fields, not attrs.
_CORE_KEYS = frozenset(
    {"name", "t", "mono", "pid", "trace_id", "span_id", "parent_id",
     "dur_s", "ok"}
)


def span_from_record(record: dict[str, Any]) -> Span | None:
    """Build a Span from an event record; None if it isn't traced."""
    trace_id = record.get("trace_id")
    span_id = record.get("span_id")
    if not isinstance(trace_id, str) or not isinstance(span_id, str):
        return None
    if not trace_id or not span_id:
        return None
    try:
        end = float(record.get("t", 0.0))
        dur = max(0.0, float(record.get("dur_s", 0.0)))
    except (TypeError, ValueError):
        return None
    parent = record.get("parent_id")
    parent_id = parent if isinstance(parent, str) and parent else None
    pid = record.get("pid")
    return Span(
        name=str(record.get("name") or "?"),
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        start=end - dur,
        dur=dur,
        pid=pid if isinstance(pid, int) else 0,
        ok=bool(record.get("ok", True)),
        attrs={k: v for k, v in record.items() if k not in _CORE_KEYS},
    )


@dataclass(slots=True)
class Trace:
    """All spans sharing one trace_id, indexed for tree walks."""

    trace_id: str
    spans: dict[str, Span] = field(default_factory=dict)

    def add(self, span: Span) -> None:
        # Last write wins on span_id collisions (idempotent re-reads).
        self.spans[span.span_id] = span

    def roots(self) -> list[Span]:
        """Spans whose parent is absent or not recorded in this trace."""
        return sorted(
            (
                span
                for span in self.spans.values()
                if span.parent_id is None or span.parent_id not in self.spans
            ),
            key=lambda span: span.start,
        )

    def unresolved_parents(self) -> set[str]:
        """Distinct unresolvable parent references among the spans.

        Each root span contributes its ``parent_id``; a root with *no*
        parent contributes its own span id (two parentless spans are
        two separate roots, not one shared virtual root).
        """
        return {
            span.parent_id if span.parent_id is not None else span.span_id
            for span in self.roots()
        }

    def children(self) -> dict[str, list[Span]]:
        """parent span_id -> children sorted by start time."""
        table: dict[str, list[Span]] = {}
        for span in self.spans.values():
            if span.parent_id is not None and span.parent_id in self.spans:
                table.setdefault(span.parent_id, []).append(span)
        for siblings in table.values():
            siblings.sort(key=lambda span: (span.start, span.span_id))
        return table

    @property
    def start(self) -> float:
        return min(span.start for span in self.spans.values())

    @property
    def end(self) -> float:
        return max(span.end for span in self.spans.values())

    @property
    def duration(self) -> float:
        return self.end - self.start

    def is_complete(self) -> bool:
        """True when the spans form one single-rooted tree.

        The root context minted at the edge (and an external
        ``traceparent``) is never itself recorded, so *its* id is
        allowed to dangle — but every unresolvable parent reference
        must point at that one id.  Two spans hanging off *different*
        unrecorded parents mean a hop dropped its spans.
        """
        return len(self.spans) > 0 and len(self.unresolved_parents()) == 1

    def critical_path(self) -> set[str]:
        """Span ids on the greedy latest-ending chain from the root.

        Top-level spans all hang off the same virtual root when the
        trace is complete; the walk starts at whichever ends last.
        """
        roots = self.roots()
        if not roots or not self.is_complete():
            return set()
        children = self.children()
        path: set[str] = set()
        node = max(roots, key=lambda span: span.end)
        while True:
            path.add(node.span_id)
            below = children.get(node.span_id)
            if not below:
                return path
            node = max(below, key=lambda span: span.end)


def load_spans(paths: Iterable[Path]) -> dict[str, Trace]:
    """Read every log, keep traced records, group by trace_id."""
    traces: dict[str, Trace] = {}
    for path in paths:
        for record in obs_events.read_events(path):
            span = span_from_record(record)
            if span is None:
                continue
            trace = traces.get(span.trace_id)
            if trace is None:
                trace = traces[span.trace_id] = Trace(span.trace_id)
            trace.add(span)
    return traces


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _bar(span: Span, t0: float, extent: float, width: int) -> str:
    """Position the span's duration bar inside the trace window."""
    if extent <= 0.0:
        return "#" * width
    lo = int((span.start - t0) / extent * width)
    hi = int(round((span.end - t0) / extent * width))
    lo = max(0, min(width - 1, lo))
    hi = max(lo + 1, min(width, hi))
    return "·" * lo + "#" * (hi - lo) + "·" * (width - hi)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}ms"


def _walk(
    span: Span, children: dict[str, list[Span]], depth: int,
    seen: set[str],
) -> Iterator[tuple[Span, int]]:
    if span.span_id in seen:  # cycle guard (corrupt logs)
        return
    seen.add(span.span_id)
    yield span, depth
    for child in children.get(span.span_id, []):
        yield from _walk(child, children, depth + 1, seen)


def render_waterfall(trace: Trace, width: int = BAR_WIDTH) -> str:
    """One trace as an indented ASCII gantt with critical-path marks."""
    lines: list[str] = []
    roots = trace.roots()
    children = trace.children()
    critical = trace.critical_path()
    t0, extent = trace.start, trace.duration
    header = (
        f"trace {trace.trace_id}  spans {len(trace.spans)}  "
        f"dur {_fmt_ms(extent)}"
    )
    if not trace.is_complete():
        header += (
            f"  [INCOMPLETE: {len(trace.unresolved_parents())} "
            "unresolved parents]"
        )
    lines.append(header)
    seen: set[str] = set()
    for root in roots:
        for span, depth in _walk(root, children, 0, seen):
            mark = " *" if span.span_id in critical else "  "
            flag = "" if span.ok else "  !err"
            label = ("  " * depth + span.name)[:28]
            lines.append(
                f"  {label:<28} |{_bar(span, t0, extent, width)}| "
                f"{_fmt_ms(span.dur):>10}{mark}{flag}"
            )
    return "\n".join(lines)


def self_times(trace: Trace) -> dict[str, float]:
    """span_id -> duration minus recorded child durations (clamped)."""
    children = trace.children()
    out: dict[str, float] = {}
    for span in trace.spans.values():
        below = sum(child.dur for child in children.get(span.span_id, []))
        out[span.span_id] = max(0.0, span.dur - below)
    return out


@dataclass(slots=True)
class StageStats:
    count: int = 0
    total: float = 0.0
    self_total: float = 0.0
    max_dur: float = 0.0


def stage_summary(traces: dict[str, Trace]) -> dict[str, StageStats]:
    """Aggregate per-stage latency attribution across all traces."""
    table: dict[str, StageStats] = {}
    for trace in traces.values():
        selfs = self_times(trace)
        for span in trace.spans.values():
            stage = span.stage
            if stage is None:
                continue
            stats = table.get(stage)
            if stats is None:
                stats = table[stage] = StageStats()
            stats.count += 1
            stats.total += span.dur
            stats.self_total += selfs[span.span_id]
            stats.max_dur = max(stats.max_dur, span.dur)
    return table


def render_stage_summary(table: dict[str, StageStats]) -> str:
    lines = [
        f"{'stage':<16} {'count':>7} {'total':>10} {'self':>10} "
        f"{'mean':>10} {'max':>10}"
    ]
    lines.append("-" * len(lines[0]))
    for stage in sorted(table, key=lambda s: -table[s].self_total):
        stats = table[stage]
        mean = stats.total / stats.count if stats.count else 0.0
        lines.append(
            f"{stage:<16} {stats.count:>7} {_fmt_ms(stats.total):>10} "
            f"{_fmt_ms(stats.self_total):>10} {_fmt_ms(mean):>10} "
            f"{_fmt_ms(stats.max_dur):>10}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def chrome_trace(traces: dict[str, Trace]) -> dict[str, Any]:
    """Traces as a Chrome trace-event JSON object (``ph: "X"``)."""
    events: list[dict[str, Any]] = []
    for trace in sorted(traces.values(), key=lambda t: t.start):
        for span in sorted(trace.spans.values(), key=lambda s: s.start):
            events.append(
                {
                    "name": span.name,
                    "cat": span.stage or "span",
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.dur * 1e6,
                    "pid": span.pid,
                    "tid": span.pid,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id or "",
                        **span.attrs,
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# --check: CI gate
# ----------------------------------------------------------------------
def check_traces(
    traces: dict[str, Trace], threshold: float
) -> tuple[bool, str]:
    """Gate on the fraction of complete single-rooted trace trees."""
    total = len(traces)
    if total == 0:
        return False, "bcache-trace --check: no traces found"
    complete = sum(1 for trace in traces.values() if trace.is_complete())
    ratio = complete / total
    ok = ratio >= threshold
    broken = [
        f"  {trace.trace_id}: {len(trace.unresolved_parents())} "
        f"unresolved parents, {len(trace.spans)} spans"
        for trace in traces.values()
        if not trace.is_complete()
    ]
    lines = [
        f"bcache-trace --check: {complete}/{total} traces complete "
        f"({ratio:.1%}, threshold {threshold:.1%}) — "
        + ("OK" if ok else "FAIL")
    ]
    lines.extend(broken[:10])
    if len(broken) > 10:
        lines.append(f"  ... and {len(broken) - 10} more")
    return ok, "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-trace``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="bcache-trace",
        description="Reconstruct per-request span waterfalls from obs "
        "event logs; merge multiple logs (multi-process / multi-node) "
        "by trace id.",
    )
    parser.add_argument(
        "logs", nargs="+", metavar="EVENTS_JSONL",
        help="one or more obs event logs to merge",
    )
    parser.add_argument(
        "--slowest", type=int, default=0, metavar="N",
        help="render only the N longest traces (default: all)",
    )
    parser.add_argument(
        "--stage-summary", action="store_true",
        help="print per-stage latency attribution instead of waterfalls",
    )
    parser.add_argument(
        "--export", metavar="FILE", default=None,
        help="write Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the complete-trace ratio meets --threshold",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.99, metavar="R",
        help="complete-trace ratio required by --check (default 0.99)",
    )
    args = parser.parse_args(argv)

    paths = [Path(raw) for raw in args.logs]
    missing = [str(path) for path in paths if not path.is_file()]
    if missing:
        print(
            f"bcache-trace: no such log: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    traces = load_spans(paths)

    if args.export:
        Path(args.export).write_text(
            json.dumps(chrome_trace(traces)), encoding="utf-8"
        )
        print(f"bcache-trace: wrote {args.export} "
              f"({len(traces)} trace(s))")

    if args.check:
        ok, report = check_traces(traces, args.threshold)
        print(report)
        return 0 if ok else 1

    if not traces:
        print("bcache-trace: no traced spans in the given log(s)",
              file=sys.stderr)
        return 1

    if args.stage_summary:
        print(render_stage_summary(stage_summary(traces)))
        return 0

    ordered = sorted(traces.values(), key=lambda t: -t.duration)
    if args.slowest > 0:
        ordered = ordered[: args.slowest]
    blocks = [render_waterfall(trace) for trace in ordered]
    print("\n\n".join(blocks))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
