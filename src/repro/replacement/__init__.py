"""Replacement policies: LRU, random, FIFO and tree-PLRU."""

from __future__ import annotations

from repro.replacement.base import PolicyError, PolicyFactory, ReplacementPolicy
from repro.replacement.fifo import FIFOPolicy
from repro.replacement.lru import LRUPolicy
from repro.replacement.plru import TreePLRUPolicy
from repro.replacement.random_policy import RandomPolicy

_POLICIES: dict[str, type[ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "fifo": FIFOPolicy,
    "plru": TreePLRUPolicy,
}


def make_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by name (``lru``, ``random``, ``fifo``, ``plru``).

    ``seed`` only affects the random policy; it is accepted (and
    ignored) for the others so callers can pass it uniformly.
    """
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise PolicyError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(ways, seed=seed)
    return cls(ways)


def policy_names() -> tuple[str, ...]:
    """Names accepted by :func:`make_policy`."""
    return tuple(sorted(_POLICIES))


__all__ = [
    "FIFOPolicy",
    "LRUPolicy",
    "PolicyError",
    "PolicyFactory",
    "RandomPolicy",
    "ReplacementPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "policy_names",
]
