"""Replacement-policy protocol shared by every associative structure.

A policy instance manages **one** replacement domain (one set of a
set-associative cache, one B-Cache candidate group, one fully
associative buffer).  Ways are identified by dense integer indices
``0..ways-1``.  The simulators call :meth:`touch` on every hit or fill
and :meth:`victim` when an eviction is needed; :meth:`invalidate`
returns a way to the free pool.

The paper evaluates LRU and random replacement for the B-Cache
(Section 3.3) and uses LRU for the conventional set-associative
baselines (Figures 4, 5).
"""

from __future__ import annotations

import abc
from typing import Callable


class ReplacementPolicy(abc.ABC):
    """Tracks access recency/ordering for one replacement domain."""

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        self.ways = ways

    @abc.abstractmethod
    def touch(self, way: int) -> None:
        """Record a reference to ``way`` (hit or fill)."""

    @abc.abstractmethod
    def victim(self) -> int:
        """Return the way to evict next (does not modify state)."""

    @abc.abstractmethod
    def invalidate(self, way: int) -> None:
        """Forget any history for ``way`` making it preferred for eviction."""

    def victim_among(self, candidates: list[int]) -> int:
        """Return the best victim restricted to ``candidates``.

        The default implementation falls back to the unrestricted victim
        when it is a candidate and otherwise returns the first
        candidate.  Policies with a total order override this.
        """
        if not candidates:
            raise ValueError("candidates must be non-empty")
        preferred = self.victim()
        if preferred in candidates:
            return preferred
        return candidates[0]


PolicyFactory = Callable[[int], ReplacementPolicy]


class PolicyError(ValueError):
    """Raised for unknown policy names or invalid policy operations."""
