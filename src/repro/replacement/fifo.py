"""First-in first-out replacement.

Not evaluated in the paper but included as a conventional baseline
policy: FIFO only reorders on *fills*, never on hits, so it is the
natural control for measuring how much of the B-Cache's gain comes
from recency information versus from the extra victim choices.
"""

from __future__ import annotations

from repro.replacement.base import PolicyError, ReplacementPolicy


class FIFOPolicy(ReplacementPolicy):
    """Evict in fill order; hits do not refresh a way's position."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._queue: list[int] = []
        self._free: list[int] = list(range(ways))

    def touch(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise PolicyError(f"way {way} out of range 0..{self.ways - 1}")
        if way in self._free:
            self._free.remove(way)
            self._queue.append(way)
        # A hit on a resident way leaves the queue untouched: FIFO.

    def victim(self) -> int:
        if self._free:
            return self._free[0]
        return self._queue[0]

    def invalidate(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise PolicyError(f"way {way} out of range 0..{self.ways - 1}")
        if way in self._queue:
            self._queue.remove(way)
        if way not in self._free:
            self._free.insert(0, way)

    def victim_among(self, candidates: list[int]) -> int:
        if not candidates:
            raise ValueError("candidates must be non-empty")
        free_candidates = [c for c in candidates if c in self._free]
        if free_candidates:
            return free_candidates[0]
        candidate_set = set(candidates)
        for way in self._queue:
            if way in candidate_set:
                return way
        raise PolicyError("candidates contain unknown ways")
