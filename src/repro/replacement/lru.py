"""True least-recently-used replacement.

Maintains an explicit recency order: position 0 is most recently used,
the tail is least recently used.  ``victim_among`` honours the same
order restricted to the candidate subset, which is what the B-Cache
needs when the programmable decoder narrows the victim choice
(Section 2.3 of the paper).
"""

from __future__ import annotations

from repro.replacement.base import PolicyError, ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """Exact LRU over ``ways`` ways."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Most recent first.  Starts in way order so cold caches fill
        # way 0 upward, matching textbook behaviour.
        self._order: list[int] = list(range(ways))

    def touch(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise PolicyError(f"way {way} out of range 0..{self.ways - 1}")
        self._order.remove(way)
        self._order.insert(0, way)

    def victim(self) -> int:
        return self._order[-1]

    def invalidate(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise PolicyError(f"way {way} out of range 0..{self.ways - 1}")
        self._order.remove(way)
        self._order.append(way)

    def victim_among(self, candidates: list[int]) -> int:
        if not candidates:
            raise ValueError("candidates must be non-empty")
        candidate_set = set(candidates)
        for way in reversed(self._order):
            if way in candidate_set:
                return way
        raise PolicyError("candidates contain unknown ways")

    def recency_order(self) -> tuple[int, ...]:
        """Snapshot of the order, most recently used first (for tests)."""
        return tuple(self._order)
