"""Tree pseudo-LRU replacement.

Tree-PLRU is the policy most hardware set-associative caches actually
implement (one bit per internal node of a binary tree over the ways).
It is included as an extension beyond the paper's LRU/random pair so
the replacement-policy ablation bench can show where the B-Cache's
miss-rate reduction sits between exact LRU and cheap approximations.

Requires a power-of-two way count.
"""

from __future__ import annotations

from repro.replacement.base import PolicyError, ReplacementPolicy


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU over ``ways`` ways (power of two)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise PolicyError(f"tree-PLRU requires power-of-two ways, got {ways}")
        # One bit per internal node, heap layout: node 1 is the root,
        # children of node i are 2i and 2i+1.  Bit 0 points left,
        # bit 1 points right, towards the pseudo-LRU leaf.
        self._bits = [0] * (2 * ways)
        self._valid = [False] * ways

    def _leaf(self, way: int) -> int:
        return way + self.ways

    def touch(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise PolicyError(f"way {way} out of range 0..{self.ways - 1}")
        self._valid[way] = True
        node = self._leaf(way)
        while node > 1:
            parent = node >> 1
            # Point the parent *away* from the touched child.
            self._bits[parent] = 0 if node & 1 else 1
            node = parent

    def victim(self) -> int:
        for way, valid in enumerate(self._valid):
            if not valid:
                return way
        node = 1
        while node < self.ways:
            node = (node << 1) | self._bits[node]
        return node - self.ways

    def invalidate(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise PolicyError(f"way {way} out of range 0..{self.ways - 1}")
        self._valid[way] = False

    def victim_among(self, candidates: list[int]) -> int:
        if not candidates:
            raise ValueError("candidates must be non-empty")
        invalid = [c for c in candidates if not self._valid[c]]
        if invalid:
            return invalid[0]
        # Walk the tree but only descend into subtrees containing a
        # candidate; prefer the pseudo-LRU direction when possible.
        candidate_set = set(candidates)

        def subtree_has_candidate(node: int) -> bool:
            if node >= self.ways:
                return (node - self.ways) in candidate_set
            return subtree_has_candidate(node << 1) or subtree_has_candidate((node << 1) | 1)

        node = 1
        while node < self.ways:
            preferred = (node << 1) | self._bits[node]
            other = preferred ^ 1
            node = preferred if subtree_has_candidate(preferred) else other
        return node - self.ways
