"""Seeded random replacement.

The paper evaluates random replacement as the cheap alternative to LRU
for the B-Cache (Section 3.3): "The random policy is simple to design
and needs trivial extra hardware."  Invalid ways are preferred so a
cold structure fills before evicting anything, which every hardware
random policy also guarantees via valid bits.
"""

from __future__ import annotations

import random

from repro.replacement.base import PolicyError, ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Random victim selection with an explicit free pool."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._rng = random.Random(seed)
        self._free: set[int] = set(range(ways))

    def touch(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise PolicyError(f"way {way} out of range 0..{self.ways - 1}")
        self._free.discard(way)

    def victim(self) -> int:
        if self._free:
            return min(self._free)
        return self._rng.randrange(self.ways)

    def invalidate(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise PolicyError(f"way {way} out of range 0..{self.ways - 1}")
        self._free.add(way)

    def victim_among(self, candidates: list[int]) -> int:
        if not candidates:
            raise ValueError("candidates must be non-empty")
        free_candidates = [c for c in candidates if c in self._free]
        if free_candidates:
            return free_candidates[0]
        return self._rng.choice(candidates)
