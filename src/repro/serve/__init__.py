"""``repro.serve`` — the simulation engine as a network service.

Five pieces (see ``docs/serve.md``):

* :mod:`repro.serve.protocol` — length-prefixed JSON framing with a
  sans-IO incremental decoder and asyncio stream helpers;
* :mod:`repro.serve.workers` — persistent sharded worker processes with
  trace-affinity routing, restart-on-crash and in-process fallback;
* :mod:`repro.serve.batcher` — the micro-batching coalescer that turns
  many concurrent ``simulate`` requests into few worker round-trips;
* :mod:`repro.serve.server` — the ``bcache-serve`` asyncio TCP/Unix
  server: admission control, load shedding, graceful SIGTERM drain;
* :mod:`repro.serve.client` / :mod:`repro.serve.loadgen` — blocking and
  asyncio clients, plus the ``bcache-loadgen`` benchmark harness behind
  ``BENCH_serve.json``.

Served statistics are **bit-identical** to a local
``Cache.access_trace`` replay of the same job: the shards run the very
:func:`repro.engine.runner.execute_job` path every CLI tool uses.
"""

from repro.serve.batcher import BatchMetrics, MicroBatcher, SimulationError
from repro.serve.client import (
    AsyncServeClient,
    DrainingError,
    OverloadedError,
    ServeClient,
    ServeError,
    parse_address,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.server import ServeConfig, SimServer
from repro.serve.workers import ShardPool

__all__ = [
    "AsyncServeClient",
    "BatchMetrics",
    "DrainingError",
    "FrameDecoder",
    "FrameTooLarge",
    "MAX_FRAME_BYTES",
    "MicroBatcher",
    "OverloadedError",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ShardPool",
    "SimServer",
    "SimulationError",
    "decode_payload",
    "encode_frame",
    "parse_address",
    "read_frame",
    "write_frame",
]
