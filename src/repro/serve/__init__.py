"""``repro.serve`` — the simulation engine as a network service.

Eight pieces (see ``docs/serve.md`` and ``docs/gateway.md``):

* :mod:`repro.serve.protocol` — length-prefixed JSON framing with a
  sans-IO incremental decoder and asyncio stream helpers;
* :mod:`repro.serve.workers` — persistent sharded worker processes with
  trace-affinity routing, restart-on-crash and in-process fallback;
* :mod:`repro.serve.batcher` — the micro-batching coalescer that turns
  many concurrent ``simulate`` requests into few worker round-trips,
  with cross-window singleflight on identical jobs;
* :mod:`repro.serve.resultcache` — the content-addressed result cache
  (canonical job keys, engine fingerprint invalidation, memory LRU over
  a crash-safe CRC-framed disk tier) and the :class:`Singleflight`
  request collapser;
* :mod:`repro.serve.admission` — per-client token-bucket rate limiting
  and weighted fair queueing in front of the in-flight budget;
* :mod:`repro.serve.server` — the ``bcache-serve`` asyncio TCP/Unix
  server: admission control, load shedding, graceful SIGTERM drain;
* :mod:`repro.serve.gateway` — the ``bcache-gateway`` HTTP/1.1 + JSON
  front end (NDJSON-streamed sweeps, ``Retry-After`` on overload);
* :mod:`repro.serve.client` / :mod:`repro.serve.loadgen` — blocking and
  asyncio clients, plus the ``bcache-loadgen`` benchmark harness behind
  ``BENCH_serve.json``.

Served statistics are **bit-identical** to a local
``Cache.access_trace`` replay of the same job: the shards run the very
:func:`repro.engine.runner.execute_job` path every CLI tool uses.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionOverload,
    RateLimited,
    TokenBucket,
)
from repro.serve.batcher import BatchMetrics, MicroBatcher, SimulationError
from repro.serve.client import (
    AsyncServeClient,
    DrainingError,
    OverloadedError,
    RateLimitedError,
    ServeClient,
    ServeError,
    parse_address,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.resultcache import (
    CacheKeyError,
    ResultCache,
    Singleflight,
    canonical_job_key,
    engine_fingerprint,
    job_hash,
)
from repro.serve.server import ServeConfig, SimServer
from repro.serve.workers import ShardPool

#: Gateway exports resolved lazily so ``python -m repro.serve.gateway``
#: does not import the module twice (runpy would warn and the CLI ready
#: line would no longer be the first stdout line).
_GATEWAY_EXPORTS = ("Gateway", "GatewayConfig", "RequestDecoder")


def __getattr__(name: str) -> object:
    if name in _GATEWAY_EXPORTS:
        from repro.serve import gateway

        return getattr(gateway, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdmissionController",
    "AdmissionOverload",
    "AsyncServeClient",
    "BatchMetrics",
    "CacheKeyError",
    "DrainingError",
    "FrameDecoder",
    "FrameTooLarge",
    "Gateway",
    "GatewayConfig",
    "MAX_FRAME_BYTES",
    "MicroBatcher",
    "OverloadedError",
    "ProtocolError",
    "RateLimited",
    "RateLimitedError",
    "RequestDecoder",
    "ResultCache",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ShardPool",
    "SimServer",
    "SimulationError",
    "Singleflight",
    "TokenBucket",
    "canonical_job_key",
    "decode_payload",
    "encode_frame",
    "engine_fingerprint",
    "job_hash",
    "parse_address",
    "read_frame",
    "write_frame",
]
