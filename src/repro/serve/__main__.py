"""``python -m repro.serve`` starts the simulation server."""

from repro.serve.server import main

if __name__ == "__main__":
    raise SystemExit(main())
