"""Admission control for the serving tier: rate limits + fair queueing.

The server's original admission story was a single bounded in-flight
budget (``max_pending``): a request that would exceed it was shed with
an ``overloaded`` error.  That bounds memory, but under overload it is
first-come-first-served — one hot client hammering the socket starves
everyone else, and every polite client sees the same shed storm.

This module layers two classic mechanisms in front of that budget:

* **Per-client token buckets** (:class:`TokenBucket`) — each client
  identity accrues ``rate`` job tokens per second up to a ``burst``
  ceiling; a request arriving without tokens is rejected immediately
  with a computed ``retry_after``, which the gateway surfaces as HTTP
  429 + ``Retry-After``.  The clock is monotonic and injectable, so
  tests are deterministic.
* **Weighted fair queueing** (:class:`AdmissionController`) — when the
  in-flight budget is exhausted, admitted-but-waiting requests park in
  bounded per-client FIFO queues and budget slots freed by completions
  are granted **round-robin across clients** (optionally weighted), so
  a flood from one client costs that client, not its neighbours.  Each
  queue is bounded in depth and in wait time; overflow and timeout shed
  with ``overloaded`` exactly like the original path — queueing here is
  a fairness device, never an unbounded buffer.

Everything is single-event-loop state (plain dicts and deques); the
server calls :meth:`AdmissionController.acquire`/``release`` from its
request coroutines.

**Trust model.** Client identity defaults to the peer address but may
be overridden by the request payload (``client`` field, or the
gateway's ``x-bcache-client`` header), and that override is *not*
authenticated.  Per-client rate limiting is therefore a fairness
device for cooperating clients, not a security boundary: an
adversarial caller can rotate identities to mint fresh burst budgets.
The bucket table is LRU-bounded (``max_clients``) so identity rotation
cannot grow server memory without bound, and the global ``max_pending``
budget still caps total work regardless of how identities are spread.
Deployments that need enforceable per-tenant limits must authenticate
the identity upstream (or strip the override and key on peer address).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import instrument as _obs

#: Client identity used when a connection offers none.
ANONYMOUS = "anon"


class RateLimited(Exception):
    """The client is over its token budget; retry after ``retry_after``."""

    def __init__(self, client: str, retry_after: float) -> None:
        super().__init__(
            f"client {client!r} is over its rate limit; "
            f"retry in {retry_after:.3f}s"
        )
        self.client = client
        self.retry_after = retry_after


class AdmissionOverload(Exception):
    """The request cannot be queued fairly; shed it (``overloaded``)."""


@dataclass(slots=True)
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``.

    ``try_acquire`` returns ``0.0`` when the tokens were taken, else
    the seconds until enough tokens will have accrued (the caller's
    ``Retry-After``).  Time is supplied by the caller so the bucket is
    clock-agnostic and deterministic under test.
    """

    rate: float
    burst: float
    tokens: float = 0.0
    updated: float = field(default=-1.0)

    def try_acquire(self, amount: float, now: float) -> float:
        if self.updated < 0.0:  # first sight of this client: full burst
            self.tokens = self.burst
            self.updated = now
        elif now > self.updated:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated) * self.rate
            )
            self.updated = now
        if self.tokens >= amount:
            self.tokens -= amount
            return 0.0
        if self.rate <= 0.0:
            return float("inf")
        return (amount - self.tokens) / self.rate


@dataclass(slots=True)
class _Waiter:
    """One queued admission: jobs wanted plus the grant future."""

    jobs: int
    future: asyncio.Future[None]


class AdmissionController:
    """Token-bucket rate limiting + weighted fair queueing + shedding.

    Args:
        max_pending: in-flight job budget (the original shed threshold).
        rate: per-client token refill in jobs/second; ``0`` disables
            rate limiting entirely.
        burst: per-client token ceiling (defaults to ``rate`` when
            unset, minimum 1 token).
        queue_depth: per-client bounded wait queue; ``0`` restores the
            original immediate-shed behaviour.
        queue_timeout: max seconds a request may wait for a slot before
            being shed — the explicit bound on queueing delay.
        weights: optional per-client grant weights (grants per
            round-robin turn; default 1).
        max_clients: bound on tracked client identities; beyond it the
            least-recently-seen bucket is evicted (identity is
            caller-supplied and unauthenticated, so the table must not
            grow with the number of identities a caller invents — see
            the module docstring's trust model).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_pending: int,
        *,
        rate: float = 0.0,
        burst: float = 0.0,
        queue_depth: int = 0,
        queue_timeout: float = 2.0,
        weights: dict[str, int] | None = None,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_pending = max(1, max_pending)
        self.rate = max(0.0, rate)
        self.burst = max(1.0, burst if burst > 0.0 else self.rate)
        self.queue_depth = max(0, queue_depth)
        self.queue_timeout = max(0.0, queue_timeout)
        self.weights = dict(weights) if weights else {}
        self.max_clients = max(1, max_clients)
        self._clock = clock
        self._inflight = 0
        #: client -> token bucket, most-recently-seen last (LRU order).
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self.buckets_evicted = 0
        #: client -> FIFO of waiters; OrderedDict doubles as the
        #: round-robin rotation order (move_to_end after each grant).
        self._queues: "OrderedDict[str, deque[_Waiter]]" = OrderedDict()
        self.rate_limited = 0
        self.queued = 0
        self.shed_queue_full = 0
        self.shed_timeout = 0

    # -- introspection --------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    def waiting(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def snapshot(self) -> dict[str, Any]:
        """Counters for the server's ``status`` response."""
        return {
            "rate": self.rate,
            "burst": self.burst,
            "queue_depth": self.queue_depth,
            "queue_timeout": self.queue_timeout,
            "inflight": self._inflight,
            "waiting": self.waiting(),
            "clients_tracked": len(self._buckets),
            "max_clients": self.max_clients,
            "buckets_evicted": self.buckets_evicted,
            "rate_limited": self.rate_limited,
            "queued": self.queued,
            "shed_queue_full": self.shed_queue_full,
            "shed_timeout": self.shed_timeout,
        }

    # -- admission ------------------------------------------------------
    async def acquire(self, client: str, jobs: int) -> None:
        """Admit ``jobs`` for ``client`` or raise.

        Raises :class:`RateLimited` when the client's bucket is dry and
        :class:`AdmissionOverload` when the budget is exhausted and the
        request cannot be queued (depth or wait bound exceeded).  On
        return the jobs are accounted in flight; the caller must pair
        with :meth:`release`.
        """
        client = client or ANONYMOUS
        if self.rate > 0.0:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(rate=self.rate, burst=self.burst)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
                    self.buckets_evicted += 1
            else:
                self._buckets.move_to_end(client)
            retry_after = bucket.try_acquire(float(jobs), self._clock())
            if retry_after > 0.0:
                self.rate_limited += 1
                _obs.admission_shed("rate_limited", client)
                raise RateLimited(client, retry_after)
        if self._fits(jobs) and not self._queues:
            self._inflight += jobs
            return
        if self.queue_depth <= 0:
            _obs.admission_shed("budget", client)
            raise AdmissionOverload(
                f"in-flight job budget ({self.max_pending}) exhausted"
            )
        queue = self._queues.get(client)
        if queue is None:
            queue = deque()
            self._queues[client] = queue
        if len(queue) >= self.queue_depth:
            self.shed_queue_full += 1
            _obs.admission_shed("queue_full", client)
            if not queue:
                self._queues.pop(client, None)
            raise AdmissionOverload(
                f"client {client!r} wait queue is full ({self.queue_depth})"
            )
        waiter = _Waiter(
            jobs=jobs, future=asyncio.get_running_loop().create_future()
        )
        queue.append(waiter)
        self.queued += 1
        started = self._clock()
        try:
            await asyncio.wait_for(waiter.future, self.queue_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            self._discard(client, waiter)
            self.shed_timeout += 1
            _obs.admission_shed("timeout", client)
            raise AdmissionOverload(
                f"no capacity within {self.queue_timeout:g}s"
            ) from None
        except asyncio.CancelledError:
            self._discard(client, waiter)
            raise
        _obs.admission_waited(self._clock() - started)

    def release(self, jobs: int) -> None:
        """Return ``jobs`` worth of budget and grant queued waiters."""
        self._inflight = max(0, self._inflight - jobs)
        self._grant_round_robin()

    # -- internals ------------------------------------------------------
    def _fits(self, jobs: int) -> bool:
        return self._inflight + jobs <= self.max_pending

    def _discard(self, client: str, waiter: _Waiter) -> None:
        queue = self._queues.get(client)
        if queue is None:
            return
        try:
            queue.remove(waiter)
        except ValueError:
            pass
        if not queue:
            self._queues.pop(client, None)

    def _grant_round_robin(self) -> None:
        """Hand freed budget to waiters, one fair turn per client.

        Each pass grants every queued client up to its weight in
        requests (head of its FIFO first) while budget lasts.  A client
        that received a grant rotates to the back; a client whose head
        request did not fit keeps its place at the front, so the next
        freed slot goes to it, not back to whoever drained the budget.
        """
        progressed = True
        while progressed and self._queues:
            progressed = False
            for client in list(self._queues):
                queue = self._queues.get(client)
                if not queue:
                    self._queues.pop(client, None)
                    continue
                turns = max(1, self.weights.get(client, 1))
                granted = False
                for _ in range(turns):
                    if not queue:
                        break
                    head = queue[0]
                    if head.future.done():  # timed out / cancelled
                        queue.popleft()
                        progressed = True
                        continue
                    if not self._fits(head.jobs):
                        break
                    queue.popleft()
                    self._inflight += head.jobs
                    head.future.set_result(None)
                    progressed = True
                    granted = True
                if not queue:
                    self._queues.pop(client, None)
                elif granted:
                    self._queues.move_to_end(client)
