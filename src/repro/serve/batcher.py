"""Micro-batching coalescer: many small requests, few worker round-trips.

Concurrent ``simulate`` requests are cheap individually but expensive
collectively if each one pays a worker-pipe round-trip.  The batcher
holds each admitted job for at most ``window`` seconds and flushes
everything that accumulated for a shard as **one** batch message, which
the shard replays through the ``access_trace`` batch kernels job by
job.  Two levels of coalescing happen:

* **Identical-job coalescing** — requests for the *same* deterministic
  job (same spec, benchmark, side, n, seed, geometry, policy) attach to
  one pending entry and share a single execution; every waiter gets the
  same snapshot.  Simulations are pure functions of the job, so this is
  semantically invisible.  Jobs are identified by the **canonical** key
  of :func:`repro.serve.resultcache.canonical_job_key` (sorted keys,
  fixed separators, normalised scalars) so representation drift cannot
  split one logical job across two entries.
* **Cross-window singleflight** — coalescing does not stop when the
  window closes: a job whose batch is already executing keeps accepting
  waiters until its result lands, so a burst of identical requests
  spanning many windows still costs one execution.
* **Batch coalescing** — distinct jobs bound for the same shard within
  the window travel in one pipe message, amortising IPC and scheduling.

The flush trigger is whichever comes first: the window timer, or the
pending set reaching ``max_batch`` entries.  Metrics
(:class:`BatchMetrics`) feed the server's ``status`` response — the
``mean_batch_size`` counter is how the load generator proves the
batcher actually coalesces under concurrency.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from repro.engine.runner import SweepJob
from repro.obs import events as obs_events
from repro.obs import instrument as _obs
from repro.obs.tracectx import TraceContext
from repro.serve.resultcache import canonical_job_key
from repro.serve.workers import ShardPool


class SimulationError(RuntimeError):
    """A worker reported a job failure (bad spec, trace error, ...)."""


@dataclass(slots=True)
class BatchMetrics:
    """Coalescing counters (exported via the ``status`` op)."""

    requests: int = 0  #: jobs admitted to the batcher
    coalesced: int = 0  #: requests that piggybacked on an identical pending job
    coalesced_inflight: int = 0  #: ...of which joined an already-executing batch
    batches: int = 0  #: worker round-trips
    batched_jobs: int = 0  #: distinct jobs sent across all batches
    batch_errors: int = 0  #: jobs whose worker reported an error

    @property
    def mean_batch_size(self) -> float:
        """Admitted requests per worker round-trip (> 1 means coalescing)."""
        if not self.batches:
            return 0.0
        return self.requests / self.batches

    def snapshot(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "coalesced_inflight": self.coalesced_inflight,
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "batch_errors": self.batch_errors,
            "mean_batch_size": round(self.mean_batch_size, 3),
        }


@dataclass(slots=True)
class _Entry:
    """One distinct pending job and everyone waiting on it."""

    job: SweepJob
    futures: list = field(default_factory=list)
    requests: int = 0
    #: per-waiter ``(trace context or None, submit time)`` — feeds the
    #: batch_window/shard stage attribution when the batch retires.
    waiters: list[tuple[TraceContext | None, float]] = field(
        default_factory=list
    )


class MicroBatcher:
    """Gather concurrent jobs per shard; flush as single batches.

    Args:
        pool: the shard pool executing the batches.
        window: max seconds a job waits for company before its shard's
            pending set is flushed.
        max_batch: pending-entry count that forces an immediate flush.
    """

    def __init__(
        self, pool: ShardPool, window: float = 0.002, max_batch: int = 64
    ) -> None:
        self.pool = pool
        self.window = window
        self.max_batch = max(1, max_batch)
        self.metrics = BatchMetrics()
        self._pending: dict[int, dict[str, _Entry]] = {}
        #: canonical key -> entry whose batch is currently executing;
        #: late identical requests attach here (cross-window singleflight).
        self._executing: dict[str, _Entry] = {}
        self._timers: dict[int, asyncio.Task] = {}
        self._inflight: set[asyncio.Task] = set()

    # -- submission ----------------------------------------------------
    async def submit(
        self, job: SweepJob, trace: TraceContext | None = None
    ) -> dict[str, Any]:
        """Queue one job; returns its ``CacheStats.snapshot()`` dict.

        ``trace`` attributes this waiter's batch-window and shard time
        to its request's distributed trace.

        Raises :class:`SimulationError` if the worker reports a failure
        for this job.
        """
        loop = asyncio.get_running_loop()
        key = canonical_job_key(job)
        self.metrics.requests += 1
        executing = self._executing.get(key)
        if executing is not None:
            # The job is already on a worker; ride that execution.
            self.metrics.coalesced += 1
            self.metrics.coalesced_inflight += 1
            future: asyncio.Future = loop.create_future()
            executing.futures.append(future)
            executing.requests += 1
            executing.waiters.append((trace, time.monotonic()))
            return await future
        shard = self.pool.shard_of(job)
        bucket = self._pending.setdefault(shard, {})
        entry = bucket.get(key)
        if entry is None:
            entry = _Entry(job=job)
            bucket[key] = entry
        else:
            self.metrics.coalesced += 1
        future = loop.create_future()
        entry.futures.append(future)
        entry.requests += 1
        entry.waiters.append((trace, time.monotonic()))
        if len(bucket) >= self.max_batch:
            self._flush_shard(shard)
        elif shard not in self._timers:
            self._timers[shard] = loop.create_task(self._flush_after(shard))
        return await future

    # -- flushing ------------------------------------------------------
    async def _flush_after(self, shard: int) -> None:
        await asyncio.sleep(self.window)
        self._timers.pop(shard, None)
        self._launch_flush(shard)

    def _flush_shard(self, shard: int) -> None:
        """Immediate flush (max_batch hit or drain): cancel the timer."""
        timer = self._timers.pop(shard, None)
        if timer is not None and not timer.done():
            timer.cancel()
        self._launch_flush(shard)

    def _launch_flush(self, shard: int) -> None:
        bucket = self._pending.pop(shard, None)
        if not bucket:
            return
        # From here until the batch resolves, identical submissions
        # attach to these entries instead of queueing a re-execution.
        self._executing.update(bucket)
        task = asyncio.get_running_loop().create_task(
            self._run_batch(shard, bucket)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, shard: int, bucket: dict[str, _Entry]) -> None:
        entries = list(bucket.values())
        self.metrics.batches += 1
        self.metrics.batched_jobs += len(entries)
        # Registry-only telemetry: no file I/O on the event loop (BCL011).
        _obs.serve_batch_observed(len(entries), self.max_batch, shard)
        flush_start = time.monotonic()
        flushed = [len(entry.waiters) for entry in entries]
        shard_ctxs = [self._close_windows(entry, flush_start)
                      for entry in entries]
        try:
            jobs = [entry.job for entry in entries]
            if any(ctx is not None for ctx in shard_ctxs):
                results = await self.pool.run_batch(
                    shard,
                    jobs,
                    traces=[ctx.to_wire() if ctx is not None else None
                            for ctx in shard_ctxs],
                )
            else:
                # Untraced batches keep the legacy call shape so duck-typed
                # pools (and REPRO_OBS=off) see no interface change.
                results = await self.pool.run_batch(shard, jobs)
        except Exception as exc:
            self._retire(bucket)
            for entry in entries:
                self._resolve(entry, "error", f"batch failed: {exc}")
            return
        end = time.monotonic()
        # Retire before resolving, in one scheduling step: once a
        # future resolves nobody may attach to its entry anymore.
        self._retire(bucket)
        for entry, ctx, seen in zip(entries, shard_ctxs, flushed):
            self._emit_shard_stages(entry, ctx, seen, shard, flush_start, end)
        for entry, (status, payload) in zip(entries, results):
            self._resolve(entry, status, payload)

    @staticmethod
    def _close_windows(
        entry: _Entry, flush_start: float
    ) -> TraceContext | None:
        """Record each waiter's gather-window wait; derive the shard span.

        Returns the entry's pre-derived ``shard`` stage context (the
        first sampled waiter's child) so the worker can parent its
        ``kernel`` span under it — the shard record itself is emitted
        by :meth:`_emit_shard_stages` once the round trip lands.
        """
        ctx: TraceContext | None = None
        for waiter_trace, submitted in entry.waiters:
            _obs.stage_event(
                "batch_window",
                max(0.0, flush_start - submitted),
                trace=waiter_trace,
            )
            if ctx is None and waiter_trace is not None and waiter_trace.sampled:
                ctx = waiter_trace.child("stage.shard")
        return ctx

    def _emit_shard_stages(
        self,
        entry: _Entry,
        ctx: TraceContext | None,
        seen: int,
        shard: int,
        flush_start: float,
        end: float,
    ) -> None:
        """Attribute the worker round trip to every waiter's trace.

        The first sampled waiter owns the pre-derived context ``ctx``
        (the kernel span's parent); every other waiter gets its own
        shard span.  Late attachers (cross-window singleflight, index
        ``>= seen``) are billed from their attach time, not the flush.
        """
        leader_pending = ctx is not None
        for index, (waiter_trace, submitted) in enumerate(entry.waiters):
            start = flush_start if index < seen else submitted
            seconds = max(0.0, end - start)
            if (leader_pending and waiter_trace is not None
                    and waiter_trace.sampled):
                leader_pending = False
                assert ctx is not None
                obs_events.emit_raw(
                    _obs.stage_record_for("shard", ctx, seconds, shard=shard)
                )
            else:
                _obs.stage_event(
                    "shard", seconds, trace=waiter_trace, shard=shard
                )

    def _retire(self, bucket: dict[str, _Entry]) -> None:
        for key, entry in bucket.items():
            if self._executing.get(key) is entry:
                self._executing.pop(key, None)

    def _resolve(self, entry: _Entry, status: str, payload: Any) -> None:
        if status != "ok":
            self.metrics.batch_errors += 1
        for future in entry.futures:
            if future.done():  # waiter disconnected / cancelled
                continue
            if status == "ok":
                future.set_result(payload)
            else:
                future.set_exception(SimulationError(str(payload)))

    # -- drain ---------------------------------------------------------
    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight batches."""
        for shard in list(self._pending):
            self._flush_shard(shard)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    @property
    def pending_jobs(self) -> int:
        """Distinct jobs currently waiting for a flush."""
        return sum(len(bucket) for bucket in self._pending.values())
