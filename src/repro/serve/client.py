"""Client library for the ``bcache-serve`` simulation service.

Two flavours over the same length-prefixed JSON protocol:

* :class:`ServeClient` — blocking sockets, for scripts, tests and
  ``bcache-sim --connect``.  One request at a time per connection.
* :class:`AsyncServeClient` — asyncio streams, used by the load
  generator to keep hundreds of requests in flight.

Both return real :class:`~repro.stats.counters.CacheStats` objects
rebuilt from the server's snapshots, so a served result compares
``==`` (bit-identical, per-set counters included) against a local
``access_trace`` replay of the same job.

Addresses are given as ``host:port`` or ``unix:/path/to.sock`` (a bare
path containing ``/`` also works).

Both flavours carry deadlines: ``connect(...)`` takes separate
``connect_timeout``/``timeout`` (read) knobs, every ``request`` accepts
a per-call ``timeout=`` override, and a hung server surfaces as
:class:`TimeoutError` instead of blocking the caller forever.
:meth:`ServeClient.connect_with_backoff` retries a refused/unreachable
endpoint under a seeded :class:`~repro.engine.resilience.RetryPolicy`.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import asdict
from random import Random
from typing import Any, Sequence

from repro.engine.runner import SweepJob
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.stats.counters import CacheStats


class ServeError(RuntimeError):
    """The server answered with an error response."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class OverloadedError(ServeError):
    """The server shed this request (bounded queue full); retry later."""


class RateLimitedError(ServeError):
    """The client is over its admission rate; retry after ``retry_after``."""

    def __init__(
        self, code: str, detail: str = "", retry_after: float = 1.0
    ) -> None:
        super().__init__(code, detail)
        self.retry_after = retry_after


class DrainingError(ServeError):
    """The server is draining and no longer accepts work."""


def parse_address(address: str) -> tuple[str, Any]:
    """``host:port`` / ``unix:/path`` → ``("tcp", (host, port))`` / ``("unix", path)``."""
    if address.startswith("unix:"):
        return ("unix", address[len("unix:"):])
    if ":" in address:
        host, _, port_text = address.rpartition(":")
        try:
            return ("tcp", (host or "127.0.0.1", int(port_text)))
        except ValueError:
            pass
    if "/" in address:
        return ("unix", address)
    raise ValueError(
        f"bad server address {address!r}; use host:port or unix:/path.sock"
    )


def _raise_for_error(response: dict[str, Any]) -> None:
    if response.get("ok"):
        return
    code = str(response.get("error", "unknown_error"))
    detail = str(response.get("detail", ""))
    if code == "overloaded":
        raise OverloadedError(code, detail)
    if code == "rate_limited":
        retry_after = response.get("retry_after", 1.0)
        raise RateLimitedError(
            code,
            detail,
            float(retry_after) if isinstance(retry_after, (int, float)) else 1.0,
        )
    if code == "draining":
        raise DrainingError(code, detail)
    raise ServeError(code, detail)


def _job_payload(job: SweepJob | dict[str, Any]) -> dict[str, Any]:
    return asdict(job) if isinstance(job, SweepJob) else dict(job)


def _stats_from(response: dict[str, Any]) -> CacheStats:
    _raise_for_error(response)
    return CacheStats.from_snapshot(response["stats"])


def _sweep_stats_from(response: dict[str, Any]) -> list[CacheStats]:
    _raise_for_error(response)
    return [_stats_from(entry) for entry in response["results"]]


class ServeClient:
    """Blocking client; one in-flight request per connection.

    Usage::

        with ServeClient.connect("127.0.0.1:4006") as client:
            stats = client.simulate(SweepJob(spec="mf8_bas8", benchmark="gcc"))
    """

    def __init__(
        self,
        sock: socket.socket,
        max_frame: int = MAX_FRAME_BYTES,
        timeout: float | None = 30.0,
    ) -> None:
        self._sock = sock
        self._decoder = FrameDecoder(max_frame)
        self.max_frame = max_frame
        self.timeout = timeout

    @classmethod
    def connect(
        cls,
        address: str,
        timeout: float | None = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
        connect_timeout: float | None = None,
    ) -> "ServeClient":
        """Open a connection; ``timeout`` bounds every later read/write.

        ``connect_timeout`` bounds the TCP/Unix connect handshake only
        and defaults to ``timeout`` — a fleet coordinator wants a short
        connect deadline (is the node there at all?) but a generous
        request deadline (a sweep batch takes real time).
        """
        kind, target = parse_address(address)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(connect_timeout if connect_timeout is not None else timeout)
        try:
            sock.connect(target)
        except OSError:
            sock.close()
            raise
        sock.settimeout(timeout)
        return cls(sock, max_frame, timeout)

    @classmethod
    def connect_with_backoff(
        cls,
        address: str,
        timeout: float | None = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
        connect_timeout: float | None = None,
        *,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        seed: int = 2006,
    ) -> "ServeClient":
        """:meth:`connect`, retrying refused/unreachable endpoints.

        Backoff follows the engine's seeded
        :class:`~repro.engine.resilience.RetryPolicy` (exponential with
        deterministic jitter), so reconnect storms from many clients
        de-synchronise reproducibly.  Raises the last ``OSError`` once
        ``attempts`` connection attempts have failed.
        """
        from repro.engine.resilience import RetryPolicy

        policy = RetryPolicy(
            max_attempts=attempts, base_delay=base_delay, max_delay=max_delay
        )
        rng = Random(seed)
        last_error: OSError | None = None
        for attempt in range(max(1, attempts)):
            try:
                return cls.connect(
                    address, timeout, max_frame, connect_timeout=connect_timeout
                )
            except OSError as exc:
                last_error = exc
                if attempt + 1 < max(1, attempts):
                    time.sleep(policy.delay(attempt, rng))
        assert last_error is not None
        raise last_error

    # -- low level -----------------------------------------------------
    def request(
        self, payload: dict[str, Any], timeout: float | None = None
    ) -> dict[str, Any]:
        """Send one request frame and block for its response frame.

        ``timeout`` overrides the connection's read deadline for this
        request only; a quiet server raises :class:`TimeoutError` when
        the deadline passes instead of blocking forever.
        """
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.sendall(encode_frame(payload, self.max_frame))
            while True:
                chunk = self._sock.recv(65536)
                if not chunk:
                    raise ProtocolError("server closed the connection mid-response")
                frames = self._decoder.feed(chunk)
                if frames:
                    return frames[0]
        finally:
            if timeout is not None:
                self._sock.settimeout(self.timeout)

    # -- ops -----------------------------------------------------------
    def simulate(self, job: SweepJob | dict[str, Any]) -> CacheStats:
        return _stats_from(self.request({"op": "simulate", **_job_payload(job)}))

    def sweep(
        self,
        jobs: Sequence[SweepJob | dict[str, Any]],
        trace: str | None = None,
    ) -> list[CacheStats]:
        payload: dict[str, Any] = {
            "op": "sweep",
            "jobs": [_job_payload(job) for job in jobs],
        }
        if trace:
            payload["trace"] = trace
        return _sweep_stats_from(self.request(payload))

    def status(self) -> dict[str, Any]:
        response = self.request({"op": "status"})
        _raise_for_error(response)
        return response

    def drain(self) -> dict[str, Any]:
        response = self.request({"op": "drain"})
        _raise_for_error(response)
        return response

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncServeClient:
    """asyncio client; one in-flight request per connection.

    Open many instances for concurrency — the load generator opens one
    per simulated user.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = MAX_FRAME_BYTES,
        timeout: float | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.max_frame = max_frame
        self.timeout = timeout

    @classmethod
    async def connect(
        cls,
        address: str,
        max_frame: int = MAX_FRAME_BYTES,
        timeout: float | None = None,
        connect_timeout: float | None = 10.0,
    ) -> "AsyncServeClient":
        """Open a connection; ``connect_timeout`` bounds the handshake.

        ``timeout`` becomes the default per-request deadline (``None``
        keeps the historical unbounded behaviour for trusted local
        servers; fleet callers should always set one).
        """
        kind, target = parse_address(address)
        if kind == "unix":
            open_coro = asyncio.open_unix_connection(target)
        else:
            open_coro = asyncio.open_connection(target[0], target[1])
        reader, writer = await asyncio.wait_for(open_coro, connect_timeout)
        return cls(reader, writer, max_frame, timeout)

    async def request(
        self, payload: dict[str, Any], timeout: float | None = None
    ) -> dict[str, Any]:
        """One round trip; raises ``TimeoutError`` past the deadline.

        The effective deadline is the per-call ``timeout`` or the
        connection default; it covers the write and the full response
        read, so a server that accepts the request and then hangs still
        surfaces within the deadline.
        """
        deadline = timeout if timeout is not None else self.timeout
        response = await asyncio.wait_for(self._round_trip(payload), deadline)
        if response is None:
            raise ProtocolError("server closed the connection mid-response")
        return response

    async def _round_trip(self, payload: dict[str, Any]) -> dict[str, Any] | None:
        await write_frame(self._writer, payload, self.max_frame)
        return await read_frame(self._reader, self.max_frame)

    async def simulate(self, job: SweepJob | dict[str, Any]) -> CacheStats:
        return _stats_from(await self.request({"op": "simulate", **_job_payload(job)}))

    async def sweep(
        self,
        jobs: Sequence[SweepJob | dict[str, Any]],
        trace: str | None = None,
    ) -> list[CacheStats]:
        payload: dict[str, Any] = {
            "op": "sweep",
            "jobs": [_job_payload(job) for job in jobs],
        }
        if trace:
            payload["trace"] = trace
        return _sweep_stats_from(await self.request(payload))

    async def status(self) -> dict[str, Any]:
        response = await self.request({"op": "status"})
        _raise_for_error(response)
        return response

    async def drain(self) -> dict[str, Any]:
        response = await self.request({"op": "drain"})
        _raise_for_error(response)
        return response

    def abort(self) -> None:
        """Close the transport immediately, without awaiting teardown.

        Unlike :meth:`close` this never suspends, so it is safe from a
        ``CancelledError`` handler (a cancelled caller must not be
        interrupted again mid-cleanup).
        """
        self._writer.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
