"""``bcache-gateway`` — HTTP/1.1 + JSON front end for ``bcache-serve``.

The native serve protocol (length-prefixed JSON frames) is ideal for
trusted, long-lived clients but useless for a browser, a ``curl`` one
liner, or a fleet of short-lived lambda-style callers.  This gateway
terminates plain HTTP/1.1 on the stdlib asyncio stack — no third-party
web framework — and proxies onto a ``bcache-serve`` backend over a
small pool of persistent native connections.

Routes:

* ``POST /v1/simulate`` — body is one job description (the same fields
  as the native ``simulate`` op, optionally ``client``); answers the
  full ``CacheStats`` snapshot as JSON.
* ``POST /v1/sweep`` — body is ``{"jobs": [...]}``; the response is
  **NDJSON streamed with chunked transfer encoding**: one line per job
  *in completion order* (each tagged with its ``index``), then a final
  summary line.  A slow job never blocks the lines of finished jobs.
* ``GET /v1/status`` — the backend's ``status`` response.
* ``GET /metrics`` — this process's Prometheus registry concatenated
  with the backend's (fetched via the native ``metrics`` op), so one
  scrape covers both tiers.
* ``GET /healthz`` — liveness probe.

Error mapping (HTTP is the contract, native codes are the source):
``bad_request`` → 400, ``rate_limited``/``overloaded`` → 429 with a
``Retry-After`` header, ``draining`` → 503, ``simulation_failed`` →
500, backend unreachable → 502, backend deadline → 504.

HTTP parsing follows the repo's **sans-IO** discipline
(:class:`RequestDecoder` mirrors ``protocol.FrameDecoder``): bytes in,
parsed requests out, no sockets inside the parser — so the parser is
unit-testable without a loop and the connection handler stays a thin
pump.  Request bodies require ``Content-Length`` (no request chunking)
and are bounded, as are header blocks; both bounds reject from the
header alone.

On SIGTERM the gateway drains: the listener closes, in-flight requests
finish and are answered, backend connections close, exit 0.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import math
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs import events as obs_events
from repro.obs import instrument as _obs
from repro.obs import tracectx
from repro.obs.exposition import CONTENT_TYPE, render
from repro.obs.metrics import default_registry
from repro.obs.tracectx import TraceContext
from repro.serve.client import AsyncServeClient
from repro.serve.protocol import ProtocolError

#: Default gateway port (serve is 4006; the gateway fronts it).
DEFAULT_PORT = 8006

#: Bound on one request's header block (request line + headers).
MAX_HEADER_BYTES = 16 * 1024

#: Default bound on one request body.
MAX_BODY_BYTES = 1 << 20

_NDJSON_TYPE = "application/x-ndjson"
_JSON_TYPE = "application/json"

#: Native error code → HTTP status for proxied backend responses.
_ERROR_STATUS = {
    "bad_request": 400,
    "rate_limited": 429,
    "overloaded": 429,
    "draining": 503,
    "simulation_failed": 500,
    "frame_too_large": 502,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """An HTTP-level rejection produced before (or instead of) a proxy."""

    def __init__(
        self,
        status: int,
        detail: str,
        headers: dict[str, str] | None = None,
        code: str | None = None,
    ) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.headers = headers or {}
        #: Machine-readable error slug; mirrors the native protocol's
        #: ``error`` field so HTTP and native clients share one taxonomy.
        self.code = code or f"http_{status}"


@dataclass(slots=True)
class HttpRequest:
    """One parsed request: the decoder's output, the router's input."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes
    keep_alive: bool


class RequestDecoder:
    """Sans-IO incremental HTTP/1.1 request parser.

    Feed raw bytes as they arrive; complete requests come out.  The
    parser never touches a socket, mirroring ``protocol.FrameDecoder``.
    Oversized header blocks and bodies are rejected from the declared
    sizes alone, before buffering the payload.
    """

    def __init__(self, max_body: int = MAX_BODY_BYTES) -> None:
        self.max_body = max_body
        self._buffer = bytearray()
        self._pending: HttpRequest | None = None  # headers parsed, body short

    def feed(self, data: bytes) -> list[HttpRequest]:
        """Consume ``data``; return every request completed by it.

        Raises :class:`HttpError` on malformed or oversized input; the
        connection should answer it and close.
        """
        self._buffer.extend(data)
        requests: list[HttpRequest] = []
        while True:
            request = self._next_request()
            if request is None:
                return requests
            requests.append(request)

    def _next_request(self) -> HttpRequest | None:
        if self._pending is not None:
            need = int(self._pending.headers.get("content-length", "0"))
            if len(self._buffer) < need:
                return None
            request = self._pending
            self._pending = None
            request.body = bytes(self._buffer[:need])
            del self._buffer[:need]
            return request
        end = self._buffer.find(b"\r\n\r\n")
        if end < 0:
            if len(self._buffer) > MAX_HEADER_BYTES:
                raise HttpError(431, "request header block too large")
            return None
        head = bytes(self._buffer[:end])
        del self._buffer[: end + 4]
        request = self._parse_head(head)
        need = int(request.headers.get("content-length", "0"))
        if len(self._buffer) < need:
            self._pending = request
            return None
        request.body = bytes(self._buffer[:need])
        del self._buffer[:need]
        return request

    def _parse_head(self, head: bytes) -> HttpRequest:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise HttpError(400, "undecodable request head") from exc
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise HttpError(400, f"malformed request line {lines[0]!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise HttpError(411, "chunked request bodies are not accepted; "
                                 "send Content-Length")
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, f"bad Content-Length {length_text!r}") from exc
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length > self.max_body:
            raise HttpError(
                413, f"body of {length} bytes exceeds the {self.max_body} cap"
            )
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = "close" not in connection
        else:  # HTTP/1.0 closes unless the client opts in
            keep_alive = "keep-alive" in connection
        path = target.split("?", 1)[0]
        return HttpRequest(
            method=method.upper(),
            path=path,
            headers=headers,
            body=b"",
            keep_alive=keep_alive,
        )


def render_response(
    status: int,
    body: bytes,
    content_type: str = _JSON_TYPE,
    extra_headers: dict[str, str] | None = None,
    *,
    keep_alive: bool = True,
) -> bytes:
    """Assemble one fixed-length HTTP/1.1 response (sans-IO)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _json_body(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


def _chunk(data: bytes) -> bytes:
    """One chunk of a chunked transfer-encoded body."""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


_LAST_CHUNK = b"0\r\n\r\n"


@dataclass(slots=True)
class GatewayConfig:
    """Tuning for one :class:`Gateway`.

    Attributes:
        host/port: HTTP listener (``port=0`` binds an ephemeral port).
        backend: ``bcache-serve`` address (``host:port`` or
            ``unix:/path.sock``).
        pool: persistent backend connections; also the bound on
            concurrent backend requests (sweep fan-out included).
        max_body: request-body byte cap.
        backend_timeout: per-request backend deadline in seconds.
        client_header: HTTP header consulted for the client identity
            forwarded to the backend's admission control (the peer
            host is the fallback).
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    backend: str = "127.0.0.1:4006"
    pool: int = 8
    max_body: int = MAX_BODY_BYTES
    backend_timeout: float = 30.0
    client_header: str = "x-bcache-client"


@dataclass(slots=True)
class GatewayMetrics:
    """Aggregate counters (mirrored into the obs registry per route)."""

    requests: int = 0
    errors: int = 0
    streams: int = 0
    streamed_results: int = 0
    connections_total: int = 0
    backend_errors: int = 0
    started_at: float = field(default_factory=time.monotonic)


class BackendPool:
    """Bounded pool of native connections to the serve backend.

    A lease is exclusive (the native protocol is one-in-flight per
    connection), so the pool size bounds backend concurrency.  A
    connection that fails mid-request is replaced on the next lease —
    the pool never caches a broken pipe.
    """

    def __init__(self, address: str, size: int, timeout: float) -> None:
        self.address = address
        self.size = max(1, size)
        self.timeout = timeout
        self._slots: asyncio.Queue[AsyncServeClient | None] = asyncio.Queue()
        for _ in range(self.size):
            self._slots.put_nowait(None)  # lazily connected

    async def _lease(self) -> AsyncServeClient:
        client = await self._slots.get()
        if client is None:
            try:
                client = await AsyncServeClient.connect(
                    self.address, timeout=self.timeout
                )
            except (OSError, asyncio.TimeoutError):
                self._slots.put_nowait(None)
                raise
        return client

    def _release(self, client: AsyncServeClient | None) -> None:
        self._slots.put_nowait(client)

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One proxied round trip; maps transport failures to HTTP.

        Raises :class:`HttpError` 502 when the backend is unreachable
        or answers garbage, 504 when it misses the deadline.
        """
        try:
            client = await self._lease()
        except (OSError, asyncio.TimeoutError) as exc:
            _obs.gateway_backend_error("connect")
            raise HttpError(502, f"backend unreachable: {exc}") from exc
        done = False
        try:
            response = await client.request(payload)
            done = True
            return response
        except (asyncio.TimeoutError, TimeoutError) as exc:
            _obs.gateway_backend_error("timeout")
            raise HttpError(504, "backend deadline exceeded") from exc
        except (ConnectionError, ProtocolError, OSError) as exc:
            _obs.gateway_backend_error("transport")
            raise HttpError(502, f"backend connection failed: {exc}") from exc
        finally:
            if done:
                self._release(client)
            else:
                # Any failure — including CancelledError when a sweep
                # stream aborts mid-request — leaves a half-finished
                # native request on this connection, so it must not be
                # reused.  Restore the slot first (the pool must never
                # leak capacity), then close without suspending: a
                # cancelled caller may not await again here.
                self._release(None)
                client.abort()

    async def close(self) -> None:
        for _ in range(self.size):
            with contextlib.suppress(asyncio.QueueEmpty):
                client = self._slots.get_nowait()
                if client is not None:
                    await client.close()


class Gateway:
    """The asyncio HTTP gateway (see module docstring)."""

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        self.metrics = GatewayMetrics()
        self.pool = BackendPool(
            config.backend, config.pool, config.backend_timeout
        )
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._active = 0
        self._idle: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._draining = False
        self._drain_task: asyncio.Task[None] | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def address(self) -> tuple[str, int] | None:
        if self._server is None:
            return None
        for sock in self._server.sockets or ():
            if sock.family.name in ("AF_INET", "AF_INET6"):
                addr = sock.getsockname()
                return (addr[0], addr[1])
        return None

    @property
    def draining(self) -> bool:
        return self._draining

    def request_drain(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(
                self.drain()
            )

    async def drain(self) -> None:
        """Close the listener, answer in-flight requests, then stop."""
        if self._draining:
            await self.wait_stopped()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._idle is not None
        await self._idle.wait()
        for writer in list(self._writers):
            writer.close()
        await self.pool.close()
        assert self._stopped is not None
        self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "gateway was never started"
        await self._stopped.wait()

    def abort(self) -> None:
        if self._server is not None:
            self._server.close()
        if self._stopped is not None:
            self._stopped.set()

    # -- connection pump -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_total += 1
        self._writers.add(writer)
        peer = writer.get_extra_info("peername")
        peer_host = (
            str(peer[0]) if isinstance(peer, tuple) and len(peer) >= 2 else "anon"
        )
        decoder = RequestDecoder(self.config.max_body)
        try:
            keep_going = True
            while keep_going:
                try:
                    requests = await self._read_requests(reader, decoder)
                except HttpError as exc:
                    with contextlib.suppress(ConnectionError, OSError):
                        writer.write(self._error_bytes(exc, keep_alive=False))
                        await writer.drain()
                    return
                if requests is None:  # EOF
                    return
                for request in requests:
                    keep_going = await self._serve_one(
                        request, writer, peer_host
                    )
                    if not keep_going:
                        break
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _read_requests(
        self, reader: asyncio.StreamReader, decoder: RequestDecoder
    ) -> list[HttpRequest] | None:
        """Pump the socket until the decoder yields at least one request."""
        while True:
            data = await reader.read(65536)
            if not data:
                return None
            requests = decoder.feed(data)
            if requests:
                return requests

    def _error_bytes(self, exc: HttpError, *, keep_alive: bool) -> bytes:
        self.metrics.errors += 1
        return render_response(
            exc.status,
            _json_body(
                {"ok": False, "error": exc.code, "detail": exc.detail}
            ),
            extra_headers=exc.headers,
            keep_alive=keep_alive,
        )

    async def _serve_one(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        peer_host: str,
    ) -> bool:
        """Route one request and write its response; returns keep-alive."""
        self.metrics.requests += 1
        self._active += 1
        assert self._idle is not None
        self._idle.clear()
        started = time.monotonic()
        status = 500
        keep_alive = request.keep_alive and not self._draining
        trace = self._trace_for(request)
        try:
            try:
                with _obs.stage_span("gateway", trace=trace,
                                     path=request.path):
                    if (request.method == "POST"
                            and request.path == "/v1/sweep"):
                        status = await self._route_sweep(
                            request, writer, peer_host, keep_alive
                        )
                    else:
                        status, body, ctype, extra = await self._route_simple(
                            request, peer_host
                        )
                        writer.write(
                            render_response(
                                status, body, ctype, extra,
                                keep_alive=keep_alive,
                            )
                        )
                        await writer.drain()
            except HttpError as exc:
                status = exc.status
                writer.write(self._error_bytes(exc, keep_alive=keep_alive))
                await writer.drain()
        except (ConnectionError, OSError):
            return False
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            _obs.gateway_request(
                request.path, status, time.monotonic() - started
            )
        return keep_alive

    def _trace_for(self, request: HttpRequest) -> TraceContext | None:
        """The request's root trace context, if the request is traced.

        A W3C ``traceparent`` header wins on every tier (the caller
        already decided to trace, and its sampling flag rides the
        header); otherwise a root is minted for simulate/sweep requests
        whenever events are recorded.  Minted ids hash the pid and the
        request ordinal — deterministic, no ``random``, no wall clock
        (rule BCL019) — and their sampling verdict is the pure function
        ``sampled_for(hash(trace_id))``, so reruns sample identically.
        """
        trace = TraceContext.from_traceparent(
            request.headers.get("traceparent")
        )
        if trace is not None:
            return trace
        if not obs_events.enabled():
            return None
        if request.path not in ("/v1/simulate", "/v1/sweep"):
            return None
        return TraceContext.new(
            f"gateway/{os.getpid()}/{self.metrics.requests}"
        )

    # -- routing -------------------------------------------------------
    async def _route_simple(
        self, request: HttpRequest, peer_host: str
    ) -> tuple[int, bytes, str, dict[str, str]]:
        """Every route except the streaming sweep."""
        method, path = request.method, request.path
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "healthz is GET-only")
            return 200, _json_body({"ok": True, "draining": self._draining}), \
                _JSON_TYPE, {}
        if path == "/v1/status":
            if method != "GET":
                raise HttpError(405, "status is GET-only")
            response = await self.pool.request({"op": "status"})
            self._check_backend(response)
            response["gateway"] = self.snapshot()
            return 200, _json_body(response), _JSON_TYPE, {}
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "metrics is GET-only")
            local = render(default_registry())
            backend = ""
            with contextlib.suppress(HttpError):
                response = await self.pool.request({"op": "metrics"})
                if response.get("ok"):
                    backend = str(response.get("metrics", ""))
            body = (local + backend).encode("utf-8")
            return 200, body, CONTENT_TYPE, {}
        if path == "/v1/simulate":
            if method != "POST":
                raise HttpError(405, "simulate is POST-only")
            with _obs.stage_span("gateway_parse", trace=tracectx.current()):
                payload = self._parse_json_object(request.body)
            payload.setdefault(
                "client", self._client_identity(request, peer_host)
            )
            ctx = tracectx.current()
            if ctx is not None and ctx.sampled:
                payload["trace"] = ctx.to_wire()
            response = await self.pool.request({"op": "simulate", **payload})
            self._check_backend(response)
            return 200, _json_body(response), _JSON_TYPE, {}
        raise HttpError(404, f"no route {method} {path}; see docs/gateway.md")

    async def _route_sweep(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        peer_host: str,
        keep_alive: bool,
    ) -> int:
        """NDJSON-streamed sweep: one line per job, completion order."""
        with _obs.stage_span("gateway_parse", trace=tracectx.current()):
            payload = self._parse_json_object(request.body)
            jobs = payload.get("jobs")
            if not isinstance(jobs, list) or not jobs:
                raise HttpError(400, "'sweep' needs a non-empty 'jobs' list")
            for entry in jobs:
                if not isinstance(entry, dict):
                    raise HttpError(400, "sweep jobs must be JSON objects")
        client = payload.get("client")
        if not (isinstance(client, str) and client):
            client = self._client_identity(request, peer_host)
        ctx = tracectx.current()
        wire = ctx.to_wire() if ctx is not None and ctx.sampled else None
        self.metrics.streams += 1
        head = (
            f"HTTP/1.1 200 OK\r\nContent-Type: {_NDJSON_TYPE}\r\n"
            f"Transfer-Encoding: chunked\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))

        async def one(index: int, job: dict[str, Any]) -> dict[str, Any]:
            backend_payload = {"op": "simulate", "client": client, **job}
            if wire is not None:
                backend_payload["trace"] = wire
            response = await self.pool.request(backend_payload)
            return {"index": index, **response}

        ok = errors = 0
        tasks = [
            asyncio.ensure_future(one(index, job))
            for index, job in enumerate(jobs)
        ]
        try:
            for next_done in asyncio.as_completed(tasks):
                try:
                    line = await next_done
                except HttpError as exc:
                    line = {"ok": False, "error": exc.code,
                            "detail": exc.detail}
                if line.get("ok"):
                    ok += 1
                else:
                    errors += 1
                self.metrics.streamed_results += 1
                writer.write(_chunk(_json_body(line)))
                await writer.drain()
            summary = {"done": True, "jobs": len(jobs), "ok": ok,
                       "errors": errors}
            writer.write(_chunk(_json_body(summary)) + _LAST_CHUNK)
            await writer.drain()
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            _obs.gateway_streamed(len(jobs))
        return 200

    # -- helpers -------------------------------------------------------
    def _client_identity(self, request: HttpRequest, peer_host: str) -> str:
        header = request.headers.get(self.config.client_header, "")
        return header if header else peer_host

    @staticmethod
    def _parse_json_object(body: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        return payload

    def _check_backend(self, response: dict[str, Any]) -> None:
        """Raise the HTTP mapping of a native error response."""
        if response.get("ok"):
            return
        self.metrics.backend_errors += 1
        code = str(response.get("error", "unknown_error"))
        detail = str(response.get("detail", "")) or code
        status = _ERROR_STATUS.get(code, 502)
        headers: dict[str, str] = {}
        if status == 429:
            retry_after = response.get("retry_after", 1.0)
            seconds = (
                float(retry_after)
                if isinstance(retry_after, (int, float))
                else 1.0
            )
            headers["Retry-After"] = str(max(1, math.ceil(seconds)))
        raise HttpError(status, detail, headers, code=code)

    def snapshot(self) -> dict[str, Any]:
        metrics = self.metrics
        return {
            "draining": self._draining,
            "uptime_s": round(time.monotonic() - metrics.started_at, 3),
            "connections_total": metrics.connections_total,
            "requests": metrics.requests,
            "errors": metrics.errors,
            "streams": metrics.streams,
            "streamed_results": metrics.streamed_results,
            "backend_errors": metrics.backend_errors,
            "backend": self.config.backend,
            "pool": self.config.pool,
        }


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bcache-gateway",
        description="HTTP/1.1 + JSON gateway in front of bcache-serve "
        "(NDJSON-streamed sweeps, Retry-After on overload).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="HTTP bind host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, metavar="N",
                        help=f"HTTP port (default {DEFAULT_PORT}; "
                        "0 = ephemeral)")
    parser.add_argument("--backend", default="127.0.0.1:4006",
                        metavar="ADDR",
                        help="bcache-serve address, host:port or "
                        "unix:/path.sock (default 127.0.0.1:4006)")
    parser.add_argument("--pool", type=int, default=8, metavar="N",
                        help="backend connection pool size / concurrency "
                        "bound (default 8)")
    parser.add_argument("--max-body", type=int, default=MAX_BODY_BYTES,
                        metavar="BYTES",
                        help="request body cap (default 1 MiB)")
    parser.add_argument("--backend-timeout", type=float, default=30.0,
                        metavar="S",
                        help="per-request backend deadline (default 30 s)")
    return parser


def config_from_args(args: argparse.Namespace) -> GatewayConfig:
    return GatewayConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        pool=args.pool,
        max_body=args.max_body,
        backend_timeout=args.backend_timeout,
    )


async def _amain(config: GatewayConfig) -> int:
    gateway = Gateway(config)
    try:
        await gateway.start()
    except OSError as exc:
        print(f"bcache-gateway: cannot bind: {exc}", file=sys.stderr)
        return 4
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGTERM, gateway.request_drain)
    addr = gateway.address
    addr_text = f"{addr[0]}:{addr[1]}" if addr else "-"
    print(
        f"bcache-gateway: ready http={addr_text} backend={config.backend} "
        f"pool={config.pool} pid={os.getpid()}",
        flush=True,
    )
    try:
        await gateway.wait_stopped()
    finally:
        gateway.abort()
    print("bcache-gateway: drained, exiting", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-gateway``; returns a process exit code.

    ``0`` after a clean drain (SIGTERM), ``130`` on SIGINT, ``4`` when
    the listener cannot bind, ``2`` for bad usage.
    """
    args = _build_parser().parse_args(argv)
    if args.pool < 1:
        print("bcache-gateway: --pool must be >= 1", file=sys.stderr)
        return 2
    try:
        return asyncio.run(_amain(config_from_args(args)))
    except KeyboardInterrupt:
        print("bcache-gateway: interrupted (SIGINT)", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
