"""``bcache-loadgen`` — closed/open-loop load generator for ``bcache-serve``.

Closed loop (default): ``--clients C`` simulated users each hold one
connection and fire their next request the moment the previous answer
lands — the standard saturation benchmark.  Open loop (``--rate R``):
requests arrive on a fixed schedule regardless of completions, which is
what exposes queueing collapse; a bounded connection pool supplies the
transports.

The request mix cycles through the cross product of ``--specs`` and
``--benchmarks``, so concurrent clients repeatedly ask for identical
and near-identical jobs — exactly the traffic shape the server's
micro-batcher coalesces.  ``--mix repeated:R`` repeats each job ``R``
times back-to-back, the cache-friendly shape that exercises the result
cache and singleflight tiers.  After the run the tool fetches the
server's ``status`` metrics and reports the **mean batch size** and
coalescing/singleflight counters alongside throughput and latency
percentiles; with ``--verify`` it also replays every distinct job
locally through the same ``execute_job`` path and asserts the served
statistics are bit-identical.

Targets: a native server over TCP (``--connect``) or a Unix socket
(``--unix``), or a ``bcache-gateway`` over HTTP (``--gateway URL``) —
the HTTP path uses a tiny stdlib client speaking persistent HTTP/1.1,
and maps 429 responses back onto the shed-retry loop.

``--out`` writes a machine-readable report (``BENCH_serve.json``
schema); ``--check BASELINE`` gates regressions the same ratio-based
way ``bcache-bench`` does — only dimensionless quantities (errors,
identity, coalescing factor) are compared, so a baseline recorded on
one machine transfers to another.  A baseline may hold several
``rows`` (cold / warm / repeated); ``--baseline-row`` picks one.  On a
repeated mix the gate additionally requires that coalescing or
singleflight actually fired (``coalesced + singleflight_waits > 0``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from random import Random
from typing import Any

from dataclasses import asdict

from repro.engine.resilience import job_key
from repro.engine.runner import SweepJob, execute_job
from repro.serve.client import (
    AsyncServeClient,
    OverloadedError,
    RateLimitedError,
    ServeError,
)
from repro.serve.protocol import ProtocolError
from repro.stats.counters import CacheStats
from repro.stats.latency import LatencyRecorder
from repro.workloads.spec2k import ALL_BENCHMARKS

SCHEMA = "bcache-loadgen/2"

DEFAULT_SPECS = "dm,mf8_bas8"
DEFAULT_BENCHMARKS = "gzip,gcc,equake,mcf"

#: Overload responses are retried this many times with seeded backoff.
SHED_RETRIES = 5


class _RunState:
    """Shared counters for one load-generation run."""

    def __init__(self) -> None:
        self.latency = LatencyRecorder()
        self.errors: list[str] = []
        self.shed = 0
        self.rate_limited = 0
        self.served: dict[str, CacheStats] = {}  # job_key -> first result


def parse_mix(text: str) -> int:
    """``cycle`` → 1, ``repeated:R`` → R; raises ``ValueError`` otherwise."""
    if text == "cycle":
        return 1
    if text.startswith("repeated:"):
        repeat = int(text.partition(":")[2])
        if repeat < 1:
            raise ValueError(f"repeat factor must be >= 1, got {repeat}")
        return repeat
    raise ValueError(f"bad --mix {text!r}; use 'cycle' or 'repeated:R'")


def build_mix(
    specs: list[str], benchmarks: list[str], n: int, seed: int,
    repeat: int = 1,
) -> list[SweepJob]:
    """The request mix: every (spec, benchmark) pair at one scale.

    ``repeat`` > 1 repeats each job back-to-back that many times — the
    shape that exercises identical-job coalescing and the result cache.
    """
    base = [
        SweepJob(spec=spec, benchmark=benchmark, n=n, seed=seed)
        for benchmark in benchmarks
        for spec in specs
    ]
    if repeat <= 1:
        return base
    return [job for job in base for _ in range(repeat)]


class GatewayClient:
    """Minimal persistent HTTP/1.1 JSON client for ``bcache-gateway``.

    Presents the same ``simulate``/``status``/``close`` surface as
    :class:`AsyncServeClient`, so the load loops are transport-blind.
    Gateway 429 responses map back onto the native exceptions the
    retry loop already understands.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        host: str,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._host = host

    @classmethod
    async def connect(cls, url: str) -> "GatewayClient":
        """``http://host:port`` → one persistent connection."""
        if not url.startswith("http://"):
            raise ValueError(f"only http:// gateway URLs are supported: {url}")
        netloc = url[len("http://"):].split("/", 1)[0]
        host, _, port_text = netloc.partition(":")
        port = int(port_text) if port_text else 80
        reader, writer = await asyncio.open_connection(host or "127.0.0.1", port)
        return cls(reader, writer, netloc)

    async def _request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, str], dict[str, Any]]:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: {self._host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        parts = status_line.split()
        if len(parts) < 2:
            raise ProtocolError(f"bad gateway status line {status_line!r}")
        code = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b"{}"
        return code, headers, dict(json.loads(raw))

    async def simulate(self, job: SweepJob) -> CacheStats:
        code, headers, response = await self._request(
            "POST", "/v1/simulate", asdict(job)
        )
        if code == 429:
            retry_after = float(headers.get("retry-after", "1"))
            raise RateLimitedError(
                "rate_limited", str(response.get("error", "")), retry_after
            )
        if code >= 400 or not response.get("ok"):
            raise ServeError(
                f"http_{code}", str(response.get("error", response))
            )
        return CacheStats.from_snapshot(response["stats"])

    async def status(self) -> dict[str, Any]:
        code, _, response = await self._request("GET", "/v1/status")
        if code >= 400:
            raise ServeError(f"http_{code}", str(response))
        return response

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _connect(target: str) -> "AsyncServeClient | GatewayClient":
    """Open the right transport for a target address or gateway URL."""
    if target.startswith("http://"):
        return await GatewayClient.connect(target)
    return await AsyncServeClient.connect(target)


async def _issue(
    client: "AsyncServeClient | GatewayClient",
    job: SweepJob,
    state: _RunState,
    rng: Random,
) -> None:
    """One request, with bounded retry on load shedding."""
    for attempt in range(SHED_RETRIES + 1):
        started = time.perf_counter()
        try:
            stats = await client.simulate(job)
        except RateLimitedError as exc:
            state.rate_limited += 1
            if attempt == SHED_RETRIES:
                state.errors.append(
                    f"{job.spec}/{job.benchmark}: still rate-limited after "
                    f"{SHED_RETRIES} retries"
                )
                return
            await asyncio.sleep(
                min(2.0, max(0.01, exc.retry_after)) * (1.0 + rng.random())
            )
            continue
        except OverloadedError:
            state.shed += 1
            if attempt == SHED_RETRIES:
                state.errors.append(
                    f"{job.spec}/{job.benchmark}: still overloaded after "
                    f"{SHED_RETRIES} retries"
                )
                return
            await asyncio.sleep(0.01 * (2**attempt) * (1.0 + rng.random()))
            continue
        except (ServeError, ProtocolError, ConnectionError, OSError) as exc:
            state.errors.append(f"{job.spec}/{job.benchmark}: {exc}")
            return
        state.latency.record(time.perf_counter() - started)
        state.served.setdefault(job_key(job), stats)
        return


async def _closed_loop(
    address: str, mix: list[SweepJob], requests: int, clients: int, seed: int
) -> _RunState:
    state = _RunState()
    queue: asyncio.Queue[int] = asyncio.Queue()
    for index in range(requests):
        queue.put_nowait(index)

    async def worker(worker_id: int) -> None:
        rng = Random(seed + worker_id)
        try:
            client = await _connect(address)
        except OSError as exc:
            state.errors.append(f"client {worker_id}: connect failed: {exc}")
            return
        try:
            while True:
                try:
                    index = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                await _issue(client, mix[index % len(mix)], state, rng)
        finally:
            await client.close()

    await asyncio.gather(*(worker(i) for i in range(clients)))
    return state


async def _open_loop(
    address: str,
    mix: list[SweepJob],
    requests: int,
    clients: int,
    rate: float,
    seed: int,
) -> _RunState:
    state = _RunState()
    pool: "asyncio.Queue[AsyncServeClient | GatewayClient]" = asyncio.Queue()
    opened: "list[AsyncServeClient | GatewayClient]" = []
    for index in range(clients):
        try:
            client = await _connect(address)
        except OSError as exc:
            state.errors.append(f"connection {index}: connect failed: {exc}")
            continue
        opened.append(client)
        pool.put_nowait(client)
    if not opened:
        return state

    interval = 1.0 / rate

    async def fire(index: int) -> None:
        client = await pool.get()
        try:
            await _issue(client, mix[index % len(mix)], state, Random(seed + index))
        finally:
            pool.put_nowait(client)

    tasks = []
    start = time.perf_counter()
    for index in range(requests):
        due = start + index * interval
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(index)))
    await asyncio.gather(*tasks)
    for client in opened:
        await client.close()
    return state


async def _fetch_status(address: str) -> dict[str, Any] | None:
    try:
        client = await _connect(address)
    except OSError:
        return None
    try:
        return await client.status()
    except (ServeError, ProtocolError, ConnectionError, OSError):
        return None
    finally:
        await client.close()


def verify_identical(
    served: dict[str, CacheStats], mix: list[SweepJob]
) -> tuple[bool, list[str]]:
    """Replay every distinct served job locally; compare bit-for-bit."""
    mismatches = []
    by_key = {job_key(job): job for job in mix}
    for key, remote_stats in served.items():
        job = by_key.get(key)
        if job is None:
            continue
        local_stats = execute_job(job)
        if local_stats != remote_stats:
            mismatches.append(
                f"{job.spec}/{job.benchmark}: served stats differ from "
                "local access_trace replay"
            )
    return (not mismatches, mismatches)


def select_baseline_row(
    baseline: dict[str, Any], row: str | None
) -> dict[str, Any]:
    """Resolve a v2 multi-row baseline (``rows``) to one row.

    Flat v1 baselines pass through unchanged; v2 baselines default to
    the ``cold`` row.  Raises ``KeyError`` for an unknown row name.
    """
    rows = baseline.get("rows")
    if not isinstance(rows, dict):
        return baseline
    name = row or "cold"
    if name not in rows:
        raise KeyError(
            f"baseline has no row {name!r}; rows: {', '.join(sorted(rows))}"
        )
    return dict(rows[name])


def check_against_baseline(
    report: dict[str, Any], baseline: dict[str, Any], tolerance: float
) -> list[str]:
    """Ratio-based regression gate; returns failure messages (empty = ok)."""
    failures = []
    if report["errors"]:
        failures.append(f"{report['errors']} request error(s); need zero")
    if report.get("verified_identical") is False:
        failures.append("served stats are not bit-identical to local replay")
    base_batch = baseline.get("mean_batch_size", 0.0)
    if base_batch:
        floor = base_batch * tolerance
        if report["mean_batch_size"] < floor:
            failures.append(
                f"mean batch size {report['mean_batch_size']:.2f} fell below "
                f"{floor:.2f} ({tolerance:.0%} of baseline {base_batch:.2f}) — "
                "the micro-batcher stopped coalescing"
            )
    if str(report.get("mix", "cycle")).startswith("repeated"):
        deduped = int(report.get("coalesced", 0)) + int(
            report.get("singleflight_waits", 0)
        )
        if deduped <= 0:
            failures.append(
                "repeated mix produced zero coalesced/singleflight hits — "
                "identical-job dedup is dormant"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-loadgen``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="bcache-loadgen",
        description="Load generator / benchmark harness for bcache-serve.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--connect", metavar="HOST:PORT",
                        help="TCP address of the server")
    target.add_argument("--unix", metavar="PATH",
                        help="Unix socket path of the server")
    target.add_argument("--gateway", metavar="URL",
                        help="bcache-gateway base URL (http://host:port); "
                        "drives the server through the HTTP tier")
    parser.add_argument("--requests", type=int, default=200, metavar="N",
                        help="total requests to issue (default 200)")
    parser.add_argument("--clients", type=int, default=8, metavar="C",
                        help="concurrent connections (default 8)")
    parser.add_argument("--rate", type=float, default=None, metavar="RPS",
                        help="open-loop arrival rate; omit for closed loop")
    parser.add_argument("--specs", default=DEFAULT_SPECS,
                        help=f"comma-separated specs (default {DEFAULT_SPECS})")
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS,
                        help="comma-separated benchmarks "
                        f"(default {DEFAULT_BENCHMARKS})")
    parser.add_argument("--n", type=int, default=20_000,
                        help="trace length per request (default 20000)")
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--mix", default="cycle", metavar="MIX",
                        help="request mix: 'cycle' (default) or "
                        "'repeated:R' to repeat each job R times "
                        "back-to-back (cache-friendly traffic)")
    parser.add_argument("--baseline-row", default=None, metavar="NAME",
                        help="row of a multi-row baseline to check against "
                        "(default: cold)")
    parser.add_argument("--verify", action="store_true",
                        help="replay every distinct job locally and require "
                        "bit-identical statistics")
    parser.add_argument("--out", metavar="FILE",
                        help="write the JSON report (BENCH_serve.json schema)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="ratio-based regression gate against a baseline "
                        "JSON; exit 1 on errors, identity loss, or a "
                        "coalescing regression")
    parser.add_argument("--tolerance", type=float, default=0.6,
                        help="minimum fraction of the baseline mean batch "
                        "size to accept (default 0.6)")
    args = parser.parse_args(argv)

    if args.requests < 1 or args.clients < 1:
        print("bcache-loadgen: --requests and --clients must be >= 1",
              file=sys.stderr)
        return 2
    specs = [spec for spec in args.specs.split(",") if spec]
    benchmarks = [name for name in args.benchmarks.split(",") if name]
    unknown = [name for name in benchmarks if name not in ALL_BENCHMARKS]
    if unknown:
        print(f"bcache-loadgen: unknown benchmark(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    try:
        repeat = parse_mix(args.mix)
    except ValueError as exc:
        print(f"bcache-loadgen: {exc}", file=sys.stderr)
        return 2
    if args.gateway:
        address = args.gateway
    elif args.connect:
        address = args.connect
    else:
        address = f"unix:{args.unix}"
    mix = build_mix(specs, benchmarks, args.n, args.seed, repeat)

    started = time.perf_counter()
    if args.rate:
        mode = "open"
        state = asyncio.run(
            _open_loop(address, mix, args.requests, args.clients, args.rate,
                       args.seed)
        )
    else:
        mode = "closed"
        state = asyncio.run(
            _closed_loop(address, mix, args.requests, args.clients, args.seed)
        )
    wall_s = time.perf_counter() - started
    status = asyncio.run(_fetch_status(address))

    completed = len(state.latency)
    batcher = (status or {}).get("batcher", {})
    server = (status or {}).get("server", {})
    mean_batch = float(batcher.get("mean_batch_size", 0.0))
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "mix": args.mix,
        "transport": "gateway" if args.gateway else "native",
        "requests": args.requests,
        "clients": args.clients,
        "completed": completed,
        "errors": len(state.errors),
        "shed_retries": state.shed,
        "rate_limited_retries": state.rate_limited,
        "wall_s": round(wall_s, 4),
        "rps": round(completed / wall_s, 2) if wall_s > 0 else 0.0,
        "mean_batch_size": mean_batch,
        "coalesced": batcher.get("coalesced", 0),
        "coalesced_inflight": batcher.get("coalesced_inflight", 0),
        "batches": batcher.get("batches", 0),
        "singleflight_waits": server.get("singleflight_waits", 0),
        "resultcache": (status or {}).get("resultcache"),
    }
    if completed:
        report["latency"] = state.latency.summary().as_dict()
    if args.verify:
        identical, mismatches = verify_identical(state.served, mix)
        report["verified_identical"] = identical
        state.errors.extend(mismatches)
        report["errors"] = len(state.errors)

    print(f"mode {mode} ({report['transport']}, mix {args.mix}): "
          f"{completed}/{args.requests} ok in {wall_s:.2f}s "
          f"({report['rps']:.1f} req/s), {len(state.errors)} error(s), "
          f"{state.shed} shed retry(ies), "
          f"{state.rate_limited} rate-limited retry(ies)")
    if completed:
        print(f"latency {state.latency.summary().render()}")
    print(f"coalescing: {report['batches']} batches, mean batch size "
          f"{mean_batch:.2f}, {report['coalesced']} identical-job hits, "
          f"{report['singleflight_waits']} singleflight waits")
    cache_snapshot = report.get("resultcache")
    if isinstance(cache_snapshot, dict):
        print(f"result cache: {cache_snapshot.get('hits_memory', 0)} memory / "
              f"{cache_snapshot.get('hits_disk', 0)} disk hits, "
              f"{cache_snapshot.get('misses', 0)} misses")
    if args.verify:
        print("served stats bit-identical to local replay: "
              + ("yes" if report["verified_identical"] else "NO"))
    for message in state.errors[:10]:
        print(f"error: {message}", file=sys.stderr)

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True)
                                  + "\n")
        print(f"wrote {args.out}")

    if args.check:
        try:
            baseline = select_baseline_row(
                json.loads(Path(args.check).read_text()), args.baseline_row
            )
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            print(f"cannot read baseline {args.check}: {exc}", file=sys.stderr)
            return 2
        failures = check_against_baseline(report, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} (tolerance {args.tolerance:.0%})")
        return 0

    return 0 if not state.errors else 1


if __name__ == "__main__":
    raise SystemExit(main())
