"""``bcache-loadgen`` — closed/open-loop load generator for ``bcache-serve``.

Closed loop (default): ``--clients C`` simulated users each hold one
connection and fire their next request the moment the previous answer
lands — the standard saturation benchmark.  Open loop (``--rate R``):
requests arrive on a fixed schedule regardless of completions, which is
what exposes queueing collapse; a bounded connection pool supplies the
transports.

The request mix cycles through the cross product of ``--specs`` and
``--benchmarks``, so concurrent clients repeatedly ask for identical
and near-identical jobs — exactly the traffic shape the server's
micro-batcher coalesces.  After the run the tool fetches the server's
``status`` metrics and reports the **mean batch size** alongside
throughput and latency percentiles; with ``--verify`` it also replays
every distinct job locally through the same ``execute_job`` path and
asserts the served statistics are bit-identical.

``--out`` writes a machine-readable report (``BENCH_serve.json``
schema); ``--check BASELINE`` gates regressions the same ratio-based
way ``bcache-bench`` does — only dimensionless quantities (errors,
identity, coalescing factor) are compared, so a baseline recorded on
one machine transfers to another.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from random import Random
from typing import Any

from repro.engine.resilience import job_key
from repro.engine.runner import SweepJob, execute_job
from repro.serve.client import AsyncServeClient, OverloadedError, ServeError
from repro.serve.protocol import ProtocolError
from repro.stats.counters import CacheStats
from repro.stats.latency import LatencyRecorder
from repro.workloads.spec2k import ALL_BENCHMARKS

SCHEMA = "bcache-loadgen/1"

DEFAULT_SPECS = "dm,mf8_bas8"
DEFAULT_BENCHMARKS = "gzip,gcc,equake,mcf"

#: Overload responses are retried this many times with seeded backoff.
SHED_RETRIES = 5


class _RunState:
    """Shared counters for one load-generation run."""

    def __init__(self) -> None:
        self.latency = LatencyRecorder()
        self.errors: list[str] = []
        self.shed = 0
        self.served: dict[str, CacheStats] = {}  # job_key -> first result


def build_mix(
    specs: list[str], benchmarks: list[str], n: int, seed: int
) -> list[SweepJob]:
    """The request mix: every (spec, benchmark) pair at one scale."""
    return [
        SweepJob(spec=spec, benchmark=benchmark, n=n, seed=seed)
        for benchmark in benchmarks
        for spec in specs
    ]


async def _issue(
    client: AsyncServeClient,
    job: SweepJob,
    state: _RunState,
    rng: Random,
) -> None:
    """One request, with bounded retry on load shedding."""
    for attempt in range(SHED_RETRIES + 1):
        started = time.perf_counter()
        try:
            stats = await client.simulate(job)
        except OverloadedError:
            state.shed += 1
            if attempt == SHED_RETRIES:
                state.errors.append(
                    f"{job.spec}/{job.benchmark}: still overloaded after "
                    f"{SHED_RETRIES} retries"
                )
                return
            await asyncio.sleep(0.01 * (2**attempt) * (1.0 + rng.random()))
            continue
        except (ServeError, ProtocolError, ConnectionError, OSError) as exc:
            state.errors.append(f"{job.spec}/{job.benchmark}: {exc}")
            return
        state.latency.record(time.perf_counter() - started)
        state.served.setdefault(job_key(job), stats)
        return


async def _closed_loop(
    address: str, mix: list[SweepJob], requests: int, clients: int, seed: int
) -> _RunState:
    state = _RunState()
    queue: asyncio.Queue[int] = asyncio.Queue()
    for index in range(requests):
        queue.put_nowait(index)

    async def worker(worker_id: int) -> None:
        rng = Random(seed + worker_id)
        try:
            client = await AsyncServeClient.connect(address)
        except OSError as exc:
            state.errors.append(f"client {worker_id}: connect failed: {exc}")
            return
        try:
            while True:
                try:
                    index = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                await _issue(client, mix[index % len(mix)], state, rng)
        finally:
            await client.close()

    await asyncio.gather(*(worker(i) for i in range(clients)))
    return state


async def _open_loop(
    address: str,
    mix: list[SweepJob],
    requests: int,
    clients: int,
    rate: float,
    seed: int,
) -> _RunState:
    state = _RunState()
    pool: asyncio.Queue[AsyncServeClient] = asyncio.Queue()
    opened: list[AsyncServeClient] = []
    for index in range(clients):
        try:
            client = await AsyncServeClient.connect(address)
        except OSError as exc:
            state.errors.append(f"connection {index}: connect failed: {exc}")
            continue
        opened.append(client)
        pool.put_nowait(client)
    if not opened:
        return state

    interval = 1.0 / rate

    async def fire(index: int) -> None:
        client = await pool.get()
        try:
            await _issue(client, mix[index % len(mix)], state, Random(seed + index))
        finally:
            pool.put_nowait(client)

    tasks = []
    start = time.perf_counter()
    for index in range(requests):
        due = start + index * interval
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(index)))
    await asyncio.gather(*tasks)
    for client in opened:
        await client.close()
    return state


async def _fetch_status(address: str) -> dict[str, Any] | None:
    try:
        client = await AsyncServeClient.connect(address)
    except OSError:
        return None
    try:
        return await client.status()
    except (ServeError, ProtocolError, ConnectionError, OSError):
        return None
    finally:
        await client.close()


def verify_identical(
    served: dict[str, CacheStats], mix: list[SweepJob]
) -> tuple[bool, list[str]]:
    """Replay every distinct served job locally; compare bit-for-bit."""
    mismatches = []
    by_key = {job_key(job): job for job in mix}
    for key, remote_stats in served.items():
        job = by_key.get(key)
        if job is None:
            continue
        local_stats = execute_job(job)
        if local_stats != remote_stats:
            mismatches.append(
                f"{job.spec}/{job.benchmark}: served stats differ from "
                "local access_trace replay"
            )
    return (not mismatches, mismatches)


def check_against_baseline(
    report: dict[str, Any], baseline: dict[str, Any], tolerance: float
) -> list[str]:
    """Ratio-based regression gate; returns failure messages (empty = ok)."""
    failures = []
    if report["errors"]:
        failures.append(f"{report['errors']} request error(s); need zero")
    if report.get("verified_identical") is False:
        failures.append("served stats are not bit-identical to local replay")
    base_batch = baseline.get("mean_batch_size", 0.0)
    if base_batch:
        floor = base_batch * tolerance
        if report["mean_batch_size"] < floor:
            failures.append(
                f"mean batch size {report['mean_batch_size']:.2f} fell below "
                f"{floor:.2f} ({tolerance:.0%} of baseline {base_batch:.2f}) — "
                "the micro-batcher stopped coalescing"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-loadgen``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="bcache-loadgen",
        description="Load generator / benchmark harness for bcache-serve.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--connect", metavar="HOST:PORT",
                        help="TCP address of the server")
    target.add_argument("--unix", metavar="PATH",
                        help="Unix socket path of the server")
    parser.add_argument("--requests", type=int, default=200, metavar="N",
                        help="total requests to issue (default 200)")
    parser.add_argument("--clients", type=int, default=8, metavar="C",
                        help="concurrent connections (default 8)")
    parser.add_argument("--rate", type=float, default=None, metavar="RPS",
                        help="open-loop arrival rate; omit for closed loop")
    parser.add_argument("--specs", default=DEFAULT_SPECS,
                        help=f"comma-separated specs (default {DEFAULT_SPECS})")
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS,
                        help="comma-separated benchmarks "
                        f"(default {DEFAULT_BENCHMARKS})")
    parser.add_argument("--n", type=int, default=20_000,
                        help="trace length per request (default 20000)")
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--verify", action="store_true",
                        help="replay every distinct job locally and require "
                        "bit-identical statistics")
    parser.add_argument("--out", metavar="FILE",
                        help="write the JSON report (BENCH_serve.json schema)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="ratio-based regression gate against a baseline "
                        "JSON; exit 1 on errors, identity loss, or a "
                        "coalescing regression")
    parser.add_argument("--tolerance", type=float, default=0.6,
                        help="minimum fraction of the baseline mean batch "
                        "size to accept (default 0.6)")
    args = parser.parse_args(argv)

    if args.requests < 1 or args.clients < 1:
        print("bcache-loadgen: --requests and --clients must be >= 1",
              file=sys.stderr)
        return 2
    specs = [spec for spec in args.specs.split(",") if spec]
    benchmarks = [name for name in args.benchmarks.split(",") if name]
    unknown = [name for name in benchmarks if name not in ALL_BENCHMARKS]
    if unknown:
        print(f"bcache-loadgen: unknown benchmark(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    address = args.connect if args.connect else f"unix:{args.unix}"
    mix = build_mix(specs, benchmarks, args.n, args.seed)

    started = time.perf_counter()
    if args.rate:
        mode = "open"
        state = asyncio.run(
            _open_loop(address, mix, args.requests, args.clients, args.rate,
                       args.seed)
        )
    else:
        mode = "closed"
        state = asyncio.run(
            _closed_loop(address, mix, args.requests, args.clients, args.seed)
        )
    wall_s = time.perf_counter() - started
    status = asyncio.run(_fetch_status(address))

    completed = len(state.latency)
    batcher = (status or {}).get("batcher", {})
    mean_batch = float(batcher.get("mean_batch_size", 0.0))
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "requests": args.requests,
        "clients": args.clients,
        "completed": completed,
        "errors": len(state.errors),
        "shed_retries": state.shed,
        "wall_s": round(wall_s, 4),
        "rps": round(completed / wall_s, 2) if wall_s > 0 else 0.0,
        "mean_batch_size": mean_batch,
        "coalesced": batcher.get("coalesced", 0),
        "batches": batcher.get("batches", 0),
    }
    if completed:
        report["latency"] = state.latency.summary().as_dict()
    if args.verify:
        identical, mismatches = verify_identical(state.served, mix)
        report["verified_identical"] = identical
        state.errors.extend(mismatches)
        report["errors"] = len(state.errors)

    print(f"mode {mode}: {completed}/{args.requests} ok in {wall_s:.2f}s "
          f"({report['rps']:.1f} req/s), {len(state.errors)} error(s), "
          f"{state.shed} shed retry(ies)")
    if completed:
        print(f"latency {state.latency.summary().render()}")
    print(f"coalescing: {report['batches']} batches, mean batch size "
          f"{mean_batch:.2f}, {report['coalesced']} identical-job hits")
    if args.verify:
        print("served stats bit-identical to local replay: "
              + ("yes" if report["verified_identical"] else "NO"))
    for message in state.errors[:10]:
        print(f"error: {message}", file=sys.stderr)

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True)
                                  + "\n")
        print(f"wrote {args.out}")

    if args.check:
        try:
            baseline = json.loads(Path(args.check).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.check}: {exc}", file=sys.stderr)
            return 2
        failures = check_against_baseline(report, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} (tolerance {args.tolerance:.0%})")
        return 0

    return 0 if not state.errors else 1


if __name__ == "__main__":
    raise SystemExit(main())
