"""Length-prefixed JSON framing for the simulation service.

One frame is a 4-byte big-endian length header followed by that many
bytes of UTF-8 JSON holding a single object.  The framing is shared by
the asyncio server, both client flavours and the load generator, and is
deliberately boring: every request and response is one frame, requests
on a connection are answered in order, and a peer that violates the
framing (oversized header, non-JSON body, torn final frame) gets a
:class:`ProtocolError` rather than silent corruption.

Three consumption styles are provided:

* :func:`encode_frame` / :func:`decode_payload` — stateless bytes.
* :class:`FrameDecoder` — sans-IO incremental decoder for blocking
  sockets and tests; feed it arbitrary chunk boundaries (including one
  byte at a time) and it yields complete payloads.
* :func:`read_frame` / :func:`write_frame` — asyncio stream helpers.

The frame size cap (:data:`MAX_FRAME_BYTES` by default) is an admission
control of its own: a peer cannot make the server buffer an unbounded
body by advertising a huge header — the header is rejected before any
body byte is read.
"""

from __future__ import annotations

import json
import struct
import asyncio
from typing import Any

#: 4-byte big-endian unsigned length header.
HEADER = struct.Struct(">I")

#: Default cap on one frame's JSON body (1 MiB).
MAX_FRAME_BYTES = 1 << 20

#: Wire-protocol revision advertised by the ``status`` op.  Bump only
#: on incompatible framing or payload changes; the cluster coordinator
#: refuses to dispatch to nodes speaking a newer major revision.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """The peer violated the framing or sent a malformed payload."""


class FrameTooLarge(ProtocolError):
    """A frame header advertised a body over the configured cap."""


def encode_frame(payload: dict[str, Any], max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise one payload into a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    if len(body) > max_frame:
        raise FrameTooLarge(
            f"frame body is {len(body)} bytes, over the {max_frame}-byte cap"
        )
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict[str, Any]:
    """Decode one frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


class FrameDecoder:
    """Incremental (sans-IO) frame decoder.

    Feed byte chunks with arbitrary boundaries — half a header, a
    header plus half a body, three frames at once — and collect the
    complete payloads the bytes finish.  Used by the synchronous client
    and by the torn-read protocol tests.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb ``data``; return every payload it completed."""
        self._buffer.extend(data)
        payloads: list[dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return payloads
            (length,) = HEADER.unpack_from(self._buffer)
            if length > self.max_frame:
                raise FrameTooLarge(
                    f"peer advertised a {length}-byte frame, over the "
                    f"{self.max_frame}-byte cap"
                )
            end = HEADER.size + length
            if len(self._buffer) < end:
                return payloads
            body = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            payloads.append(decode_payload(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean EOF (connection closed between frames)
    and raises :class:`ProtocolError` on a torn one (EOF mid-frame), so
    callers can tell a polite hang-up from a crashed peer.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(
            f"peer advertised a {length}-byte frame, over the "
            f"{max_frame}-byte cap"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: dict[str, Any],
    max_frame: int = MAX_FRAME_BYTES,
) -> None:
    """Write one frame to an asyncio stream and drain the transport."""
    writer.write(encode_frame(payload, max_frame))
    await writer.drain()
