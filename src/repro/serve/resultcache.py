"""Content-addressed result cache for served simulations.

Every job the service runs is a pure function of its
:class:`~repro.engine.runner.SweepJob` description — same spec,
benchmark, side, trace length, seed, geometry and policy in, same
:class:`~repro.stats.counters.CacheStats` out, bit for bit.  That makes
the whole serving tier memoizable: this module keys completed snapshots
by a canonical content hash of the job and answers repeats without
touching a shard.

Three pieces:

* **Canonical keys** — :func:`canonical_job_key` serialises a job with
  sorted keys, fixed separators and normalised scalar types (an ``n``
  of ``20000.0`` and ``20000`` hash identically; genuinely fractional
  floats are rejected), so neither dict order nor float ``repr`` drift
  can split one logical job across two cache entries.  The micro-batch
  coalescer uses the same key, which is what makes identical-job
  coalescing actually fire.  :func:`job_hash` folds the key together
  with the engine fingerprint into a 128-bit truncated SHA-256 — wide
  enough that accidental collisions stay out of reach even at
  birthday-paradox request volumes (see PAPERS.md).
* **Two-tier store** — :class:`ResultCache` keeps an in-process LRU of
  snapshots in front of a crash-safe on-disk tier beside the trace
  store: one CRC32-framed JSON file per entry, written atomically
  (temp file + ``os.replace``), quarantined on corruption instead of
  trusted.  Entries live under a directory named by the **engine
  fingerprint** (a hash of every simulation-relevant source file), so
  editing a kernel, a workload generator or a replacement policy
  silently invalidates every stale result — the cache can never serve
  statistics an older engine computed.
* **Singleflight** — :class:`Singleflight` collapses concurrent
  identical work across micro-batch windows: the first caller executes,
  every later caller awaits the same future, one execution serves N
  completions.

All methods of :class:`ResultCache` are synchronous and thread-safe;
event-loop callers must off-load ``get``/``put`` to an executor
(BCL011) or use the loop-safe :meth:`ResultCache.lookup_memory` fast
path, which is pure dict work.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import json
import os
import shutil
import threading
import zlib
from collections import OrderedDict
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable, Mapping

from repro.engine.runner import SweepJob
from repro.obs import instrument as _obs

ENV_RESULT_CACHE = "REPRO_RESULT_CACHE"

#: Job fields folded into the canonical hash.  This is the result-cache
#: key discipline: every field ``execute_job`` (or a kernel under it)
#: reads off the job MUST appear here, or two jobs differing only in
#: that field would collide on one cache entry.  Lint rule BCL018
#: cross-checks the engine against this set.
HASHED_JOB_FIELDS = frozenset(
    {"spec", "benchmark", "side", "n", "seed", "size", "line_size",
     "policy", "with_kinds"}
)

#: Hex digits kept from the SHA-256 job digest: 32 nibbles = 128 bits,
#: sized against birthday-paradox collision odds (PAPERS.md).
HASH_HEX_DIGITS = 32

#: Hex digits of the engine fingerprint used in directory names.
FINGERPRINT_HEX_DIGITS = 16

#: Source trees whose bytes define what a simulation computes; any
#: change to them must invalidate every cached snapshot.
_FINGERPRINT_ROOTS = (
    "caches",
    "core",
    "cpu",
    "hierarchy",
    "replacement",
    "stats",
    "trace",
    "workloads",
    "engine/runner.py",
    "engine/trace_store.py",
)


class CacheKeyError(ValueError):
    """A job field cannot be serialised canonically (lossy value)."""


def _canonical_scalar(field: str, value: Any) -> Any:
    """Normalise one job field value for hashing.

    Booleans, ints and strings pass through; an integral float is
    coerced to ``int`` (so ``20000.0`` and ``20000`` name the same
    job); anything else — fractional floats, containers, ``None`` —
    is rejected rather than hashed via a repr that may drift.
    """
    if isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != int(value):
            raise CacheKeyError(
                f"job field {field!r} has non-integral float {value!r}; "
                "cache keys only admit exact scalars"
            )
        return int(value)
    raise CacheKeyError(
        f"job field {field!r} has unhashable type {type(value).__name__}"
    )


def canonical_job_key(job: SweepJob | Mapping[str, Any]) -> str:
    """Stable serialisation of a job: sorted keys, fixed separators.

    For a :class:`SweepJob` this matches
    :func:`repro.engine.resilience.job_key` byte for byte (journal keys
    and cache keys agree); for a raw mapping it additionally normalises
    scalar types so payload-level representation drift cannot split a
    job across cache entries.
    """
    payload: Mapping[str, Any]
    if is_dataclass(job) and not isinstance(job, type):
        payload = asdict(job)
    else:
        payload = job  # type: ignore[assignment]
    unknown = set(payload) - HASHED_JOB_FIELDS
    if unknown:
        raise CacheKeyError(
            f"unknown job field(s) in cache key: {', '.join(sorted(unknown))}"
        )
    normal = {
        field: _canonical_scalar(field, value)
        for field, value in payload.items()
    }
    return json.dumps(normal, sort_keys=True, separators=(",", ":"))


def job_hash(job: SweepJob | Mapping[str, Any], fingerprint: str = "") -> str:
    """128-bit content hash of (engine fingerprint, canonical job key)."""
    body = f"{fingerprint}\n{canonical_job_key(job)}"
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:HASH_HEX_DIGITS]


@functools.lru_cache(maxsize=1)
def engine_fingerprint() -> str:
    """Hash of every simulation-relevant source file in this install.

    Walks the trees in ``_FINGERPRINT_ROOTS`` in sorted order and
    digests each file's package-relative path alongside its bytes, so
    renames invalidate too.  Cached per process — the sources cannot
    change under a running server in a way Python would notice anyway.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for root in _FINGERPRINT_ROOTS:
        target = package_root / root
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for path in files:
            if not path.is_file() or "__pycache__" in path.parts:
                continue
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()[:FINGERPRINT_HEX_DIGITS]


def default_cache_root() -> Path:
    """``$REPRO_RESULT_CACHE`` or ``~/.cache/bcache-repro/results``."""
    env = os.environ.get(ENV_RESULT_CACHE)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path("~/.cache").expanduser()
    return base / "bcache-repro" / "results"


def _frame_entry(payload: dict[str, Any]) -> str:
    """One disk entry: ``<crc32-hex> <canonical-json>\\n`` (journal idiom)."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(body.encode()):08x} {body}\n"


def _unframe_entry(raw: str) -> dict[str, Any] | None:
    """Decode one disk entry; ``None`` for torn or bit-rotted files."""
    head, sep, body = raw.rstrip("\n").partition(" ")
    if not sep or len(head) != 8:
        return None
    try:
        expected = int(head, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode()) != expected:
        return None
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


class ResultCache:
    """Two-tier (memory LRU + CRC-framed disk) store of job snapshots.

    Args:
        root: cache root directory (default
            ``$REPRO_RESULT_CACHE`` or ``~/.cache/bcache-repro/results``);
            entries live under ``<root>/fp-<engine fingerprint>/``.
        capacity: in-process LRU entry budget.
        fingerprint: engine fingerprint override (tests); defaults to
            :func:`engine_fingerprint` over the live sources.
        fsync: flush disk entries to stable storage before the rename
            (disable only in tests, mirroring the trace store).

    Thread-safe; every public method may be called from executor
    threads.  Only :meth:`lookup_memory` is cheap enough for an event
    loop.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        capacity: int = 4096,
        fingerprint: str | None = None,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.fingerprint = fingerprint if fingerprint else engine_fingerprint()
        self.dir = self.root / f"fp-{self.fingerprint}"
        self.quarantine_root = self.root / "quarantine"
        self.capacity = max(1, capacity)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.quarantined = 0

    # -- keys ----------------------------------------------------------
    def key(self, job: SweepJob | Mapping[str, Any]) -> str:
        """The content hash this cache files ``job`` under."""
        return job_hash(job, self.fingerprint)

    def _entry_path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    # -- memory tier (event-loop safe) ---------------------------------
    def lookup_memory(self, key: str) -> dict[str, Any] | None:
        """Memory-tier probe: pure dict work, safe on an event loop."""
        with self._lock:
            snapshot = self._memory.get(key)
            if snapshot is None:
                return None
            self._memory.move_to_end(key)
            self.hits_memory += 1
        _obs.resultcache_lookup("memory")
        return snapshot

    def _remember(self, key: str, snapshot: dict[str, Any]) -> None:
        with self._lock:
            self._memory[key] = snapshot
            self._memory.move_to_end(key)
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)
                self.evictions += 1
                _obs.resultcache_evicted()
            _obs.resultcache_entries(len(self._memory))

    # -- full lookup (executor threads) --------------------------------
    def get(self, job: SweepJob | Mapping[str, Any]) -> dict[str, Any] | None:
        """Snapshot for ``job``, or ``None`` on a miss.

        Checks the memory LRU first, then the disk tier; a disk hit is
        promoted into memory.  A corrupt disk entry is quarantined and
        reported as a miss (the caller recomputes), and an entry whose
        stored canonical key disagrees with the probe (a 128-bit hash
        collision, i.e. never) is ignored rather than served.
        """
        key = self.key(job)
        snapshot = self.lookup_memory(key)
        if snapshot is not None:
            return snapshot
        entry = self._load_entry(key)
        if entry is not None:
            if entry.get("key") == canonical_job_key(job):
                stats = entry.get("stats")
                if isinstance(stats, dict):
                    with self._lock:
                        self.hits_disk += 1
                    _obs.resultcache_lookup("disk")
                    self._remember(key, stats)
                    return stats
            else:  # pragma: no cover - needs a 128-bit collision
                with self._lock:
                    self.misses += 1
                _obs.resultcache_lookup("miss")
                return None
        with self._lock:
            self.misses += 1
        _obs.resultcache_lookup("miss")
        return None

    def _load_entry(self, key: str) -> dict[str, Any] | None:
        path = self._entry_path(key)
        try:
            raw = path.read_text("utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return None
        entry = _unframe_entry(raw)
        if entry is None:
            self._quarantine(path, "crc mismatch")
            return None
        return entry

    def _quarantine(self, path: Path, reason: str) -> None:
        """Park a corrupt entry for forensics; the caller recomputes."""
        target = self.quarantine_root / path.name
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # A racing process already moved or replaced it.
            path.unlink(missing_ok=True)
        with self._lock:
            self.quarantined += 1
        _obs.resultcache_quarantined(path.name, reason)

    # -- store ----------------------------------------------------------
    def put(
        self, job: SweepJob | Mapping[str, Any], snapshot: dict[str, Any]
    ) -> None:
        """File ``snapshot`` under ``job``'s content hash, both tiers.

        The disk write is atomic and (by default) durable: temp file,
        optional fsync, ``os.replace`` — racing writers of the same key
        converge on one intact entry because the snapshot is a pure
        function of the key.
        """
        key = self.key(job)
        self._remember(key, snapshot)
        entry = _frame_entry(
            {"key": canonical_job_key(job), "stats": snapshot}
        )
        path = self._entry_path(key)
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(entry)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            return  # a cache that cannot persist is still a cache
        with self._lock:
            self.stores += 1
        _obs.resultcache_stored()

    # -- invalidation ---------------------------------------------------
    def prune_stale(self) -> int:
        """Delete entry directories written by older engine builds.

        Returns the number of stale fingerprint directories removed.
        Safe to call on every server start: the current fingerprint's
        directory and the quarantine area are never touched.
        """
        removed = 0
        try:
            children = list(self.root.iterdir())
        except OSError:
            return 0
        for child in children:
            if not child.is_dir() or not child.name.startswith("fp-"):
                continue
            if child == self.dir:
                continue
            shutil.rmtree(child, ignore_errors=True)
            removed += 1
        if removed:
            _obs.resultcache_invalidated(removed)
        return removed

    # -- introspection --------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Counters for the server's ``status`` response."""
        with self._lock:
            return {
                "fingerprint": self.fingerprint,
                "entries_memory": len(self._memory),
                "capacity": self.capacity,
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "quarantined": self.quarantined,
            }

    @property
    def hits(self) -> int:
        with self._lock:
            return self.hits_memory + self.hits_disk


class Singleflight:
    """Collapse concurrent identical async work: one execution, N waiters.

    The first caller of :meth:`run` for a key becomes the **leader**
    and starts the supplier; every caller that arrives while that
    execution is in flight awaits the same task and receives the same
    result (or exception).  Unlike the micro-batcher's gather window,
    this holds for the *entire* execution, so identical jobs collapse
    across batch windows too.

    The execution runs in its **own task**, tied to the flight rather
    than to the leader's request coroutine: a leader whose connection
    is torn down mid-flight (``CancelledError``) does not poison the
    waiters — they keep awaiting the shielded execution and still get
    the real result.  The work is only cancelled when the *last*
    interested caller goes away.

    Single event loop only (plain dict state, no locks needed).
    """

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Task[Any]] = {}
        self._interest: dict[str, int] = {}
        self.leaders = 0
        self.waits = 0

    def inflight(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: str, supplier: Callable[[], Awaitable[Any]]
    ) -> tuple[Any, bool]:
        """``(result, shared)``: shared is True for non-leader callers."""
        task = self._inflight.get(key)
        shared = task is not None
        if shared:
            self.waits += 1
            _obs.resultcache_singleflight()
        else:
            task = asyncio.get_running_loop().create_task(supplier())
            self._inflight[key] = task
            self._interest[key] = 0
            self.leaders += 1
        self._interest[key] += 1
        try:
            result = await asyncio.shield(task)
        except asyncio.CancelledError:
            if task.done():
                self._forget(key, task)
            else:
                # This caller was torn down; the execution outlives it
                # for the sake of the other interested callers.  Only
                # the last one to leave cancels the work.
                remaining = self._interest.get(key, 1) - 1
                self._interest[key] = remaining
                if remaining <= 0:
                    self._forget(key, task)
                    task.cancel()
            raise
        except BaseException:
            self._forget(key, task)
            raise
        self._forget(key, task)
        return result, shared

    def _forget(self, key: str, task: asyncio.Task[Any]) -> None:
        """Retire a finished (or abandoned) flight; idempotent."""
        if self._inflight.get(key) is task:
            self._inflight.pop(key, None)
            self._interest.pop(key, None)
